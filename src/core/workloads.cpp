#include "core/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "data/partition.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace core {

namespace {

/** Forward a dataset subset through a model in chunks. */
template <typename PerChunk>
void
forwardInChunks(nn::Model &model, const data::Dataset &set,
                std::size_t subset, std::size_t chunk, PerChunk &&fn)
{
    const std::size_t n = std::min(subset, set.size());
    ROG_ASSERT(n > 0, "empty evaluation set");
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t count = std::min(chunk, n - begin);
        tensor::Tensor x(count, set.features.cols());
        for (std::size_t i = 0; i < count; ++i) {
            auto src = set.features.row(begin + i);
            auto dst = x.row(i);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        const tensor::Tensor &out = model.forward(x);
        fn(begin, count, out);
    }
}

} // namespace

CrudaWorkload::CrudaWorkload(const CrudaWorkloadConfig &cfg)
    : cfg_(cfg), task_(data::makeCrudaTask(cfg.data)),
      sampler_rng_(cfg.seed ^ 0xabcdef12345ull)
{
    ROG_ASSERT(cfg.workers > 0, "need at least one worker");

    // Build and pretrain the canonical replica on the clean domain.
    Rng init_rng(cfg_.seed);
    reference_ = std::make_unique<nn::Model>(
        nn::makeClassifier(cfg_.model, init_rng));

    Rng pre_rng(cfg_.seed ^ 0x5151u);
    std::vector<std::size_t> all(task_.clean_train.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    data::BatchSampler pre_sampler(task_.clean_train, all, pre_rng);
    nn::SgdMomentum pre_opt(*reference_,
                            {cfg_.pretrain_lr, cfg_.opt.momentum});
    for (std::size_t it = 0; it < cfg_.pretrain_iters; ++it) {
        auto batch = pre_sampler.sample(cfg_.pretrain_batch);
        reference_->zeroGrad();
        const auto &out = reference_->forward(batch.features);
        auto loss = nn::softmaxCrossEntropy(out, batch.labels);
        reference_->backward(loss.grad);
        for (std::size_t r = 0; r < pre_opt.rowCount(); ++r) {
            auto g = pre_opt.rowGrad(r);
            pre_opt.applyRow(r, {g.data(), g.size()});
        }
    }

    // Non-IID shards of the shifted-domain pool (Pachinko stand-in).
    Rng part_rng(cfg_.seed ^ 0x77aa11u);
    shards_ = data::dirichletPartition(task_.shifted_train, cfg_.workers,
                                       cfg_.dirichlet_alpha, part_rng);
}

std::unique_ptr<nn::Model>
CrudaWorkload::buildReplica()
{
    Rng rng(cfg_.seed); // same seed -> same architecture sizes.
    auto m = std::make_unique<nn::Model>(
        nn::makeClassifier(cfg_.model, rng));
    m->copyParametersFrom(*reference_);
    return m;
}

data::BatchSampler
CrudaWorkload::makeSampler(std::size_t w)
{
    ROG_ASSERT(w < shards_.size(), "worker out of range");
    return data::BatchSampler(task_.shifted_train, shards_[w],
                              sampler_rng_.fork());
}

double
CrudaWorkload::accuracyOn(nn::Model &model, const data::Dataset &set,
                          std::size_t subset)
{
    std::size_t correct = 0;
    std::size_t total = 0;
    forwardInChunks(model, set, subset, 256,
                    [&](std::size_t begin, std::size_t count,
                        const tensor::Tensor &out) {
                        for (std::size_t i = 0; i < count; ++i) {
                            if (tensor::argmaxRow(out, i) ==
                                set.labels[begin + i])
                                ++correct;
                            ++total;
                        }
                    });
    return 100.0 * static_cast<double>(correct) /
           static_cast<double>(total);
}

double
CrudaWorkload::evaluate(nn::Model &model)
{
    return accuracyOn(model, task_.shifted_test, cfg_.eval_subset);
}

double
CrudaWorkload::initialAccuracy()
{
    return accuracyOn(*reference_, task_.shifted_test, cfg_.eval_subset);
}

double
CrudaWorkload::cleanAccuracy()
{
    return accuracyOn(*reference_, task_.clean_train, cfg_.eval_subset);
}

CrimpWorkload::CrimpWorkload(const CrimpWorkloadConfig &cfg)
    : cfg_(cfg), task_(data::makeCrimpTask(cfg.data)),
      sampler_rng_(cfg.seed ^ 0x31415926ull)
{
    ROG_ASSERT(cfg.workers > 0, "need at least one worker");
    Rng init_rng(cfg_.seed);
    reference_ = std::make_unique<nn::Model>(
        nn::makeImplicitMap(cfg_.model, init_rng));
    shards_ = data::splitTrajectory(task_, cfg_.workers);
}

std::unique_ptr<nn::Model>
CrimpWorkload::buildReplica()
{
    Rng rng(cfg_.seed);
    auto m = std::make_unique<nn::Model>(
        nn::makeImplicitMap(cfg_.model, rng));
    m->copyParametersFrom(*reference_);
    return m;
}

data::BatchSampler
CrimpWorkload::makeSampler(std::size_t w)
{
    ROG_ASSERT(w < shards_.size(), "worker out of range");
    return data::BatchSampler(task_.train, shards_[w],
                              sampler_rng_.fork());
}

double
CrimpWorkload::evaluate(nn::Model &model)
{
    double se = 0.0;
    std::size_t total = 0;
    forwardInChunks(
        model, task_.eval_probes, task_.eval_probes.size(), 256,
        [&](std::size_t begin, std::size_t count,
            const tensor::Tensor &out) {
            for (std::size_t i = 0; i < count; ++i) {
                const double d = static_cast<double>(out.at(i, 0)) -
                                 task_.eval_probes.targets.at(begin + i, 0);
                se += d * d;
                ++total;
            }
        });
    return std::sqrt(se / static_cast<double>(total));
}

} // namespace core
} // namespace rog
