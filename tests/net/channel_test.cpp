/**
 * @file
 * Unit tests for the fluid-flow shared wireless channel: exact
 * transfer times under constant and piecewise-constant capacity,
 * airtime-fair sharing, timeouts (speculative transmission support),
 * byte conservation, and teardown safety.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/channel.hpp"
#include "sim/process.hpp"

namespace rog {
namespace net {
namespace {

using sim::Process;
using sim::Simulation;

/** Run one transfer and capture the result. */
Process
doTransfer(Simulation &sim, Channel &ch, LinkId link, double bytes,
           double timeout, TransferResult &out)
{
    out = co_await ch.transfer(link, bytes, timeout);
    (void)sim;
}

TEST(ChannelTest, SingleFlowConstantRate)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
    TransferResult res;
    doTransfer(sim, ch, 0, 1000.0, Channel::kNoTimeout, res);
    sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_NEAR(res.elapsed, 10.0, 1e-6);
    EXPECT_DOUBLE_EQ(res.bytes_sent, 1000.0);
    EXPECT_NEAR(sim.now(), 10.0, 1e-6);
}

TEST(ChannelTest, TwoConcurrentFlowsShareAirtime)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 120.0),
                     BandwidthTrace::constant(100.0, 120.0)});
    TransferResult a, b;
    doTransfer(sim, ch, 0, 1000.0, Channel::kNoTimeout, a);
    doTransfer(sim, ch, 1, 1000.0, Channel::kNoTimeout, b);
    sim.run();
    // Each flow runs at 100/2 = 50 B/s until both finish at t = 20.
    EXPECT_NEAR(a.elapsed, 20.0, 1e-6);
    EXPECT_NEAR(b.elapsed, 20.0, 1e-6);
}

TEST(ChannelTest, SecondFlowFinishingFreesBandwidth)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 120.0),
                     BandwidthTrace::constant(100.0, 120.0)});
    TransferResult big, small;
    doTransfer(sim, ch, 0, 1500.0, Channel::kNoTimeout, big);
    doTransfer(sim, ch, 1, 500.0, Channel::kNoTimeout, small);
    sim.run();
    // Shared phase: both at 50 B/s. Small (500 B) finishes at t = 10;
    // big has 1000 B left, then runs at 100 B/s, finishing at t = 20.
    EXPECT_NEAR(small.elapsed, 10.0, 1e-6);
    EXPECT_NEAR(big.elapsed, 20.0, 1e-6);
}

TEST(ChannelTest, PiecewiseConstantCapacity)
{
    // 100 B/s for 1 s, then 200 B/s: 250 bytes need 1 s + 0.75 s.
    Simulation sim;
    std::vector<double> samples;
    for (int i = 0; i < 10; ++i)
        samples.push_back(100.0);
    for (int i = 0; i < 100; ++i)
        samples.push_back(200.0);
    Channel ch(sim, {BandwidthTrace(samples, 0.1)});
    TransferResult res;
    doTransfer(sim, ch, 0, 250.0, Channel::kNoTimeout, res);
    sim.run();
    EXPECT_NEAR(res.elapsed, 1.75, 1e-6);
}

TEST(ChannelTest, TimeoutCutsTransferWithPartialBytes)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
    TransferResult res;
    doTransfer(sim, ch, 0, 1000.0, 3.0, res);
    sim.run();
    EXPECT_FALSE(res.completed);
    EXPECT_NEAR(res.bytes_sent, 300.0, 1e-6);
    EXPECT_NEAR(res.elapsed, 3.0, 1e-6);
}

TEST(ChannelTest, TimeoutAfterCompletionIsHarmless)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
    TransferResult res;
    doTransfer(sim, ch, 0, 100.0, 50.0, res);
    sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_NEAR(res.elapsed, 1.0, 1e-6);
}

TEST(ChannelTest, SequentialTransfersFromOneProcess)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
    std::vector<double> ends;
    [](Simulation &s, Channel &c, std::vector<double> &out) -> Process {
        co_await c.transfer(0, 200.0);
        out.push_back(s.now());
        co_await c.transfer(0, 300.0);
        out.push_back(s.now());
    }(sim, ch, ends);
    sim.run();
    ASSERT_EQ(ends.size(), 2u);
    EXPECT_NEAR(ends[0], 2.0, 1e-6);
    EXPECT_NEAR(ends[1], 5.0, 1e-6);
}

TEST(ChannelTest, BytesConservation)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(80.0, 60.0),
                     BandwidthTrace::constant(120.0, 60.0)});
    TransferResult a, b, c;
    doTransfer(sim, ch, 0, 400.0, Channel::kNoTimeout, a);
    doTransfer(sim, ch, 1, 700.0, 2.0, b);
    doTransfer(sim, ch, 0, 100.0, Channel::kNoTimeout, c);
    sim.run();
    const double delivered = a.bytes_sent + b.bytes_sent + c.bytes_sent;
    EXPECT_NEAR(ch.totalBytesDelivered(), delivered, 1e-6);
}

TEST(ChannelTest, DeepFadeDelaysButCompletes)
{
    // 1 B/s fade for 10 s then 1000 B/s.
    Simulation sim;
    std::vector<double> samples(100, 1.0);
    samples.resize(700, 1000.0);
    Channel ch(sim, {BandwidthTrace(samples, 0.1)});
    TransferResult res;
    doTransfer(sim, ch, 0, 500.0, Channel::kNoTimeout, res);
    sim.run();
    EXPECT_TRUE(res.completed);
    // 10 B in the first 10 s, then 490 B at 1000 B/s.
    EXPECT_NEAR(res.elapsed, 10.0 + 0.49, 1e-3);
}

TEST(ChannelTest, FlowsOnDifferentLinksUseOwnCapacity)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0),
                     BandwidthTrace::constant(400.0, 60.0)});
    TransferResult a, b;
    doTransfer(sim, ch, 0, 100.0, Channel::kNoTimeout, a);
    doTransfer(sim, ch, 1, 400.0, Channel::kNoTimeout, b);
    sim.run();
    // Both share airtime (rate = cap / 2) and finish together at 2 s.
    EXPECT_NEAR(a.elapsed, 2.0, 1e-6);
    EXPECT_NEAR(b.elapsed, 2.0, 1e-6);
}

TEST(ChannelTest, DestroyWithActiveFlowReleasesFrame)
{
    // A suspended transfer must be cleaned up when the channel dies.
    Simulation sim;
    bool resumed = false;
    {
        Channel ch(sim, {BandwidthTrace::constant(1.0, 60.0)});
        [](Simulation &, Channel &c, bool &flag) -> Process {
            co_await c.transfer(0, 1e9);
            flag = true; // never reached.
        }(sim, ch, resumed);
        EXPECT_EQ(ch.activeFlows(), 1u);
    }
    EXPECT_FALSE(resumed);
}

TEST(ChannelTest, DestroyWithActiveFlowInvokesDropNotDone)
{
    // Callback form: destroying the channel mid-flow must invoke the
    // drop callback exactly once and never the completion callback.
    Simulation sim;
    int done_count = 0;
    int drop_count = 0;
    {
        Channel ch(sim, {BandwidthTrace::constant(1.0, 60.0)});
        ch.startTransfer(
            0, 1e9, Channel::kNoTimeout,
            [&](TransferResult) { ++done_count; },
            [&] { ++drop_count; });
        EXPECT_EQ(ch.activeFlows(), 1u);
        EXPECT_EQ(drop_count, 0); // not before destruction.
    }
    EXPECT_EQ(done_count, 0);
    EXPECT_EQ(drop_count, 1);
}

TEST(ChannelTest, DestroyDropsOnlyActiveFlows)
{
    // A flow that already completed gets its done callback; only the
    // one still in the air at destruction is dropped.
    Simulation sim;
    int done_count = 0;
    int drop_count = 0;
    {
        Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
        ch.startTransfer(
            0, 100.0, Channel::kNoTimeout,
            [&](TransferResult r) { done_count += r.completed; },
            [&] { ++drop_count; });
        sim.run(); // first transfer completes at t = 1.
        ch.startTransfer(
            0, 1e9, Channel::kNoTimeout,
            [&](TransferResult) { ++done_count; },
            [&] { ++drop_count; });
    }
    EXPECT_EQ(done_count, 1);
    EXPECT_EQ(drop_count, 1);
}

TEST(ChannelTest, TimeoutExactlyOnTraceBoundaryIsExact)
{
    // 100 B/s for 1 s then 200 B/s, timeout exactly at the boundary:
    // the cut must charge precisely the first segment's bytes — the
    // boundary wake event and the timeout coincide in virtual time.
    Simulation sim;
    std::vector<double> samples(10, 100.0);
    samples.resize(110, 200.0);
    Channel ch(sim, {BandwidthTrace(samples, 0.1)});
    TransferResult res;
    doTransfer(sim, ch, 0, 1000.0, 1.0, res);
    sim.run();
    EXPECT_FALSE(res.completed);
    EXPECT_NEAR(res.bytes_sent, 100.0, 1e-9);
    EXPECT_NEAR(res.elapsed, 1.0, 1e-12);
    EXPECT_NEAR(sim.now(), 1.0, 1e-12);
}

TEST(ChannelTest, CompletionExactlyOnTraceBoundaryBeatsTimeout)
{
    // The transfer finishes exactly when the capacity steps AND the
    // timeout fires: completion must win and report full delivery.
    Simulation sim;
    std::vector<double> samples(10, 100.0);
    samples.resize(110, 200.0);
    Channel ch(sim, {BandwidthTrace(samples, 0.1)});
    TransferResult res;
    doTransfer(sim, ch, 0, 100.0, 1.0, res);
    sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_NEAR(res.bytes_sent, 100.0, 1e-9);
    EXPECT_NEAR(res.elapsed, 1.0, 1e-12);
}

TEST(ChannelTest, CallbackFormDeliversResult)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(50.0, 60.0)});
    TransferResult got;
    ch.startTransfer(0, 100.0, Channel::kNoTimeout,
                     [&](TransferResult r) { got = r; });
    sim.run();
    EXPECT_TRUE(got.completed);
    EXPECT_NEAR(got.elapsed, 2.0, 1e-6);
}

TEST(ChannelTest, InvalidArgumentsDie)
{
    Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(50.0, 60.0)});
    EXPECT_DEATH(ch.startTransfer(5, 10.0, Channel::kNoTimeout, {}),
                 "link");
    EXPECT_DEATH(ch.startTransfer(0, 0.0, Channel::kNoTimeout, {}),
                 "bytes");
}

} // namespace
} // namespace net
} // namespace rog
