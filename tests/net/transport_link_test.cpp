/**
 * @file
 * Unit tests for the reliable transport sublayer: framed chunked
 * delivery over the fluid channel, resume-from-offset after a cut
 * link, CRC-triggered retransmission of corrupted chunks, duplicate
 * deduplication, reorder holds, deadline-aware give-up, attempt caps,
 * payload reassembly, and teardown safety — each driven by a curated
 * fault plan and watched by the InvariantChecker.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

constexpr double kHdr = FrameHeader::kWireSize;

MessageKey
key(std::uint16_t worker = 0, std::int64_t version = 1,
    std::uint32_t row = 0, bool pull = false)
{
    MessageKey k;
    k.worker = worker;
    k.version = version;
    k.row = row;
    k.pull = pull;
    return k;
}

/** One link at a constant rate, one message, one curated fault plan. */
struct Bench
{
    sim::Simulation sim;
    fault::FaultPlan plan;
    std::unique_ptr<fault::FaultInjector> injector;
    std::unique_ptr<Channel> channel;
    fault::InvariantChecker checker;
    std::unique_ptr<ReliableLink> link;

    explicit Bench(const TransportConfig &cfg, fault::FaultPlan p = {},
                   double rate = 1000.0)
        : plan(std::move(p))
    {
        injector = std::make_unique<fault::FaultInjector>(sim, plan);
        channel = std::make_unique<Channel>(
            sim, std::vector<BandwidthTrace>{
                     BandwidthTrace::constant(rate, 600.0)});
        injector->attach(*channel);
        link = std::make_unique<ReliableLink>(sim, *channel, cfg,
                                              &checker);
    }

    SendResult
    send(const MessageKey &k, double payload,
         double deadline = kNoDeadline)
    {
        SendResult out;
        int fired = 0;
        link->startSend(0, k, payload, deadline, [&](SendResult r) {
            out = r;
            ++fired;
        });
        sim.run();
        EXPECT_EQ(fired, 1);
        return out;
    }
};

fault::TransferFaultRule
rule(double at)
{
    fault::TransferFaultRule r;
    r.link = 0;
    r.at_s = at;
    return r;
}

TEST(TransportLink, SingleChunkCleanDelivery)
{
    TransportConfig cfg;
    Bench b(cfg);
    const auto r = b.send(key(), 952.0);
    EXPECT_TRUE(r.delivered);
    EXPECT_FALSE(r.deadline_expired);
    EXPECT_EQ(r.chunks, 1u);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_DOUBLE_EQ(r.payload_bytes, 952.0);
    // Wire = payload + one frame header, at 1000 B/s.
    EXPECT_NEAR(r.bytes_sent, 952.0 + kHdr, 1e-6);
    EXPECT_NEAR(r.elapsed_s, 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(r.retransmitted_bytes, 0.0);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, MultiChunkPaysOneHeaderPerChunk)
{
    TransportConfig cfg;
    cfg.chunk_bytes = 400.0;
    Bench b(cfg);
    const auto r = b.send(key(), 1000.0); // 400 + 400 + 200.
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.chunks, 3u);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_NEAR(r.bytes_sent, 1000.0 + 3 * kHdr, 1e-6);
    EXPECT_NEAR(r.elapsed_s, (1000.0 + 3 * kHdr) / 1000.0, 1e-6);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, TruncationResumesFromDeliveredOffset)
{
    // The link dies 3000 wire-bytes into an 8240-byte chunk frame; the
    // retry resends only the header and the missing payload tail.
    TransportConfig cfg;
    cfg.jitter_frac = 0.0; // exact timing math below.
    fault::FaultPlan plan;
    auto t = rule(0.0);
    t.truncate_bytes = 3000.0;
    plan.transfer_faults.push_back(t);

    Bench b(cfg, plan);
    const auto r = b.send(key(), 8192.0);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.chunks, 1u);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.retries, 1u);
    // First attempt delivered header + 2952 payload; the resumed retry
    // sends header + the remaining 5240 payload bytes.
    EXPECT_NEAR(r.bytes_sent, 3000.0 + kHdr + (8192.0 - 2952.0), 1e-6);
    // Only the header travels twice.
    EXPECT_NEAR(r.retransmitted_bytes, kHdr, 1e-6);
    EXPECT_NEAR(r.backoff_s, cfg.backoff_base_s, 1e-9);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, FromScratchBaselineResendsWholeChunk)
{
    TransportConfig cfg;
    cfg.jitter_frac = 0.0;
    cfg.resume_from_offset = false;
    fault::FaultPlan plan;
    auto t = rule(0.0);
    t.truncate_bytes = 3000.0;
    plan.transfer_faults.push_back(t);

    Bench b(cfg, plan);
    const auto r = b.send(key(), 8192.0);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.retries, 1u);
    // The retry resends everything, so the 2952 payload bytes that had
    // already been delivered travel again (plus the header).
    EXPECT_NEAR(r.bytes_sent, 3000.0 + kHdr + 8192.0, 1e-6);
    EXPECT_NEAR(r.retransmitted_bytes, kHdr + 2952.0, 1e-6);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, CorruptedChunkFailsCrcAndIsRetransmitted)
{
    TransportConfig cfg;
    fault::FaultPlan plan;
    auto c = rule(0.0);
    c.corrupt = true;
    plan.transfer_faults.push_back(c);

    Bench b(cfg, plan);
    const auto r = b.send(key(), 2000.0);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.chunks, 1u);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.corrupt_chunks, 1u);
    // The corrupted copy is discarded whole: the clean retry resends
    // the full chunk, so everything delivered twice is retransmission.
    EXPECT_NEAR(r.retransmitted_bytes, kHdr + 2000.0, 1e-6);
    // The checker saw the CRC rejection and the clean accept; neither
    // violates an invariant (no corrupted chunk was *accepted*).
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, DuplicateDeliveryIsAppliedExactlyOnce)
{
    TransportConfig cfg;
    fault::FaultPlan plan;
    auto d = rule(0.0);
    d.duplicate = true;
    plan.transfer_faults.push_back(d);

    Bench b(cfg, plan);
    const auto r = b.send(key(), 2000.0);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.duplicate_chunks, 1u);
    // Apply-once under duplication is exactly what the checker's
    // accepted-chunks shadow set verifies.
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, ReorderedChunkIsHeldAndAppliedAfterSuccessor)
{
    TransportConfig cfg;
    cfg.chunk_bytes = 1000.0;
    fault::FaultPlan plan;
    auto o = rule(0.0);
    o.reorder = true;
    plan.transfer_faults.push_back(o);

    Bench b(cfg, plan);
    const auto r = b.send(key(), 2000.0); // two chunks.
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.chunks, 2u);
    EXPECT_EQ(r.reordered_chunks, 1u);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();

    // The log must show chunk 1 accepted before the held chunk 0.
    std::vector<std::uint32_t> accept_order;
    for (const auto &ev : b.link->log())
        if (ev.kind == TransportEvent::Kind::Accept)
            accept_order.push_back(ev.chunk_seq);
    ASSERT_EQ(accept_order.size(), 2u);
    EXPECT_EQ(accept_order[0], 1u);
    EXPECT_EQ(accept_order[1], 0u);
}

TEST(TransportLink, DeadlineExpiresInsteadOfBackingOffPastIt)
{
    // A link that is dead for the first 10 s: a send with a 1 s
    // deadline must give up at the deadline, not retry into the void.
    TransportConfig cfg;
    fault::FaultPlan plan;
    fault::LinkFault dead;
    dead.link = 0;
    dead.start_s = 0.0;
    dead.duration_s = 10.0;
    dead.factor = 0.0;
    plan.link_faults.push_back(dead);

    sim::Simulation sim;
    fault::FaultInjector injector(sim, plan);
    Channel ch(sim, {injector.perturbTrace(
                    BandwidthTrace::constant(1000.0, 600.0), 0, 600.0)});
    injector.attach(ch);
    fault::InvariantChecker checker;
    ReliableLink link(sim, ch, cfg, &checker);

    SendResult out;
    int fired = 0;
    link.startSend(0, key(), 500.0, 1.0, [&](SendResult r) {
        out = r;
        ++fired;
    });
    sim.run();
    ASSERT_EQ(fired, 1);
    EXPECT_FALSE(out.delivered);
    EXPECT_TRUE(out.deadline_expired);
    EXPECT_NEAR(out.elapsed_s, 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(out.bytes_sent, 0.0);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST(TransportLink, AttemptCapGivesUpAfterRepeatedCorruption)
{
    TransportConfig cfg;
    cfg.max_attempts_per_chunk = 2;
    fault::FaultPlan plan;
    for (const double at : {0.0, 0.01}) {
        auto c = rule(at);
        c.corrupt = true;
        plan.transfer_faults.push_back(c);
    }

    Bench b(cfg, plan);
    const auto r = b.send(key(), 1000.0);
    EXPECT_FALSE(r.delivered);
    EXPECT_FALSE(r.deadline_expired);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.corrupt_chunks, 2u);
    // Nothing corrupted was ever accepted.
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, PayloadReassemblyIsByteIdenticalUnderFaults)
{
    // Real bytes through truncation + corruption + duplication: the
    // receiver must reassemble exactly what was sent.
    TransportConfig cfg;
    cfg.chunk_bytes = 300.0;
    fault::FaultPlan plan;
    auto t = rule(0.0);
    t.truncate_bytes = 150.0;
    plan.transfer_faults.push_back(t);
    auto c = rule(0.2);
    c.corrupt = true;
    plan.transfer_faults.push_back(c);
    auto d = rule(0.5);
    d.duplicate = true;
    plan.transfer_faults.push_back(d);

    Bench b(cfg, plan);
    std::vector<std::uint8_t> payload(1000);
    std::iota(payload.begin(), payload.end(), std::uint8_t{0});

    SendResult out;
    int fired = 0;
    const MessageKey k = key(3, 42, 7);
    b.link->startSendPayload(0, k, payload, kNoDeadline,
                             [&](SendResult r) {
                                 out = r;
                                 ++fired;
                             });
    b.sim.run();
    ASSERT_EQ(fired, 1);
    EXPECT_TRUE(out.delivered);
    EXPECT_GT(out.retries, 0u);
    EXPECT_EQ(b.link->deliveredPayload(k), payload);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, PayloadNeedNotOutliveStartCall)
{
    // The lifetime contract (see startSendPayload): the link leases a
    // retransmission copy before returning, so the caller may destroy
    // and even clobber its buffer immediately — mid-send, with
    // retransmissions still reading "the payload". Faults force both a
    // resume and a CRC retry so retries really do re-read it.
    TransportConfig cfg;
    cfg.chunk_bytes = 300.0;
    fault::FaultPlan plan;
    auto t = rule(0.0);
    t.truncate_bytes = 150.0;
    plan.transfer_faults.push_back(t);
    auto c = rule(0.3);
    c.corrupt = true;
    plan.transfer_faults.push_back(c);

    Bench b(cfg, plan);
    std::vector<std::uint8_t> expected(1000);
    std::iota(expected.begin(), expected.end(), std::uint8_t{0});

    SendResult out;
    int fired = 0;
    const MessageKey k = key(1, 9, 4);
    {
        auto doomed = expected; // dies (and is poisoned) below.
        b.link->startSendPayload(0, k, doomed, kNoDeadline,
                                 [&](SendResult r) {
                                     out = r;
                                     ++fired;
                                 });
        std::fill(doomed.begin(), doomed.end(), std::uint8_t{0xEE});
    }
    b.sim.run();
    ASSERT_EQ(fired, 1);
    EXPECT_TRUE(out.delivered);
    EXPECT_GT(out.retries, 0u);
    EXPECT_EQ(b.link->deliveredPayload(k), expected);
    EXPECT_TRUE(b.checker.clean()) << b.checker.report();
}

TEST(TransportLink, PoolRecyclesAcrossBackToBackSends)
{
    // Steady-state sends lease their working buffers from the global
    // BufferPool: after the first send warmed the pool, later sends
    // should be served mostly from the free lists.
    TransportConfig cfg;
    Bench b(cfg);
    b.send(key(0, 1), 500.0); // warm-up.
    const auto before = BufferPool::global().stats();
    for (std::int64_t v = 2; v < 10; ++v)
        EXPECT_TRUE(b.send(key(0, v), 500.0).delivered);
    const auto after = BufferPool::global().stats();
    EXPECT_GT(after.leases, before.leases);
    EXPECT_EQ(after.allocations, before.allocations)
        << "steady-state sends allocated fresh buffers";
}

TEST(TransportLink, TotalsAggregateAcrossSends)
{
    TransportConfig cfg;
    fault::FaultPlan plan;
    auto c = rule(0.0);
    c.corrupt = true;
    plan.transfer_faults.push_back(c);

    Bench b(cfg, plan);
    const auto r1 = b.send(key(0, 1), 500.0);
    const auto r2 = b.send(key(0, 2), 700.0);
    EXPECT_TRUE(r1.delivered);
    EXPECT_TRUE(r2.delivered);
    const auto &t = b.link->totals();
    EXPECT_EQ(t.sends, 2u);
    EXPECT_EQ(t.delivered, 2u);
    EXPECT_EQ(t.failed, 0u);
    EXPECT_EQ(t.attempts, r1.attempts + r2.attempts);
    EXPECT_EQ(t.corrupt_chunks, 1u);
    EXPECT_NEAR(t.bytes_sent, r1.bytes_sent + r2.bytes_sent, 1e-6);
}

TEST(TransportLink, BackoffJitterIsDeterministicPerKey)
{
    // Same config + same faults + same key ⇒ byte-identical event log;
    // a different message key draws a different jitter stream.
    const auto run = [](const MessageKey &k) {
        TransportConfig cfg;
        fault::FaultPlan plan;
        auto t = rule(0.0);
        t.truncate_bytes = 200.0;
        plan.transfer_faults.push_back(t);
        auto t2 = rule(0.05);
        t2.truncate_bytes = 100.0;
        plan.transfer_faults.push_back(t2);
        Bench b(cfg, plan);
        const auto r = b.send(k, 2000.0);
        EXPECT_TRUE(r.delivered);
        return b.link->logDump();
    };
    const auto a1 = run(key(1, 5, 2));
    const auto a2 = run(key(1, 5, 2));
    const auto other = run(key(2, 5, 2));
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, other);
}

TEST(TransportLink, DestroyMidSendInvokesDropNotDone)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(1.0, 600.0)});
    bool done_fired = false;
    bool drop_fired = false;
    {
        ReliableLink link(sim, ch, TransportConfig{});
        link.startSend(
            0, key(), 1e6, kNoDeadline,
            [&](SendResult) { done_fired = true; },
            [&] { drop_fired = true; });
        // Destroy the link with the first chunk still in the air.
    }
    EXPECT_FALSE(done_fired);
    EXPECT_TRUE(drop_fired);
    sim.run(); // stale channel callbacks must no-op.
    EXPECT_FALSE(done_fired);
}

TEST(TransportLink, ResetAbortsInFlightAndForgetsDeliveredKeys)
{
    // Peer-restart contract (see reset()): every in-flight send fails
    // fast with delivered=false, and the per-key delivery memory is
    // wiped so a re-send of an already-delivered key goes out again
    // instead of being suppressed as a duplicate of a dead process's
    // stream. This is what DesFabric/SocketFabric::resetPeer leans on
    // when a worker adopts a bumped server epoch.
    TransportConfig cfg;
    Bench b(cfg);
    std::vector<std::uint8_t> payload(600);
    std::iota(payload.begin(), payload.end(), std::uint8_t{1});

    const MessageKey done_key = key(0, 1);
    SendResult first;
    int first_fired = 0;
    b.link->startSendPayload(0, done_key, payload, kNoDeadline,
                             [&](SendResult r) {
                                 first = r;
                                 ++first_fired;
                             });
    b.sim.run();
    ASSERT_EQ(first_fired, 1);
    ASSERT_TRUE(first.delivered);
    ASSERT_EQ(b.link->deliveredPayload(done_key), payload);

    // A second message still in the air when the peer dies.
    const MessageKey inflight_key = key(0, 2);
    SendResult aborted;
    int aborted_fired = 0;
    b.link->startSend(0, inflight_key, 1e6, kNoDeadline,
                      [&](SendResult r) {
                          aborted = r;
                          ++aborted_fired;
                      });
    b.sim.runUntil(b.sim.now() + 0.05);
    ASSERT_EQ(aborted_fired, 0); // genuinely mid-flight.

    b.link->reset();
    EXPECT_EQ(aborted_fired, 1);
    EXPECT_FALSE(aborted.delivered);
    EXPECT_TRUE(b.link->deliveredPayload(done_key).empty());

    // Epoch bumped, fresh remote receiver: the same key must flow
    // end to end again and repopulate the delivery memory.
    SendResult again;
    int again_fired = 0;
    b.link->startSendPayload(0, done_key, payload, kNoDeadline,
                             [&](SendResult r) {
                                 again = r;
                                 ++again_fired;
                             });
    b.sim.run();
    ASSERT_EQ(again_fired, 1);
    EXPECT_TRUE(again.delivered);
    EXPECT_EQ(b.link->deliveredPayload(done_key), payload);
    sim::Simulation &s = b.sim;
    s.run(); // stale channel callbacks from the aborted op must no-op.
    EXPECT_EQ(aborted_fired, 1);
}

TEST(TransportLink, ResetCallbackMayStartNewSend)
{
    // The done callback of an aborted op may start its retry
    // immediately (the worker's re-Hello path does exactly this): the
    // new op must land in the fresh op set, not the one being torn
    // down, and then complete normally.
    TransportConfig cfg;
    Bench b(cfg);
    SendResult retry;
    int retry_fired = 0;
    b.link->startSend(0, key(0, 7), 1e6, kNoDeadline,
                      [&](SendResult r) {
                          if (r.delivered)
                              return;
                          b.link->startSend(0, key(0, 8), 400.0,
                                            kNoDeadline,
                                            [&](SendResult r2) {
                                                retry = r2;
                                                ++retry_fired;
                                            });
                      });
    b.sim.runUntil(0.05);
    b.link->reset();
    EXPECT_EQ(retry_fired, 0);
    b.sim.run();
    ASSERT_EQ(retry_fired, 1);
    EXPECT_TRUE(retry.delivered);
}

TEST(TransportLink, InvalidArgumentsDie)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(100.0, 60.0)});
    ReliableLink link(sim, ch, TransportConfig{});
    EXPECT_DEATH(link.startSend(0, key(), -1.0, kNoDeadline, {}),
                 "payload");
    TransportConfig bad;
    bad.chunk_bytes = 0.0;
    EXPECT_DEATH(ReliableLink(sim, ch, bad), "chunk");
    TransportConfig badj;
    badj.jitter_frac = 1.5;
    EXPECT_DEATH(ReliableLink(sim, ch, badj), "jitter");
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
