/**
 * @file
 * Unit tests for the transport wire format: CRC32C check values,
 * header serialize/parse round-trips, and rejection of short, garbled,
 * or wrong-magic buffers (a corrupted header must parse as nothing,
 * never as a different frame).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/transport/crc32c.hpp"
#include "net/transport/frame.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

std::vector<std::uint8_t>
bytes(const char *s)
{
    return {reinterpret_cast<const std::uint8_t *>(s),
            reinterpret_cast<const std::uint8_t *>(s) + std::strlen(s)};
}

TEST(Crc32cTest, StandardCheckValue)
{
    // The canonical CRC32C check vector.
    EXPECT_EQ(crc32c(bytes("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyAndSeedContinuation)
{
    EXPECT_EQ(crc32c({}), 0u);
    // Checksumming in pieces equals checksumming at once.
    const auto all = bytes("hello, gradient row");
    const auto head = bytes("hello, ");
    const auto tail = bytes("gradient row");
    EXPECT_EQ(crc32c(tail, crc32c(head)), crc32c(all));
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum)
{
    auto data = bytes("the quick brown fox");
    const auto before = crc32c(data);
    data[7] ^= 0x01;
    EXPECT_NE(crc32c(data), before);
}

FrameHeader
sampleHeader()
{
    FrameHeader h;
    h.flags = kFlagPull;
    h.worker = 7;
    h.version = -3;
    h.row = 123456;
    h.chunk_seq = 4;
    h.chunk_count = 9;
    h.payload_off = (1ull << 33) + 17;
    h.payload_len = 0xDEADBEEFu;
    h.payload_crc = 0xCAFEBABEu;
    return h;
}

TEST(FrameTest, SerializeParseRoundTrip)
{
    const FrameHeader h = sampleHeader();
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize);
    h.serialize(wire);

    const auto parsed = FrameHeader::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->flags, h.flags);
    EXPECT_TRUE(parsed->pull());
    EXPECT_EQ(parsed->worker, h.worker);
    EXPECT_EQ(parsed->version, h.version);
    EXPECT_EQ(parsed->row, h.row);
    EXPECT_EQ(parsed->chunk_seq, h.chunk_seq);
    EXPECT_EQ(parsed->chunk_count, h.chunk_count);
    EXPECT_EQ(parsed->payload_off, h.payload_off);
    EXPECT_EQ(parsed->payload_len, h.payload_len);
    EXPECT_EQ(parsed->payload_crc, h.payload_crc);
}

TEST(FrameTest, DefaultHeaderRoundTrips)
{
    const FrameHeader h; // all defaults (push direction).
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize);
    h.serialize(wire);
    const auto parsed = FrameHeader::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->pull());
    EXPECT_EQ(parsed->chunk_count, 1u);
}

TEST(FrameTest, ShortBufferRejected)
{
    const FrameHeader h = sampleHeader();
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize);
    h.serialize(wire);
    for (std::size_t n = 0; n < FrameHeader::kWireSize; ++n) {
        const auto parsed = FrameHeader::parse(
            std::span<const std::uint8_t>(wire.data(), n));
        EXPECT_FALSE(parsed.has_value()) << "length " << n;
    }
}

TEST(FrameTest, WrongMagicRejected)
{
    const FrameHeader h = sampleHeader();
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize);
    h.serialize(wire);
    wire[0] ^= 0xFF;
    EXPECT_FALSE(FrameHeader::parse(wire).has_value());
}

TEST(FrameTest, AnySingleByteCorruptionRejected)
{
    // Flip each header byte in turn; the header CRC must catch every
    // one (line noise never parses as a different valid frame).
    const FrameHeader h = sampleHeader();
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize);
    h.serialize(wire);
    for (std::size_t i = 0; i < FrameHeader::kWireSize; ++i) {
        auto garbled = wire;
        garbled[i] ^= 0x01;
        EXPECT_FALSE(FrameHeader::parse(garbled).has_value())
            << "byte " << i;
    }
}

TEST(FrameTest, TrailingPayloadBytesIgnoredByParse)
{
    // parse() reads exactly the header prefix of a frame buffer.
    const FrameHeader h = sampleHeader();
    std::vector<std::uint8_t> wire(FrameHeader::kWireSize + 64, 0xAB);
    h.serialize(std::span<std::uint8_t>(wire.data(),
                                        FrameHeader::kWireSize));
    const auto parsed = FrameHeader::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->row, h.row);
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
