/**
 * @file
 * Randomized property tests of the fluid-flow channel: under arbitrary
 * interleavings of transfers, timeouts, and fluctuating traces, the
 * channel must conserve bytes, never over-deliver, keep time monotone,
 * and complete every untimed transfer.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/channel.hpp"
#include "net/trace_generator.hpp"
#include "sim/process.hpp"

namespace rog {
namespace net {
namespace {

struct FuzzOutcome
{
    std::vector<TransferResult> results;
    double total_delivered = 0.0;
    double final_time = 0.0;
};

FuzzOutcome
runFuzz(std::uint64_t seed, std::size_t links, std::size_t transfers)
{
    Rng rng(seed);
    sim::Simulation sim;
    std::vector<BandwidthTrace> traces;
    for (std::size_t l = 0; l < links; ++l) {
        traces.push_back(generateTrace(
            TraceModel::outdoor(rng.uniform(5e3, 50e3)), 120.0,
            seed * 100 + l));
    }
    FuzzOutcome out;
    out.results.resize(transfers);
    {
        Channel ch(sim, std::move(traces));
        // Spawn starters at random times with random sizes/timeouts.
        for (std::size_t i = 0; i < transfers; ++i) {
            const double start = rng.uniform(0.0, 30.0);
            const auto link = rng.uniformInt(links);
            const double bytes = rng.uniform(10.0, 50e3);
            const bool timed = rng.uniform() < 0.5;
            const double timeout =
                timed ? rng.uniform(0.01, 3.0) : Channel::kNoTimeout;
            sim.after(start, [&ch, &out, i, link, bytes, timeout] {
                ch.startTransfer(link, bytes, timeout,
                                 [&out, i](TransferResult r) {
                                     out.results[i] = r;
                                 });
            });
        }
        sim.run();
        out.total_delivered = ch.totalBytesDelivered();
        out.final_time = sim.now();
    }
    return out;
}

class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChannelFuzz, ConservationAndSanity)
{
    const auto out = runFuzz(GetParam(), 3, 40);
    double sum = 0.0;
    for (const auto &r : out.results) {
        // Every transfer got a result (completed or timed out).
        EXPECT_GT(r.bytes_requested, 0.0);
        EXPECT_GE(r.bytes_sent, 0.0);
        EXPECT_LE(r.bytes_sent, r.bytes_requested + 1e-6);
        EXPECT_GE(r.elapsed, 0.0);
        if (r.completed) {
            EXPECT_NEAR(r.bytes_sent, r.bytes_requested, 1e-6);
        }
        sum += r.bytes_sent;
    }
    EXPECT_NEAR(out.total_delivered, sum, 1.0);
    EXPECT_GT(out.final_time, 0.0);
}

TEST_P(ChannelFuzz, UntimedTransfersAlwaysComplete)
{
    Rng rng(GetParam() ^ 0xbeef);
    sim::Simulation sim;
    Channel ch(sim, {generateTrace(TraceModel::outdoor(20e3), 120.0,
                                   GetParam())});
    std::vector<TransferResult> results(15);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double start = rng.uniform(0.0, 20.0);
        const double bytes = rng.uniform(100.0, 30e3);
        sim.after(start, [&ch, &results, i, bytes] {
            ch.startTransfer(0, bytes, Channel::kNoTimeout,
                             [&results, i](TransferResult r) {
                                 results[i] = r;
                             });
        });
    }
    sim.run();
    for (const auto &r : results)
        EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

} // namespace
} // namespace net
} // namespace rog
