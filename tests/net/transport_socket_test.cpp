/**
 * @file
 * True multi-process socket tests: the receiver endpoint runs in a
 * forked child on its own PollLoop, the sender stays in the parent,
 * and the only things they share are the wire and a pipe carrying the
 * ephemeral port. The child writes its event log and rx trace to temp
 * files; the parent merges them with its own records and asserts the
 * whole run cross-validates against the DES replay — the end-to-end
 * recipe `rog_transportd` automates, proven here process-for-process.
 *
 * These tests need working loopback sockets and fork(), so they carry
 * the `socket` ctest label instead of `fast` and are exercised by the
 * dedicated transport-socket CI job.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "common/poll_loop.hpp"
#include "fault/socket_fault.hpp"
#include "net/transport/crossval.hpp"
#include "net/transport/reliable_link.hpp"
#include "net/transport/socket_backend.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

MessageKey
sendKey(std::size_t i)
{
    MessageKey key;
    key.worker = 1;
    key.version = static_cast<std::int64_t>(i);
    key.row = 100 + static_cast<std::uint32_t>(i);
    key.pull = false;
    return key;
}

TraceConfig
traceConfigFor(const std::string &backend, const TransportConfig &cfg)
{
    TraceConfig tc;
    tc.backend = backend;
    tc.chunk_bytes = cfg.chunk_bytes;
    tc.max_attempts = cfg.max_attempts_per_chunk;
    tc.backoff_base_s = cfg.backoff_base_s;
    tc.backoff_max_s = cfg.backoff_max_s;
    tc.jitter_frac = cfg.jitter_frac;
    tc.jitter_seed = cfg.jitter_seed;
    tc.resume_from_offset = cfg.resume_from_offset;
    return tc;
}

/** Receiver process body. Never returns into gtest: _exit()s. */
[[noreturn]] void
receiverChild(const std::string &backend, std::size_t expect,
              const TraceConfig &tc, int port_fd,
              const std::string &events_path,
              const std::string &trace_path)
{
    PollLoop loop;
    std::unique_ptr<ReceiverEndpointBase> ep;
    std::uint16_t port = 0;
    if (backend == "udp") {
        auto rx = std::make_unique<UdpReceiverEndpoint>(loop, 0);
        port = rx->port();
        ep = std::move(rx);
    } else {
        auto rx = std::make_unique<TcpReceiverEndpoint>(loop, 0);
        port = rx->port();
        ep = std::move(rx);
    }
    if (!ep->ok())
        _exit(2);
    if (::write(port_fd, &port, sizeof port) !=
        static_cast<ssize_t>(sizeof port))
        _exit(3);
    ::close(port_fd);

    if (!loop.runUntil(
            [&] { return ep->deliveredMessages() >= expect; }, 15.0))
        _exit(4);
    // Linger briefly so the final ACK actually leaves the machine.
    loop.runUntil([] { return false; }, 0.3);
    if (!ep->ok())
        _exit(5);

    std::ofstream ev(events_path);
    for (const TransportEvent &e : ep->log())
        ev << toString(e) << "\n";
    TransportTrace rx_trace;
    rx_trace.config = tc;
    rx_trace.rx = ep->rxRecords();
    std::ofstream tr(trace_path);
    tr << rx_trace.toText();
    ev.flush();
    tr.flush();
    _exit((ev && tr) ? 0 : 6);
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct RunSpec
{
    std::string backend = "udp";
    std::size_t sends = 3;
    double bytes = 50000.0;
    const fault::SocketFaultPlan *faults = nullptr;
};

void
runMultiProcess(const RunSpec &spec)
{
    char dir_tmpl[] = "/tmp/rog_socket_test_XXXXXX";
    char *dir = ::mkdtemp(dir_tmpl);
    ASSERT_NE(dir, nullptr) << "mkdtemp failed";
    const std::string events_path = std::string(dir) + "/rx.events";
    const std::string trace_path = std::string(dir) + "/rx.trace";

    TransportConfig cfg;
    cfg.backoff_base_s = 0.005;
    cfg.backoff_max_s = 0.05;
    const TraceConfig tc = traceConfigFor(spec.backend, cfg);

    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
        ::close(port_pipe[0]);
        receiverChild(spec.backend, spec.sends, tc, port_pipe[1],
                      events_path, trace_path);
    }
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof port),
              static_cast<ssize_t>(sizeof port));
    ::close(port_pipe[0]);
    ASSERT_NE(port, 0);

    // Sender side, in this process.
    PollLoop loop;
    std::unique_ptr<fault::SocketFaultInjector> faults;
    if (spec.faults != nullptr)
        faults =
            std::make_unique<fault::SocketFaultInjector>(*spec.faults);
    TransportTrace trace;
    trace.config = tc;
    SocketOptions opts;
    opts.ack_timeout_s = 0.05;
    std::unique_ptr<SocketSenderBase> sock;
    if (spec.backend == "udp")
        sock = std::make_unique<UdpBackend>(loop, "127.0.0.1", port,
                                            opts, faults.get(), &trace);
    else
        sock = std::make_unique<TcpBackend>(loop, "127.0.0.1", port,
                                            opts, &trace);
    ASSERT_TRUE(sock->ok()) << sock->error();

    ReliableLink link(*sock, cfg);
    std::size_t completed = 0;
    std::size_t delivered = 0;
    std::function<void(std::size_t)> issue = [&](std::size_t i) {
        if (i >= spec.sends)
            return;
        SendRecord rec;
        rec.link = 0;
        rec.key = sendKey(i);
        rec.payload_bytes = spec.bytes;
        rec.deadline_s = std::numeric_limits<double>::infinity();
        trace.sends.push_back(rec);
        link.startSend(0, rec.key, spec.bytes, kNoDeadline,
                       [&, i](SendResult r) {
                           ++completed;
                           if (r.delivered)
                               ++delivered;
                           issue(i + 1);
                       });
    };
    issue(0);
    ASSERT_TRUE(loop.runUntil([&] { return completed >= spec.sends; },
                              15.0))
        << "sender timed out; " << completed << "/" << spec.sends;
    EXPECT_EQ(delivered, spec.sends);
    ASSERT_TRUE(sock->ok()) << sock->error();

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0)
        << "receiver child failed with exit code "
        << WEXITSTATUS(status);

    // Merge the two halves and replay the whole run through the twin.
    const TraceParseResult rx_trace =
        TransportTrace::tryParse(slurp(trace_path));
    ASSERT_TRUE(rx_trace.ok()) << rx_trace.error;
    const LogParseResult rx_log = tryParseLog(slurp(events_path));
    ASSERT_TRUE(rx_log.ok()) << rx_log.error;
    trace.rx = rx_trace.trace.rx;
    std::vector<TransportEvent> merged = link.log();
    merged.insert(merged.end(), rx_log.events.begin(),
                  rx_log.events.end());

    const CrossvalReport report = crossValidate(trace, merged);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_GT(report.sender_events, 0u);
    EXPECT_GT(report.receiver_events, 0u);

    ::unlink(events_path.c_str());
    ::unlink(trace_path.c_str());
    ::rmdir(dir);
}

TEST(TransportSocket, UdpCleanTwoProcessRunCrossValidates)
{
    RunSpec spec;
    spec.backend = "udp";
    runMultiProcess(spec);
}

TEST(TransportSocket, UdpFaultyTwoProcessRunCrossValidates)
{
    fault::SocketFaultPlan plan;
    plan.seed = 13;
    plan.drop_p = 0.15;
    plan.dup_p = 0.1;
    plan.trunc_p = 0.2;
    plan.corrupt_p = 0.1;
    plan.delay_p = 0.1;
    plan.delay_s = 0.002;
    RunSpec spec;
    spec.backend = "udp";
    spec.sends = 4;
    spec.bytes = 60000.0;
    spec.faults = &plan;
    runMultiProcess(spec);
}

TEST(TransportSocket, TcpCleanTwoProcessRunCrossValidates)
{
    RunSpec spec;
    spec.backend = "tcp";
    spec.sends = 3;
    spec.bytes = 40000.0;
    runMultiProcess(spec);
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
