/**
 * @file
 * The full node engine over real sockets, in one process: server and
 * worker SocketFabrics share a PollLoop, and the identical engine
 * code that the DES twin runs (session_test.cpp) trains over loopback
 * UDP and TCP — backend choice is a config string, nothing more. A
 * faulty-UDP variant rides seeded wire perturbation through the same
 * path to show the session survives datagram loss and truncation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/poll_loop.hpp"
#include "core/node_engine.hpp"
#include "core/node_runner.hpp"
#include "net/session/socket_fabric.hpp"

namespace rog {
namespace net {
namespace session {
namespace {

struct FleetSpec
{
    std::string kind = "udp";
    std::size_t workers = 2;
    std::int64_t iters = 3;
    const fault::SocketFaultPlan *faults = nullptr;
};

void
runFleet(const FleetSpec &spec)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = spec.workers;
    core::NodeTrainConfig train = cfg.train;
    train.max_iters = spec.iters;
    train.worker_state_dir.clear();
    train.checkpoint_path.clear();

    std::unique_ptr<core::Workload> workload =
        core::makeNodeWorkload(cfg);

    PollLoop loop;
    SocketFabricOptions sopts;
    sopts.kind = spec.kind;
    sopts.transport = cfg.transport;
    sopts.socket = cfg.socket;
    SocketFabric server_fabric(loop, kServerNode, sopts);
    ASSERT_TRUE(server_fabric.ok()) << server_fabric.error();

    core::ServerNode server(server_fabric, *workload, train);
    server.start();
    const std::uint16_t port = server_fabric.listenPort();
    ASSERT_NE(port, 0);

    std::vector<std::unique_ptr<SocketFabric>> fabrics;
    std::vector<std::unique_ptr<core::WorkerNode>> workers;
    for (std::size_t w = 0; w < spec.workers; ++w) {
        SocketFabricOptions wopts = sopts;
        if (spec.faults != nullptr) {
            wopts.fault_plan = *spec.faults;
            wopts.inject_faults = true;
        }
        fabrics.push_back(std::make_unique<SocketFabric>(
            loop, workerNode(w), wopts));
        ASSERT_TRUE(fabrics.back()->ok()) << fabrics.back()->error();
        workers.push_back(std::make_unique<core::WorkerNode>(
            *fabrics.back(), *workload, train, w,
            core::WorkerResumeState{}));
        workers.back()->start("127.0.0.1", port);
    }

    // The server flips done() on the last Bye; keep polling until the
    // workers have also seen their Bye acks and left Phase::Leaving.
    const auto all_done = [&] {
        if (!server.done())
            return false;
        for (const auto &w : workers)
            if (!w->done())
                return false;
        return true;
    };
    ASSERT_TRUE(loop.runUntil(all_done, 30.0))
        << "fleet did not finish; min iter "
        << server.minWorkerIteration();
    for (auto &w : workers)
        EXPECT_TRUE(w->done());
    EXPECT_TRUE(std::isfinite(server.evaluateModel()));
    EXPECT_GT(server.appliedPushes(), 0u);
}

TEST(SessionSocket, UdpFleetTrainsToCompletion)
{
    FleetSpec spec;
    spec.kind = "udp";
    runFleet(spec);
}

TEST(SessionSocket, TcpFleetTrainsToCompletion)
{
    FleetSpec spec;
    spec.kind = "tcp";
    runFleet(spec);
}

/**
 * Delegates to a real SocketFabric but can veto connectPeer — the
 * deterministic stand-in for a return connect that fails (worker
 * receiver gone, fd exhaustion, refused port).
 */
class VetoConnectFabric : public Fabric
{
  public:
    explicit VetoConnectFabric(SocketFabric &inner) : inner_(inner) {}
    bool veto = false;

    int nodeId() const override { return inner_.nodeId(); }
    double now() const override { return inner_.now(); }
    FabricTimer
    after(double d, std::function<void()> f) override
    {
        return inner_.after(d, std::move(f));
    }
    void cancelTimer(FabricTimer id) override { inner_.cancelTimer(id); }
    bool
    connectPeer(int p, const std::string &h, std::uint16_t port) override
    {
        return !veto && inner_.connectPeer(p, h, port);
    }
    bool hasPeer(int p) const override { return inner_.hasPeer(p); }
    bool peerHealthy(int p) const override
    {
        return inner_.peerHealthy(p);
    }
    void dropPeer(int p) override { inner_.dropPeer(p); }
    void
    sendTo(int p, const transport::MessageKey &k,
           std::span<const std::uint8_t> b, double d,
           SendDone done) override
    {
        inner_.sendTo(p, k, b, d, std::move(done));
    }
    void
    setMessageHandler(MessageHandler h) override
    {
        inner_.setMessageHandler(std::move(h));
    }
    std::uint16_t listenPort() const override
    {
        return inner_.listenPort();
    }

  private:
    SocketFabric &inner_;
};

TEST(SessionSocket, TcpServerSurvivesHelloWhenReturnConnectFails)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 1;
    core::NodeTrainConfig train = cfg.train;
    train.worker_state_dir.clear();
    train.checkpoint_path.clear();

    std::unique_ptr<core::Workload> workload =
        core::makeNodeWorkload(cfg);

    PollLoop loop;
    SocketFabricOptions sopts;
    sopts.kind = "tcp";
    sopts.transport = cfg.transport;
    sopts.socket = cfg.socket;
    SocketFabric server_socket(loop, kServerNode, sopts);
    ASSERT_TRUE(server_socket.ok()) << server_socket.error();
    VetoConnectFabric server_fabric(server_socket);
    core::ServerNode server(server_fabric, *workload, train);
    server.start();

    // Hand-roll the worker half of the handshake so the Hello can
    // arrive while the server's return connect is failing.
    SocketFabric ghost(loop, workerNode(0), sopts);
    ASSERT_TRUE(ghost.ok()) << ghost.error();
    ASSERT_TRUE(ghost.connectPeer(kServerNode, "127.0.0.1",
                                  server_socket.listenPort()));
    bool welcomed = false;
    ghost.setMessageHandler(
        [&](const MessageKey &k, std::vector<std::uint8_t> &&) {
            if (k.row == kRowWelcome)
                welcomed = true;
        });

    // The server must drop the handshake — not panic inside sendTo on
    // the missing peer (the SIGKILL-right-after-Hello crash).
    server_fabric.veto = true;
    Hello h;
    h.worker = 0;
    h.epoch = train.epoch;
    h.nonce = 99;
    h.rx_port = ghost.listenPort();
    MessageKey key{0, packVersion(1, 0), kRowHello, false};
    ghost.sendTo(kServerNode, key, encode(h), loop.now() + 5.0, {});
    ASSERT_TRUE(loop.runUntil(
        [&] { return server.sessions().admissions() >= 1; }, 5.0));
    loop.runUntil([] { return false; }, 0.05); // let any Welcome land.
    EXPECT_FALSE(welcomed);

    // The connect recovers: the worker's Hello retry re-triggers
    // admission and the answered Welcome reaches its receiver.
    server_fabric.veto = false;
    h.nonce = 100;
    MessageKey retry{0, packVersion(1, 1), kRowHello, false};
    ghost.sendTo(kServerNode, retry, encode(h), loop.now() + 5.0, {});
    EXPECT_TRUE(loop.runUntil([&] { return welcomed; }, 5.0));
    EXPECT_GE(server.sessions().admissions(), 2u);
}

TEST(SessionSocket, UdpFleetSurvivesSeededWireFaults)
{
    fault::SocketFaultPlan plan;
    plan.seed = 31;
    plan.drop_p = 0.1;
    plan.dup_p = 0.05;
    plan.trunc_p = 0.1;
    plan.corrupt_p = 0.05;
    FleetSpec spec;
    spec.kind = "udp";
    spec.iters = 2;
    spec.faults = &plan;
    runFleet(spec);
}

} // namespace
} // namespace session
} // namespace net
} // namespace rog
