/**
 * @file
 * The full node engine over real sockets, in one process: server and
 * worker SocketFabrics share a PollLoop, and the identical engine
 * code that the DES twin runs (session_test.cpp) trains over loopback
 * UDP and TCP — backend choice is a config string, nothing more. A
 * faulty-UDP variant rides seeded wire perturbation through the same
 * path to show the session survives datagram loss and truncation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/poll_loop.hpp"
#include "core/node_engine.hpp"
#include "core/node_runner.hpp"
#include "net/session/socket_fabric.hpp"

namespace rog {
namespace net {
namespace session {
namespace {

struct FleetSpec
{
    std::string kind = "udp";
    std::size_t workers = 2;
    std::int64_t iters = 3;
    const fault::SocketFaultPlan *faults = nullptr;
};

void
runFleet(const FleetSpec &spec)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = spec.workers;
    core::NodeTrainConfig train = cfg.train;
    train.max_iters = spec.iters;
    train.worker_state_dir.clear();
    train.checkpoint_path.clear();

    std::unique_ptr<core::Workload> workload =
        core::makeNodeWorkload(cfg);

    PollLoop loop;
    SocketFabricOptions sopts;
    sopts.kind = spec.kind;
    sopts.transport = cfg.transport;
    sopts.socket = cfg.socket;
    SocketFabric server_fabric(loop, kServerNode, sopts);
    ASSERT_TRUE(server_fabric.ok()) << server_fabric.error();

    core::ServerNode server(server_fabric, *workload, train);
    server.start();
    const std::uint16_t port = server_fabric.listenPort();
    ASSERT_NE(port, 0);

    std::vector<std::unique_ptr<SocketFabric>> fabrics;
    std::vector<std::unique_ptr<core::WorkerNode>> workers;
    for (std::size_t w = 0; w < spec.workers; ++w) {
        SocketFabricOptions wopts = sopts;
        if (spec.faults != nullptr) {
            wopts.fault_plan = *spec.faults;
            wopts.inject_faults = true;
        }
        fabrics.push_back(std::make_unique<SocketFabric>(
            loop, workerNode(w), wopts));
        ASSERT_TRUE(fabrics.back()->ok()) << fabrics.back()->error();
        workers.push_back(std::make_unique<core::WorkerNode>(
            *fabrics.back(), *workload, train, w,
            core::WorkerResumeState{}));
        workers.back()->start("127.0.0.1", port);
    }

    // The server flips done() on the last Bye; keep polling until the
    // workers have also seen their Bye acks and left Phase::Leaving.
    const auto all_done = [&] {
        if (!server.done())
            return false;
        for (const auto &w : workers)
            if (!w->done())
                return false;
        return true;
    };
    ASSERT_TRUE(loop.runUntil(all_done, 30.0))
        << "fleet did not finish; min iter "
        << server.minWorkerIteration();
    for (auto &w : workers)
        EXPECT_TRUE(w->done());
    EXPECT_TRUE(std::isfinite(server.evaluateModel()));
    EXPECT_GT(server.appliedPushes(), 0u);
}

TEST(SessionSocket, UdpFleetTrainsToCompletion)
{
    FleetSpec spec;
    spec.kind = "udp";
    runFleet(spec);
}

TEST(SessionSocket, TcpFleetTrainsToCompletion)
{
    FleetSpec spec;
    spec.kind = "tcp";
    runFleet(spec);
}

TEST(SessionSocket, UdpFleetSurvivesSeededWireFaults)
{
    fault::SocketFaultPlan plan;
    plan.seed = 31;
    plan.drop_p = 0.1;
    plan.dup_p = 0.05;
    plan.trunc_p = 0.1;
    plan.corrupt_p = 0.05;
    FleetSpec spec;
    spec.kind = "udp";
    spec.iters = 2;
    spec.faults = &plan;
    runFleet(spec);
}

} // namespace
} // namespace session
} // namespace net
} // namespace rog
