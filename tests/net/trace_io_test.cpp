/**
 * @file
 * Unit tests for bandwidth-trace CSV persistence.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/trace_generator.hpp"
#include "net/trace_io.hpp"

namespace rog {
namespace net {
namespace {

TEST(TraceIoTest, CsvRoundTrip)
{
    const auto trace = generateTrace(TraceModel::outdoor(40e3), 10.0, 5);
    std::stringstream ss;
    writeTraceCsv(ss, trace);
    const auto loaded = readTraceCsv(ss);
    ASSERT_EQ(loaded.sampleCount(), trace.sampleCount());
    EXPECT_DOUBLE_EQ(loaded.stepSeconds(), trace.stepSeconds());
    for (std::size_t i = 0; i < trace.sampleCount(); ++i)
        EXPECT_NEAR(loaded.samples()[i], trace.samples()[i],
                    1e-3 * trace.samples()[i] + 1e-9);
}

TEST(TraceIoTest, HeaderIsWritten)
{
    std::stringstream ss;
    writeTraceCsv(ss, BandwidthTrace::constant(10.0, 1.0, 0.5));
    std::string line;
    std::getline(ss, line);
    EXPECT_EQ(line, "time_s,bytes_per_sec");
}

TEST(TraceIoTest, MissingHeaderThrows)
{
    std::stringstream ss("0,100\n0.1,200\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIoTest, MalformedRowThrows)
{
    std::stringstream ss("time_s,bytes_per_sec\n0,abc\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIoTest, NegativeCapacityThrows)
{
    std::stringstream ss("time_s,bytes_per_sec\n0,-5\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIoTest, NonUniformStepThrows)
{
    std::stringstream ss(
        "time_s,bytes_per_sec\n0,1\n0.1,2\n0.35,3\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIoTest, EmptyBodyThrows)
{
    std::stringstream ss("time_s,bytes_per_sec\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIoTest, SingleSampleDefaultsStep)
{
    std::stringstream ss("time_s,bytes_per_sec\n0,42\n");
    const auto t = readTraceCsv(ss);
    EXPECT_EQ(t.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(t.samples()[0], 42.0);
}

TEST(TraceIoTest, FileRoundTrip)
{
    const std::string path = "/tmp/rog_trace_io_test.csv";
    const auto trace = generateTrace(TraceModel::indoor(20e3), 5.0, 9);
    saveTrace(path, trace);
    const auto loaded = loadTrace(path);
    EXPECT_EQ(loaded.sampleCount(), trace.sampleCount());
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(loadTrace("/nonexistent/dir/trace.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace net
} // namespace rog
