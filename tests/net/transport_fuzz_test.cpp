/**
 * @file
 * Property/fuzz harness for the reliable transport: 1000 seeded random
 * fault schedules — blackouts, bandwidth collapses, truncations,
 * forced timeouts, payload corruption, duplicate delivery, and chunk
 * reordering — against random message workloads. Under every schedule
 * the transport must fire every completion callback exactly once,
 * deliver (or verifiably fail) every message, keep the
 * InvariantChecker's transport invariants clean (apply-once under
 * duplication, no corrupted chunk accepted, resume never past the
 * request), and replay byte-identically from the same seed.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

constexpr std::size_t kLinks = 2;
constexpr std::size_t kMessages = 8;

fault::FaultPlanConfig
fuzzFaultConfig()
{
    fault::FaultPlanConfig cfg;
    cfg.links = kLinks;
    cfg.workers = 0; // transport-level only: no churn.
    cfg.horizon_s = 40.0;
    cfg.max_corruptions_per_link = 2;
    cfg.max_duplicates_per_link = 2;
    cfg.max_reorders_per_link = 2;
    return cfg;
}

struct FuzzOutcome
{
    std::vector<SendResult> results;
    std::vector<int> callback_count;
    TransportTotals totals;
    std::size_t violations = 0;
    std::size_t checks = 0;
    std::string violation_report;
    std::string log_dump;
};

FuzzOutcome
runTransportFuzz(std::uint64_t seed)
{
    Rng rng(seed);
    const fault::FaultPlan plan =
        fault::FaultPlan::random(seed, fuzzFaultConfig());
    plan.validate();

    sim::Simulation sim;
    fault::FaultInjector injector(sim, plan);
    std::vector<BandwidthTrace> traces;
    for (std::size_t l = 0; l < kLinks; ++l) {
        const auto base = generateTrace(
            TraceModel::outdoor(rng.uniform(5e3, 40e3)), 60.0,
            seed * 100 + l);
        traces.push_back(injector.perturbTrace(base, l, 200.0));
    }

    TransportConfig cfg;
    cfg.chunk_bytes = rng.uniform(500.0, 5000.0);
    cfg.max_attempts_per_chunk = 2 + rng.uniformInt(6);
    cfg.jitter_seed = seed;

    FuzzOutcome out;
    out.results.resize(kMessages);
    out.callback_count.assign(kMessages, 0);
    {
        Channel ch(sim, std::move(traces));
        injector.attach(ch);
        fault::InvariantChecker checker;
        ReliableLink link(sim, ch, cfg, &checker);

        for (std::size_t i = 0; i < kMessages; ++i) {
            const double start = rng.uniform(0.0, 30.0);
            const auto l = rng.uniformInt(kLinks);
            const double bytes = rng.uniform(100.0, 20e3);
            const bool timed = rng.uniform() < 0.3;
            const double deadline =
                timed ? start + rng.uniform(0.5, 5.0) : kNoDeadline;
            MessageKey key;
            key.worker = static_cast<std::uint16_t>(l);
            key.version = static_cast<std::int64_t>(i);
            key.row = static_cast<std::uint32_t>(rng.uniformInt(64));
            key.pull = rng.uniform() < 0.5;
            sim.after(start, [&link, &out, i, l, key, bytes, deadline] {
                link.startSend(l, key, bytes, deadline,
                               [&out, i](SendResult r) {
                                   out.results[i] = r;
                                   ++out.callback_count[i];
                               });
            });
        }
        sim.run();
        out.totals = link.totals();
        out.violations = checker.violationCount();
        out.checks = checker.checksRun();
        out.violation_report = checker.report();
        out.log_dump = link.logDump();
    }
    return out;
}

class TransportFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

// 8 params x 125 seeds each = 1000 random fault schedules.
TEST_P(TransportFuzz, InvariantsHoldUnderRandomFaultSchedules)
{
    for (std::uint64_t k = 0; k < 125; ++k) {
        const std::uint64_t seed = GetParam() * 1000 + k;
        const auto out = runTransportFuzz(seed);

        // Zero invariant violations, and the checker actually checked.
        ASSERT_EQ(out.violations, 0u)
            << "seed " << seed << "\n" << out.violation_report;
        EXPECT_GT(out.checks, 0u) << "seed " << seed;

        double sent = 0.0, retrans = 0.0;
        for (std::size_t i = 0; i < out.results.size(); ++i) {
            const auto &r = out.results[i];
            // Exactly one completion per message, fault or not.
            ASSERT_EQ(out.callback_count[i], 1)
                << "seed " << seed << " message " << i;
            EXPECT_GT(r.chunks, 0u) << "seed " << seed;
            EXPECT_GE(r.attempts, r.chunks * (r.delivered ? 1u : 0u))
                << "seed " << seed;
            EXPECT_EQ(r.retries + r.chunks >= r.attempts, true)
                << "seed " << seed;
            // Retransmission is a subset of what was sent.
            EXPECT_LE(r.retransmitted_bytes, r.bytes_sent + 1e-6)
                << "seed " << seed;
            EXPECT_GE(r.backoff_s, 0.0) << "seed " << seed;
            EXPECT_GE(r.elapsed_s, 0.0) << "seed " << seed;
            // Delivered and expired are mutually exclusive outcomes.
            EXPECT_FALSE(r.delivered && r.deadline_expired)
                << "seed " << seed;
            sent += r.bytes_sent;
            retrans += r.retransmitted_bytes;
        }
        // Per-message results reconcile with the link's ledger.
        EXPECT_EQ(out.totals.sends, kMessages) << "seed " << seed;
        EXPECT_EQ(out.totals.delivered + out.totals.failed, kMessages)
            << "seed " << seed;
        EXPECT_NEAR(out.totals.bytes_sent, sent, 1e-6)
            << "seed " << seed;
        EXPECT_NEAR(out.totals.retransmitted_bytes, retrans, 1e-6)
            << "seed " << seed;
    }
}

TEST_P(TransportFuzz, ReplayIsByteIdentical)
{
    // The transport's structured event log — every attempt, resume,
    // backoff delay, accept, and verdict — must be byte-identical when
    // the same seed is replayed.
    for (std::uint64_t k = 0; k < 25; ++k) {
        const std::uint64_t seed = GetParam() * 7000 + k;
        const auto a = runTransportFuzz(seed);
        const auto b = runTransportFuzz(seed);
        ASSERT_FALSE(a.log_dump.empty()) << "seed " << seed;
        ASSERT_EQ(a.log_dump, b.log_dump) << "seed " << seed;
        EXPECT_EQ(a.totals.attempts, b.totals.attempts)
            << "seed " << seed;
        EXPECT_DOUBLE_EQ(a.totals.bytes_sent, b.totals.bytes_sent)
            << "seed " << seed;
        EXPECT_DOUBLE_EQ(a.totals.backoff_s, b.totals.backoff_s)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
