/**
 * @file
 * Cross-validation equivalence: a recorded real-socket run replays
 * byte-identically through the DES twin. The traces here are golden
 * files checked in from actual UDP/TCP loopback runs (generated with
 * `rog_transportd loopback --check`), so this test runs on restricted
 * CI with no socket access at all — and tampering tests prove the
 * comparison actually bites.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "net/transport/crossval.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << "missing golden file " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct Golden
{
    TransportTrace trace;
    std::vector<TransportEvent> events;
};

Golden
loadGolden(const std::string &stem)
{
    const std::string dir =
        std::string(ROG_TEST_DATA_DIR) + "/net/data/";
    const TraceParseResult trace =
        TransportTrace::tryParse(readFileOrDie(dir + stem + ".trace"));
    EXPECT_TRUE(trace.ok()) << trace.error;
    const LogParseResult log =
        tryParseLog(readFileOrDie(dir + stem + ".events"));
    EXPECT_TRUE(log.ok()) << log.error;
    return {trace.trace, log.events};
}

TEST(TransportCrossval, GoldenUdpFaultyRunReplaysIdentically)
{
    const Golden g = loadGolden("crossval_udp_faulty");
    // The golden run went through drop, dup, truncation, corruption
    // and delay — retries, resumes, CRC discards and dedups all on
    // the wire.
    ASSERT_FALSE(g.trace.attempts.empty());
    ASSERT_FALSE(g.trace.rx.empty());
    const CrossvalReport report = crossValidate(g.trace, g.events);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_GT(report.sender_events, 0u);
    EXPECT_GT(report.receiver_events, 0u);
}

TEST(TransportCrossval, GoldenTcpCleanRunReplaysIdentically)
{
    const Golden g = loadGolden("crossval_tcp_clean");
    const CrossvalReport report = crossValidate(g.trace, g.events);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(TransportCrossval, TamperedEventLogIsDetected)
{
    Golden g = loadGolden("crossval_udp_faulty");
    // Claim one accepted chunk was a different sequence number.
    for (TransportEvent &ev : g.events) {
        if (ev.kind == TransportEvent::Kind::Accept) {
            ev.chunk_seq += 1;
            break;
        }
    }
    const CrossvalReport report = crossValidate(g.trace, g.events);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.detail.find("diverges"), std::string::npos)
        << report.detail;
}

TEST(TransportCrossval, TamperedTraceOutcomeIsDetected)
{
    Golden g = loadGolden("crossval_udp_faulty");
    // Rewrite the final (message-completing) attempt as a timeout: the
    // replayed sender retries past the end of the trace where the
    // recorded one finished.
    ASSERT_FALSE(g.trace.attempts.empty());
    AttemptRecord &last = g.trace.attempts.back();
    ASSERT_TRUE(last.message_complete);
    last.outcome = AttemptOutcome::Timeout;
    last.bytes_sent = 0.0;
    last.message_complete = false;
    const CrossvalReport report = crossValidate(g.trace, g.events);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.detail.find("replay"), std::string::npos)
        << report.detail;
}

TEST(TransportCrossval, TruncatedAttemptTraceReportsDivergence)
{
    Golden g = loadGolden("crossval_udp_faulty");
    ASSERT_GT(g.trace.attempts.size(), 2u);
    g.trace.attempts.resize(g.trace.attempts.size() / 2);
    const ReplayResult replay = replaySenderTrace(g.trace);
    EXPECT_FALSE(replay.divergence.empty());
}

TEST(TransportCrossval, RxRecordForUnknownMessageReportsDivergence)
{
    Golden g = loadGolden("crossval_udp_faulty");
    ASSERT_FALSE(g.trace.rx.empty());
    RxRecord stray = g.trace.rx.front();
    stray.key.worker = 99; // never sent.
    g.trace.rx.push_back(stray);
    const ReplayResult replay = replayReceiverTrace(g.trace);
    EXPECT_FALSE(replay.divergence.empty());
}

TEST(TransportCrossval, GoldenTraceTextRoundTrips)
{
    const std::string dir =
        std::string(ROG_TEST_DATA_DIR) + "/net/data/";
    const std::string text =
        readFileOrDie(dir + "crossval_udp_faulty.trace");
    const TraceParseResult first = TransportTrace::tryParse(text);
    ASSERT_TRUE(first.ok()) << first.error;
    const std::string rendered = first.trace.toText();
    const TraceParseResult second = TransportTrace::tryParse(rendered);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(rendered, second.trace.toText());
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
