/**
 * @file
 * Loopback integration tests: the unchanged protocol core over real
 * UDP datagrams under seeded wire faults (drop, duplicate, truncate,
 * corrupt, delay), plus clean TCP. Assertions mirror the DES suites:
 * exactly-once delivery, CRC discard, resume-from-offset retransmit
 * accounting — now proven with real packets. Timeouts are tuned so the
 * whole file is `ctest -L fast`-safe.
 */
#include <gtest/gtest.h>

#include "loopback_harness.hpp"
#include "net/transport/crossval.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

using testing::countKind;
using testing::LoopbackOutcome;
using testing::LoopbackSpec;
using testing::quickSpec;
using testing::runLoopback;

/** Chunks a payload of @p bytes splits into under @p spec. */
std::size_t
chunksOf(const LoopbackSpec &spec)
{
    return static_cast<std::size_t>(std::max(
        1.0,
        std::ceil(spec.bytes / spec.config.chunk_bytes - 1e-9)));
}

TEST(TransportLoopback, UdpCleanDeliversAll)
{
    const LoopbackSpec spec = quickSpec("udp", 3, 40000.0);
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    // Clean wire: one attempt per chunk, nothing retried or dedup'd.
    EXPECT_EQ(out.totals.attempts, 3 * chunksOf(spec));
    EXPECT_EQ(out.totals.retries, 0u);
    EXPECT_EQ(countKind(out.receiver_log,
                        TransportEvent::Kind::Duplicate),
              0u);
    EXPECT_EQ(countKind(out.receiver_log,
                        TransportEvent::Kind::CorruptDrop),
              0u);
}

TEST(TransportLoopback, UdpDropsAreRetriedToExactlyOnceDelivery)
{
    LoopbackSpec spec = quickSpec("udp", 3, 40000.0);
    fault::SocketFaultPlan plan;
    plan.seed = 11;
    plan.drop_p = 0.3;
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    // Every chunk is accepted exactly once regardless of how many
    // attempts its datagrams needed.
    EXPECT_EQ(countKind(out.receiver_log, TransportEvent::Kind::Accept),
              3 * chunksOf(spec));
    EXPECT_GT(out.totals.attempts, 3 * chunksOf(spec));
    EXPECT_GT(out.totals.retries, 0u);
    EXPECT_GT(out.totals.backoff_s, 0.0);
}

TEST(TransportLoopback, UdpDuplicatesAreDedupd)
{
    LoopbackSpec spec = quickSpec("udp", 3, 40000.0);
    fault::SocketFaultPlan plan;
    plan.seed = 5;
    plan.dup_p = 0.6;
    plan.delay_p = 0.3;
    plan.delay_s = 0.002;
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    EXPECT_EQ(countKind(out.receiver_log, TransportEvent::Kind::Accept),
              3 * chunksOf(spec));
    // With dup_p this high some duplicate must have hit the dedup set.
    // (The sender rarely sees it — the duplicate's ACK usually arrives
    // after the original already resolved the pending attempt — so the
    // receiver's log and rx trace carry the evidence.)
    EXPECT_GT(countKind(out.receiver_log,
                        TransportEvent::Kind::Duplicate),
              0u);
    EXPECT_GT(out.trace.rx.size(), 3 * chunksOf(spec));
}

TEST(TransportLoopback, UdpTruncationResumesFromDeliveredOffset)
{
    LoopbackSpec spec = quickSpec("udp", 3, 50000.0);
    fault::SocketFaultPlan plan;
    plan.seed = 23;
    plan.trunc_p = 0.5;
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    // Cut datagrams produce partial ACKs, which resume mid-chunk.
    EXPECT_GT(countKind(out.sender_log, TransportEvent::Kind::Resume),
              0u);
    EXPECT_GT(out.totals.retries, 0u);
    // Resume accounting: a resumed retry re-sends only the header
    // again, so retransmitted bytes stay well under one whole chunk
    // per retry.
    EXPECT_GT(out.totals.retransmitted_bytes, 0.0);
    EXPECT_LT(out.totals.retransmitted_bytes,
              static_cast<double>(out.totals.retries) *
                  (spec.config.chunk_bytes +
                   static_cast<double>(FrameHeader::kWireSize)));
}

TEST(TransportLoopback, UdpResumeOffRetransmitsMore)
{
    fault::SocketFaultPlan plan;
    plan.seed = 23;
    plan.trunc_p = 0.5;

    LoopbackSpec on = quickSpec("udp", 3, 50000.0);
    on.faults = &plan;
    LoopbackSpec off = on;
    off.config.resume_from_offset = false;

    const LoopbackOutcome r_on = runLoopback(on);
    const LoopbackOutcome r_off = runLoopback(off);
    ASSERT_TRUE(r_on.ok) << r_on.error;
    ASSERT_TRUE(r_off.ok) << r_off.error;
    EXPECT_EQ(r_on.delivered, 3u);
    EXPECT_EQ(r_off.delivered, 3u);
    // Identical fault stream; the from-scratch baseline re-sends whole
    // chunks where resume re-sends tails.
    EXPECT_LT(r_on.totals.retransmitted_bytes,
              r_off.totals.retransmitted_bytes);
    EXPECT_EQ(countKind(r_off.sender_log, TransportEvent::Kind::Resume),
              0u);
}

TEST(TransportLoopback, UdpCorruptionIsCaughtByCrc)
{
    LoopbackSpec spec = quickSpec("udp", 3, 40000.0);
    fault::SocketFaultPlan plan;
    plan.seed = 41;
    plan.corrupt_p = 0.4;
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    EXPECT_GT(countKind(out.receiver_log,
                        TransportEvent::Kind::CorruptDrop),
              0u);
    EXPECT_GT(out.totals.corrupt_chunks, 0u);
    // Corruption never reaches acceptance: every chunk still lands
    // exactly once.
    EXPECT_EQ(countKind(out.receiver_log, TransportEvent::Kind::Accept),
              3 * chunksOf(spec));
}

TEST(TransportLoopback, UdpFaultSoupCrossValidates)
{
    LoopbackSpec spec = quickSpec("udp", 4, 60000.0);
    fault::SocketFaultPlan plan;
    plan.seed = 7;
    plan.drop_p = 0.15;
    plan.dup_p = 0.1;
    plan.trunc_p = 0.2;
    plan.corrupt_p = 0.1;
    plan.delay_p = 0.1;
    plan.delay_s = 0.002;
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 4u);
    const CrossvalReport report =
        crossValidate(out.trace, out.merged_log);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(TransportLoopback, UdpDeadlineExpiresUnderTotalLoss)
{
    LoopbackSpec spec = quickSpec("udp", 1, 20000.0);
    spec.deadline_rel = 0.15;
    fault::SocketFaultPlan plan;
    plan.seed = 3;
    plan.drop_p = 1.0; // the wire eats everything.
    spec.faults = &plan;
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 0u);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_TRUE(out.results[0].deadline_expired);
    EXPECT_EQ(countKind(out.sender_log, TransportEvent::Kind::Fail),
              1u);
    EXPECT_EQ(out.rx_delivered, 0u);
}

TEST(TransportLoopback, TcpCleanDeliversAll)
{
    const LoopbackSpec spec = quickSpec("tcp", 3, 40000.0);
    const LoopbackOutcome out = runLoopback(spec);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 3u);
    EXPECT_EQ(out.rx_delivered, 3u);
    EXPECT_EQ(out.totals.attempts, 3 * chunksOf(spec));
    EXPECT_EQ(out.totals.retries, 0u);
}

TEST(TransportLoopback, TcpRunCrossValidates)
{
    const LoopbackOutcome out = runLoopback(quickSpec("tcp", 2, 50000.0));
    ASSERT_TRUE(out.ok) << out.error;
    const CrossvalReport report =
        crossValidate(out.trace, out.merged_log);
    EXPECT_TRUE(report.ok) << report.detail;
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
