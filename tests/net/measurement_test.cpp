/**
 * @file
 * Unit tests for active (iperf-style) and passive (iw-style) link
 * measurement over the simulated channel.
 */
#include <gtest/gtest.h>

#include "net/measurement.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace net {
namespace {

TEST(MeasurementTest, ActiveProbeReadsConstantCapacity)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(1000.0, 60.0)});
    std::vector<ThroughputSample> samples;
    measureActiveThroughput(sim, ch, 0, 2.0, 0.5, samples);
    sim.run();
    ASSERT_EQ(samples.size(), 4u);
    for (const auto &s : samples)
        EXPECT_NEAR(s.bytes_per_sec, 1000.0, 1.0);
}

TEST(MeasurementTest, ActiveProbeTracksSteps)
{
    // 100 B/s for 1 s, then 400 B/s.
    sim::Simulation sim;
    std::vector<double> v(10, 100.0);
    v.resize(40, 400.0);
    Channel ch(sim, {BandwidthTrace(v, 0.1)});
    std::vector<ThroughputSample> samples;
    measureActiveThroughput(sim, ch, 0, 2.0, 1.0, samples);
    sim.run();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_NEAR(samples[0].bytes_per_sec, 100.0, 1.0);
    EXPECT_NEAR(samples[1].bytes_per_sec, 400.0, 1.0);
}

TEST(MeasurementTest, ActiveProbeContendsWithTraffic)
{
    // The probe is real traffic: a concurrent flow halves its share —
    // the reason the paper switched to passive measurement.
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(1000.0, 60.0),
                     BandwidthTrace::constant(1000.0, 60.0)});
    // Saturate link 1 for the whole window.
    ch.startTransfer(1, 1e9, Channel::kNoTimeout, [](TransferResult) {});
    std::vector<ThroughputSample> samples;
    measureActiveThroughput(sim, ch, 0, 1.0, 0.5, samples);
    sim.runUntil(2.0);
    ASSERT_GE(samples.size(), 2u);
    EXPECT_NEAR(samples[0].bytes_per_sec, 500.0, 5.0);
}

TEST(MeasurementTest, PassiveEstimatorDoesNotLoadChannel)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(777.0, 60.0)});
    PassiveLinkEstimator est(ch, 0);
    est.sampleAt(0.0);
    EXPECT_DOUBLE_EQ(est.lastRaw(), 777.0);
    EXPECT_EQ(ch.activeFlows(), 0u);
    EXPECT_DOUBLE_EQ(ch.totalBytesDelivered(), 0.0);
}

TEST(MeasurementTest, PassiveNormalizationConvergesToOne)
{
    sim::Simulation sim;
    const auto trace =
        generateTrace(TraceModel::outdoor(50e3), 120.0, 3);
    Channel ch(sim, {trace});
    PassiveLinkEstimator est(ch, 0, 0.05);
    double sum_norm = 0.0;
    int n = 0;
    for (double t = 0.0; t < 120.0; t += 0.1) {
        est.sampleAt(t);
        if (t > 60.0) { // after warm-up.
            sum_norm += est.lastNormalized();
            ++n;
        }
    }
    // Normalized output hovers around 1.0 on average.
    EXPECT_NEAR(sum_norm / n, 1.0, 0.5);
    EXPECT_GT(est.runningAverage(), 0.0);
}

TEST(MeasurementTest, PassiveTracksFades)
{
    sim::Simulation sim;
    std::vector<double> v(100, 1000.0);
    v[50] = 10.0; // a deep dip.
    Channel ch(sim, {BandwidthTrace(v, 0.1)});
    PassiveLinkEstimator est(ch, 0, 0.2);
    for (double t = 0.0; t < 5.0; t += 0.1)
        est.sampleAt(t);
    est.sampleAt(5.02); // inside the dip.
    EXPECT_LT(est.lastNormalized(), 0.1);
}

} // namespace
} // namespace net
} // namespace rog
