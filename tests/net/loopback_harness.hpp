/**
 * @file
 * Shared harness for loopback socket-transport tests: runs N chained
 * sends over a real UDP or TCP backend against an in-process receiver
 * endpoint on one PollLoop, and returns everything the assertions
 * need — results, totals, the merged event log, and the wire trace
 * (ready for cross-validation).
 */
#ifndef ROG_TESTS_NET_LOOPBACK_HARNESS_HPP
#define ROG_TESTS_NET_LOOPBACK_HARNESS_HPP

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/poll_loop.hpp"
#include "fault/socket_fault.hpp"
#include "net/transport/reliable_link.hpp"
#include "net/transport/socket_backend.hpp"

namespace rog {
namespace net {
namespace transport {
namespace testing {

struct LoopbackSpec
{
    std::string backend = "udp"; //!< "udp" or "tcp".
    std::size_t sends = 1;
    double bytes = 4096.0;
    double deadline_rel = kNoDeadline; //!< per-send, from its start.
    TransportConfig config;
    SocketOptions opts;
    const fault::SocketFaultPlan *faults = nullptr; //!< UDP only.
    double timeout_s = 20.0;
};

struct LoopbackOutcome
{
    bool ok = false;       //!< every send completed in time, no errors.
    std::string error;
    std::size_t completed = 0;
    std::size_t delivered = 0;    //!< sender-side delivered verdicts.
    std::size_t rx_delivered = 0; //!< receiver-side complete messages.
    std::vector<SendResult> results;
    TransportTotals totals;
    std::vector<TransportEvent> sender_log;
    std::vector<TransportEvent> receiver_log;
    std::vector<TransportEvent> merged_log;
    TransportTrace trace; //!< config + sends + attempts + rx.
};

inline MessageKey
loopbackKey(std::size_t i)
{
    MessageKey key;
    key.worker = 1;
    key.version = static_cast<std::int64_t>(i);
    key.row = 100 + static_cast<std::uint32_t>(i);
    key.pull = false;
    return key;
}

/** Fast-suite-friendly knobs: short waits, quick backoff. */
inline LoopbackSpec
quickSpec(const std::string &backend, std::size_t sends, double bytes)
{
    LoopbackSpec spec;
    spec.backend = backend;
    spec.sends = sends;
    spec.bytes = bytes;
    spec.config.backoff_base_s = 0.005;
    spec.config.backoff_max_s = 0.05;
    spec.opts.ack_timeout_s = 0.05;
    return spec;
}

inline LoopbackOutcome
runLoopback(const LoopbackSpec &spec)
{
    LoopbackOutcome out;
    PollLoop loop;

    std::unique_ptr<fault::SocketFaultInjector> faults;
    if (spec.faults != nullptr)
        faults =
            std::make_unique<fault::SocketFaultInjector>(*spec.faults);

    out.trace.config.backend = spec.backend;
    out.trace.config.chunk_bytes = spec.config.chunk_bytes;
    out.trace.config.max_attempts = spec.config.max_attempts_per_chunk;
    out.trace.config.backoff_base_s = spec.config.backoff_base_s;
    out.trace.config.backoff_max_s = spec.config.backoff_max_s;
    out.trace.config.jitter_frac = spec.config.jitter_frac;
    out.trace.config.jitter_seed = spec.config.jitter_seed;
    out.trace.config.resume_from_offset = spec.config.resume_from_offset;

    std::unique_ptr<ReceiverEndpointBase> ep;
    std::unique_ptr<SocketSenderBase> sock;
    if (spec.backend == "udp") {
        auto rx = std::make_unique<UdpReceiverEndpoint>(loop, 0);
        if (!rx->ok()) {
            out.error = rx->error();
            return out;
        }
        sock = std::make_unique<UdpBackend>(loop, "127.0.0.1",
                                            rx->port(), spec.opts,
                                            faults.get(), &out.trace);
        ep = std::move(rx);
    } else {
        auto rx = std::make_unique<TcpReceiverEndpoint>(loop, 0);
        if (!rx->ok()) {
            out.error = rx->error();
            return out;
        }
        sock = std::make_unique<TcpBackend>(loop, "127.0.0.1",
                                            rx->port(), spec.opts,
                                            &out.trace);
        ep = std::move(rx);
    }
    if (!sock->ok()) {
        out.error = sock->error();
        return out;
    }

    ReliableLink link(*sock, spec.config);
    std::function<void(std::size_t)> issue = [&](std::size_t i) {
        if (i >= spec.sends)
            return;
        const MessageKey key = loopbackKey(i);
        SendRecord rec;
        rec.link = 0;
        rec.key = key;
        rec.payload_bytes = spec.bytes;
        rec.deadline_s = spec.deadline_rel;
        out.trace.sends.push_back(rec);
        const double deadline = std::isfinite(spec.deadline_rel)
                                    ? sock->now() + spec.deadline_rel
                                    : kNoDeadline;
        link.startSend(0, key, spec.bytes, deadline,
                       [&, i](SendResult r) {
                           ++out.completed;
                           if (r.delivered)
                               ++out.delivered;
                           out.results.push_back(r);
                           issue(i + 1);
                       });
    };
    issue(0);

    const bool done = loop.runUntil(
        [&] { return out.completed >= spec.sends; }, spec.timeout_s);
    if (!done) {
        out.error = "loopback run timed out";
        return out;
    }
    if (!sock->ok() || !ep->ok()) {
        out.error = !sock->ok() ? sock->error() : ep->error();
        return out;
    }

    out.rx_delivered = ep->deliveredMessages();
    out.totals = link.totals();
    out.sender_log = link.log();
    out.receiver_log = ep->log();
    out.merged_log = out.sender_log;
    out.merged_log.insert(out.merged_log.end(), out.receiver_log.begin(),
                          out.receiver_log.end());
    out.trace.rx = ep->rxRecords();
    out.ok = true;
    return out;
}

/** Count events of one kind. */
inline std::size_t
countKind(const std::vector<TransportEvent> &log,
          TransportEvent::Kind kind)
{
    std::size_t n = 0;
    for (const TransportEvent &ev : log)
        if (ev.kind == kind)
            ++n;
    return n;
}

} // namespace testing
} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_TESTS_NET_LOOPBACK_HARNESS_HPP
