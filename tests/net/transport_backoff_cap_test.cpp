/**
 * @file
 * Regression test for the retry backoff exponent cap: during a long
 * partition with unbounded attempts, the doubling exponent saturates
 * at kMaxBackoffExponent instead of growing without limit, and the
 * retry delay pins at min(backoff_max_s, base * 2^cap).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/transport/backend.hpp"
#include "net/transport/reliable_link.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

/**
 * A wire that eats every frame: sendFrame queues a completed=false
 * verdict (total loss), delivered on the next step() so the protocol
 * core never re-enters itself. Timers run on a manual virtual clock.
 */
class BlackholeBackend : public Backend
{
  public:
    double now() const override { return now_; }

    TimerId
    after(double delay_s, std::function<void()> fire) override
    {
        const TimerId id = next_timer_++;
        timers_[id] = {now_ + delay_s, std::move(fire)};
        return id;
    }

    void cancelTimer(TimerId id) override { timers_.erase(id); }

    std::uint64_t
    openSend(LinkId, const MessageKey &, bool) override
    {
        return next_send_++;
    }

    void
    sendFrame(std::uint64_t, const FrameHeader &,
              std::span<const std::uint8_t>, std::span<const std::uint8_t>,
              double, double, double, VerdictCallback done,
              std::function<void()>) override
    {
        pending_.push_back(std::move(done));
    }

    void finishSend(std::uint64_t, bool) override {}
    void abortSend(std::uint64_t) override {}
    void setReceiverEventSink(EventSink) override {}

    /** Resolve one lost frame or fire the next due timer. */
    bool
    step()
    {
        if (!pending_.empty()) {
            VerdictCallback cb = std::move(pending_.front());
            pending_.pop_front();
            FrameVerdict v;
            v.completed = false;
            cb(v);
            return true;
        }
        if (timers_.empty())
            return false;
        auto due = timers_.begin();
        for (auto it = timers_.begin(); it != timers_.end(); ++it)
            if (it->second.deadline < due->second.deadline)
                due = it;
        now_ = std::max(now_, due->second.deadline);
        auto fn = std::move(due->second.fn);
        timers_.erase(due);
        fn();
        return true;
    }

  private:
    struct Timer
    {
        double deadline = 0.0;
        std::function<void()> fn;
    };

    double now_ = 0.0;
    std::deque<VerdictCallback> pending_;
    std::map<TimerId, Timer> timers_;
    TimerId next_timer_ = 1;
    std::uint64_t next_send_ = 1;
};

TEST(TransportBackoffCap, ExponentSaturatesAtTheBoundary)
{
    BlackholeBackend wire;
    TransportConfig cfg;
    cfg.chunk_bytes = 256.0;
    cfg.max_attempts_per_chunk = 0; // unbounded: ride out the partition.
    cfg.backoff_base_s = 1e-6;
    cfg.backoff_max_s = 1e18; // so the delay exposes the raw 2^exp.
    cfg.jitter_frac = 0.0;    // exact delays for the boundary check.
    ReliableLink link(wire, cfg);

    bool finished = false;
    link.startSend(
        1, MessageKey{1, 1, 0, false}, 64.0, kNoDeadline,
        [&](SendResult) { finished = true; });

    // Enough lost-frame/retry cycles to blow well past the cap were it
    // unbounded (each cycle = one verdict + one backoff timer).
    const std::size_t cycles = kMaxBackoffExponent + 12;
    for (std::size_t i = 0; i < 2 * cycles + 1 && !finished; ++i)
        ASSERT_TRUE(wire.step());
    ASSERT_FALSE(finished); // unbounded retries: still trying.

    std::vector<double> exps;
    std::vector<double> delays;
    for (const auto &ev : link.log()) {
        if (ev.kind != TransportEvent::Kind::Backoff)
            continue;
        exps.push_back(ev.b);
        delays.push_back(ev.a);
    }
    ASSERT_GT(exps.size(), kMaxBackoffExponent + 4);

    // Exponents climb 0,1,2,... then pin at the cap.
    for (std::size_t i = 0; i < exps.size(); ++i) {
        const double want = std::min<double>(
            static_cast<double>(i), static_cast<double>(kMaxBackoffExponent));
        EXPECT_EQ(exps[i], want) << "backoff event " << i;
    }
    EXPECT_EQ(exps.back(), static_cast<double>(kMaxBackoffExponent));

    // At and past the boundary the delay is exactly base * 2^cap —
    // finite, representable, and constant from there on.
    const double pinned =
        cfg.backoff_base_s *
        std::pow(2.0, static_cast<double>(kMaxBackoffExponent));
    for (std::size_t i = kMaxBackoffExponent; i < delays.size(); ++i) {
        EXPECT_TRUE(std::isfinite(delays[i]));
        EXPECT_DOUBLE_EQ(delays[i], pinned) << "delay " << i;
    }
}

TEST(TransportBackoffCap, MaxDelayStillRulesWhenSmaller)
{
    // The usual configuration: backoff_max_s far below base * 2^cap.
    // The cap must not disturb the existing saturation at max.
    BlackholeBackend wire;
    TransportConfig cfg;
    cfg.chunk_bytes = 256.0;
    cfg.max_attempts_per_chunk = 0;
    cfg.backoff_base_s = 0.05;
    cfg.backoff_max_s = 2.0;
    cfg.jitter_frac = 0.0;
    ReliableLink link(wire, cfg);

    link.startSend(1, MessageKey{1, 1, 0, false}, 64.0, kNoDeadline,
                   [](SendResult) {});
    for (std::size_t i = 0; i < 2 * (kMaxBackoffExponent + 8); ++i)
        ASSERT_TRUE(wire.step());

    double last_delay = 0.0;
    double last_exp = 0.0;
    for (const auto &ev : link.log()) {
        if (ev.kind != TransportEvent::Kind::Backoff)
            continue;
        EXPECT_LE(ev.a, cfg.backoff_max_s);
        last_delay = ev.a;
        last_exp = ev.b;
    }
    EXPECT_DOUBLE_EQ(last_delay, cfg.backoff_max_s);
    EXPECT_EQ(last_exp, static_cast<double>(kMaxBackoffExponent));
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
