/**
 * @file
 * Resume economics: retrying a cut chunk from the delivered byte
 * offset must retransmit measurably fewer bytes than the from-scratch
 * baseline (resume_from_offset = false), both in an exact single-cut
 * micro scenario and in aggregate over randomized truncation/timeout
 * schedules. The aggregate numbers are reported for EXPERIMENTS.md.
 */
#include <gtest/gtest.h>

#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/trace_generator.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

constexpr double kHdr = FrameHeader::kWireSize;

SendResult
runSingleCut(bool resume)
{
    // One 8192-byte chunk, cut 3000 wire-bytes in (header + 2952
    // payload), then a clean retry.
    fault::FaultPlan plan;
    fault::TransferFaultRule t;
    t.link = 0;
    t.at_s = 0.0;
    t.truncate_bytes = 3000.0;
    plan.transfer_faults.push_back(t);

    sim::Simulation sim;
    fault::FaultInjector injector(sim, plan);
    Channel ch(sim, {BandwidthTrace::constant(10e3, 600.0)});
    injector.attach(ch);
    TransportConfig cfg;
    cfg.jitter_frac = 0.0;
    cfg.resume_from_offset = resume;
    ReliableLink link(sim, ch, cfg);

    SendResult out;
    MessageKey key;
    key.version = 1;
    link.startSend(0, key, 8192.0, kNoDeadline,
                   [&](SendResult r) { out = r; });
    sim.run();
    return out;
}

TEST(TransportResume, SingleCutRetransmitsOnlyTheHeader)
{
    const auto resumed = runSingleCut(true);
    const auto scratch = runSingleCut(false);
    ASSERT_TRUE(resumed.delivered);
    ASSERT_TRUE(scratch.delivered);
    EXPECT_EQ(resumed.retries, 1u);
    EXPECT_EQ(scratch.retries, 1u);

    // Resumed retry: header again + the missing 5240-byte tail.
    EXPECT_NEAR(resumed.retransmitted_bytes, kHdr, 1e-6);
    EXPECT_NEAR(resumed.bytes_sent, 3000.0 + kHdr + 5240.0, 1e-6);
    // From-scratch retry: the whole 8192-byte chunk travels again.
    EXPECT_NEAR(scratch.retransmitted_bytes, kHdr + 2952.0, 1e-6);
    EXPECT_NEAR(scratch.bytes_sent, 3000.0 + kHdr + 8192.0, 1e-6);

    EXPECT_LT(resumed.retransmitted_bytes,
              scratch.retransmitted_bytes);
    EXPECT_LT(resumed.bytes_sent, scratch.bytes_sent);
}

TransportTotals
runSchedule(std::uint64_t seed, bool resume)
{
    Rng rng(seed);
    fault::FaultPlanConfig fcfg;
    fcfg.links = 2;
    fcfg.horizon_s = 40.0;
    fcfg.max_truncations_per_link = 2;
    fcfg.max_timeouts_per_link = 2;
    fcfg.truncate_min_bytes = 500.0;
    fcfg.truncate_max_bytes = 20e3;
    const fault::FaultPlan plan = fault::FaultPlan::random(seed, fcfg);

    sim::Simulation sim;
    fault::FaultInjector injector(sim, plan);
    std::vector<BandwidthTrace> traces;
    for (std::size_t l = 0; l < 2; ++l) {
        const auto base = generateTrace(
            TraceModel::outdoor(rng.uniform(10e3, 40e3)), 60.0,
            seed * 100 + l);
        traces.push_back(injector.perturbTrace(base, l, 200.0));
    }
    Channel ch(sim, std::move(traces));
    injector.attach(ch);

    TransportConfig cfg;
    cfg.chunk_bytes = 8192.0;
    cfg.max_attempts_per_chunk = 0; // retry until delivered.
    cfg.resume_from_offset = resume;
    ReliableLink link(sim, ch, cfg);

    for (std::size_t i = 0; i < 6; ++i) {
        const double start = rng.uniform(0.0, 30.0);
        const auto l = rng.uniformInt(std::size_t{2});
        const double bytes = rng.uniform(2e3, 30e3);
        MessageKey key;
        key.worker = static_cast<std::uint16_t>(l);
        key.version = static_cast<std::int64_t>(i);
        sim.after(start, [&link, l, key, bytes] {
            link.startSend(l, key, bytes, kNoDeadline,
                           [](SendResult) {});
        });
    }
    sim.run();
    return link.totals();
}

TEST(TransportResume, ResumeLowersRetransmittedBytesInAggregate)
{
    // 40 randomized truncation/timeout schedules, each run twice —
    // identical faults, resume on vs off. Every message must deliver
    // in both modes; resumption must cut the retransmitted bytes.
    double resumed_retrans = 0.0, scratch_retrans = 0.0;
    double resumed_sent = 0.0, scratch_sent = 0.0;
    std::size_t resumed_retries = 0, scratch_retries = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const auto on = runSchedule(seed, true);
        const auto off = runSchedule(seed, false);
        ASSERT_EQ(on.delivered, on.sends) << "seed " << seed;
        ASSERT_EQ(off.delivered, off.sends) << "seed " << seed;
        resumed_retrans += on.retransmitted_bytes;
        scratch_retrans += off.retransmitted_bytes;
        resumed_sent += on.bytes_sent;
        scratch_sent += off.bytes_sent;
        resumed_retries += on.retries;
        scratch_retries += off.retries;
    }
    // The schedules actually exercised retransmission...
    ASSERT_GT(resumed_retries, 0u);
    ASSERT_GT(scratch_retrans, 0.0);
    // ...and resumption measurably lowered it (EXPERIMENTS.md).
    EXPECT_LT(resumed_retrans, 0.5 * scratch_retrans);
    EXPECT_LT(resumed_sent, scratch_sent);

    std::cout << "[resume-economics] retransmitted bytes: resume="
              << resumed_retrans << " scratch=" << scratch_retrans
              << " (saving "
              << 100.0 * (1.0 - resumed_retrans / scratch_retrans)
              << "%); wire bytes: resume=" << resumed_sent
              << " scratch=" << scratch_sent << "; retries: resume="
              << resumed_retries << " scratch=" << scratch_retries
              << std::endl;
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
