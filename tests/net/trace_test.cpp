/**
 * @file
 * Unit tests for bandwidth traces, the synthetic instability
 * generator, and the Fig. 3 calibration statistics.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "net/trace_generator.hpp"
#include "net/trace_stats.hpp"

namespace rog {
namespace net {
namespace {

TEST(TraceTest, LookupIsPiecewiseConstant)
{
    BandwidthTrace t({10.0, 20.0, 30.0}, 1.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(0.0), 10.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(0.99), 10.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(1.0), 20.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(2.5), 30.0);
}

TEST(TraceTest, LookupLoops)
{
    BandwidthTrace t({10.0, 20.0}, 1.0);
    EXPECT_DOUBLE_EQ(t.durationSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(2.0), 10.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(3.5), 20.0);
    EXPECT_DOUBLE_EQ(t.bytesPerSecAt(100.0), 10.0);
}

TEST(TraceTest, NextBoundaryAdvances)
{
    BandwidthTrace t({1.0, 2.0}, 0.1);
    EXPECT_NEAR(t.nextBoundaryAfter(0.0), 0.1, 1e-12);
    EXPECT_NEAR(t.nextBoundaryAfter(0.05), 0.1, 1e-12);
    // From exactly a boundary, the next one is strictly later.
    EXPECT_NEAR(t.nextBoundaryAfter(0.1), 0.2, 1e-12);
}

TEST(TraceTest, MeanAndConstant)
{
    const auto t = BandwidthTrace::constant(5000.0, 10.0, 0.1);
    EXPECT_DOUBLE_EQ(t.meanBytesPerSec(), 5000.0);
    EXPECT_EQ(t.sampleCount(), 100u);
}

TEST(TraceTest, GeneratorIsDeterministic)
{
    const auto model = TraceModel::outdoor(50e3);
    const auto a = generateTrace(model, 30.0, 42);
    const auto b = generateTrace(model, 30.0, 42);
    ASSERT_EQ(a.sampleCount(), b.sampleCount());
    for (std::size_t i = 0; i < a.sampleCount(); ++i)
        EXPECT_EQ(a.samples()[i], b.samples()[i]);
}

TEST(TraceTest, GeneratorSeedsDiffer)
{
    const auto model = TraceModel::outdoor(50e3);
    const auto a = generateTrace(model, 30.0, 1);
    const auto b = generateTrace(model, 30.0, 2);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.sampleCount(); ++i)
        diff += std::fabs(a.samples()[i] - b.samples()[i]);
    EXPECT_GT(diff, 1.0);
}

TEST(TraceTest, SamplesArePositive)
{
    for (auto model : {TraceModel::indoor(50e3),
                       TraceModel::outdoor(50e3),
                       TraceModel::stable(50e3)}) {
        const auto t = generateTrace(model, 60.0, 9);
        for (double s : t.samples())
            EXPECT_GT(s, 0.0);
    }
}

TEST(TraceTest, StablePresetIsNearlyConstant)
{
    const auto t = generateTrace(TraceModel::stable(50e3), 120.0, 11);
    const auto st = computeTraceStats(t);
    EXPECT_LT(st.stddev_bytes_per_sec, 0.05 * st.mean_bytes_per_sec);
    EXPECT_EQ(st.deep_fade_fraction, 0.0);
}

/**
 * Fig. 3 calibration (property sweep over seeds): the outdoor preset
 * must reproduce the paper's instability statistics — a ~20%
 * fluctuation every ~0.4 s and a ~40% fluctuation every ~1.2 s — and
 * be more unstable than indoor, with more deep fades.
 */
class Fig3Calibration : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Fig3Calibration, OutdoorMatchesPaperBands)
{
    const auto t =
        generateTrace(TraceModel::outdoor(50e3), 300.0, GetParam());
    const auto st = computeTraceStats(t);
    EXPECT_GT(st.seconds_per_20pct_fluctuation, 0.15);
    EXPECT_LT(st.seconds_per_20pct_fluctuation, 0.8);
    EXPECT_GT(st.seconds_per_40pct_fluctuation, 0.5);
    EXPECT_LT(st.seconds_per_40pct_fluctuation, 2.5);
    EXPECT_GT(st.deep_fade_fraction, 0.02);
}

TEST_P(Fig3Calibration, OutdoorMoreUnstableThanIndoor)
{
    const auto out =
        computeTraceStats(generateTrace(TraceModel::outdoor(50e3),
                                        300.0, GetParam()));
    const auto in =
        computeTraceStats(generateTrace(TraceModel::indoor(50e3),
                                        300.0, GetParam()));
    EXPECT_GT(out.deep_fade_fraction, in.deep_fade_fraction);
    // Outdoor swings faster (shorter interval between 40% moves).
    EXPECT_LT(out.seconds_per_40pct_fluctuation,
              in.seconds_per_40pct_fluctuation + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig3Calibration,
                         ::testing::Values(1, 7, 13, 42, 99, 123, 777));

TEST(TraceStatsTest, FluctuationIntervalOnSyntheticSquareWave)
{
    // Alternating 100/50 every step: a 50% change at every sample.
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i)
        samples.push_back(i % 2 == 0 ? 100.0 : 50.0);
    BandwidthTrace t(samples, 0.1);
    EXPECT_NEAR(fluctuationIntervalSeconds(t, 0.4), 10.0 / 99.0, 0.01);
}

TEST(TraceStatsTest, NoFluctuationReturnsDuration)
{
    const auto t = BandwidthTrace::constant(100.0, 5.0, 0.1);
    EXPECT_DOUBLE_EQ(fluctuationIntervalSeconds(t, 0.2), 5.0);
}

} // namespace
} // namespace net
} // namespace rog
