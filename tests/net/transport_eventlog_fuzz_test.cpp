/**
 * @file
 * Parser coverage for the transport event log and wire trace, in the
 * style of FaultPlan::tryParse's per-rejection-path tests: every
 * malformed shape (truncated lines, corrupt fields, wrong counts,
 * out-of-range values) must be rejected with a diagnostic naming the
 * problem — never skipped, never accepted — and every well-formed
 * value must round-trip bit-exactly through render + parse, including
 * logs interleaving many links.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/transport/event_log.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

TransportEvent
sampleEvent()
{
    TransportEvent ev;
    ev.t = 1.25;
    ev.kind = TransportEvent::Kind::Attempt;
    ev.link = 2;
    ev.key.worker = 3;
    ev.key.version = -7; // versions may be negative.
    ev.key.row = 11;
    ev.key.pull = true;
    ev.chunk_seq = 4;
    ev.a = 16432.0;
    ev.b = 123.456;
    return ev;
}

// ------------------------------------------------------ event lines

TEST(EventLogParse, SampleLineRoundTrips)
{
    const TransportEvent ev = sampleEvent();
    const auto parsed = tryParseEvent(toString(ev));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(parsed.event == ev);
}

TEST(EventLogParse, EveryKindRoundTrips)
{
    using K = TransportEvent::Kind;
    for (K kind : {K::Attempt, K::Resume, K::Backoff, K::Accept,
                   K::Duplicate, K::CorruptDrop, K::ReorderHold,
                   K::Deliver, K::Fail}) {
        TransportEvent ev = sampleEvent();
        ev.kind = kind;
        const auto parsed = tryParseEvent(toString(ev));
        ASSERT_TRUE(parsed.ok()) << parsed.error;
        EXPECT_TRUE(parsed.event == ev);
    }
}

struct RejectCase
{
    const char *line;
    const char *why; //!< substring the diagnostic must contain.
};

TEST(EventLogParse, EveryRejectionPathNamesTheProblem)
{
    const RejectCase cases[] = {
        {"", "10 fields, got 0"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1",
         "10 fields, got 9"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2 c=3",
         "10 fields, got 11"},
        {"x=1 attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "expected 't=...'"},
        {"t= attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "empty value for 't'"},
        {"t=zig attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "bad number for 't'"},
        {"t=1 explode link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "unknown event kind 'explode'"},
        {"t=1 attempt link=-1 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "bad integer for 'link'"},
        {"t=1 attempt wire=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2",
         "expected 'link=...'"},
        {"t=1 attempt link=0 w=70000 v=2 row=3 dir=push seq=0 a=1 b=2",
         "worker out of range"},
        {"t=1 attempt link=0 w=1 v=two row=3 dir=push seq=0 a=1 b=2",
         "bad integer for 'v'"},
        {"t=1 attempt link=0 w=1 v=2 row=4294967296 dir=push seq=0 "
         "a=1 b=2",
         "row out of range"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=sideways seq=0 a=1 b=2",
         "bad direction 'sideways'"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=x a=1 b=2",
         "bad integer for 'seq'"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=4294967296 "
         "a=1 b=2",
         "seq out of range"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=nope b=2",
         "bad number for 'a'"},
        {"t=1 attempt link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=",
         "empty value for 'b'"},
    };
    for (const RejectCase &c : cases) {
        const auto parsed = tryParseEvent(c.line);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << c.line;
        EXPECT_NE(parsed.error.find(c.why), std::string::npos)
            << "line: " << c.line << "\n  error: " << parsed.error
            << "\n  expected substring: " << c.why;
    }
}

TEST(EventLogParse, FuzzedEventsRoundTripExactly)
{
    Rng rng(0xE7EA71u);
    for (int i = 0; i < 2000; ++i) {
        TransportEvent ev;
        ev.t = rng.uniform(-10.0, 1e6);
        ev.kind = static_cast<TransportEvent::Kind>(rng.uniformInt(9));
        ev.link = static_cast<LinkId>(rng.uniformInt(64));
        ev.key.worker =
            static_cast<std::uint16_t>(rng.uniformInt(65536));
        ev.key.version =
            static_cast<std::int64_t>(rng.uniformInt(2000001)) -
            1000000;
        ev.key.row =
            static_cast<std::uint32_t>(rng.uniformInt(1u << 30));
        ev.key.pull = rng.uniform() < 0.5;
        ev.chunk_seq =
            static_cast<std::uint32_t>(rng.uniformInt(1u << 20));
        ev.a = rng.uniform(0.0, 1e9);
        ev.b = rng.uniform(-1e9, 1e9);
        const auto parsed = tryParseEvent(toString(ev));
        ASSERT_TRUE(parsed.ok()) << parsed.error;
        ASSERT_TRUE(parsed.event == ev) << toString(ev);
    }
}

// ------------------------------------------------------- whole logs

TEST(EventLogParse, LogSkipsCommentsAndCountsLines)
{
    const std::string text =
        "# a comment\n"
        "\n" +
        toString(sampleEvent()) + "\n" +
        "t=1 bogus link=0 w=1 v=2 row=3 dir=push seq=0 a=1 b=2\n";
    const auto parsed = tryParseLog(text);
    EXPECT_FALSE(parsed.ok());
    // The diagnostic names the *file* line, comments included.
    EXPECT_NE(parsed.error.find("line 4"), std::string::npos)
        << parsed.error;
    EXPECT_TRUE(parsed.events.empty()); // no partial results.
}

TEST(EventLogParse, InterleavedLinksRoundTripInOrder)
{
    Rng rng(0x11E4C5u);
    std::vector<TransportEvent> log;
    for (int i = 0; i < 200; ++i) {
        TransportEvent ev = sampleEvent();
        ev.t = 0.01 * i;
        ev.link = static_cast<LinkId>(rng.uniformInt(8));
        ev.key.worker = static_cast<std::uint16_t>(ev.link);
        ev.kind = static_cast<TransportEvent::Kind>(rng.uniformInt(9));
        ev.chunk_seq = static_cast<std::uint32_t>(i);
        log.push_back(ev);
    }
    std::string text;
    for (const TransportEvent &ev : log)
        text += toString(ev) + "\n";
    const auto parsed = tryParseLog(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_EQ(parsed.events.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_TRUE(parsed.events[i] == log[i]) << i;
    // Normalization only zeroes t; order and payload are preserved.
    const std::string norm = renderNormalized(parsed.events);
    const auto reparsed = tryParseLog(norm);
    ASSERT_TRUE(reparsed.ok());
    ASSERT_EQ(reparsed.events.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_DOUBLE_EQ(reparsed.events[i].t, 0.0);
        EXPECT_EQ(reparsed.events[i].chunk_seq, log[i].chunk_seq);
    }
}

TEST(EventLogParse, FilterSideSplitsSenderFromReceiver)
{
    using K = TransportEvent::Kind;
    std::vector<TransportEvent> log;
    for (K kind : {K::Attempt, K::Accept, K::Backoff, K::Deliver,
                   K::Fail, K::Duplicate}) {
        TransportEvent ev = sampleEvent();
        ev.kind = kind;
        log.push_back(ev);
    }
    const auto sender = filterSide(log, EventSide::Sender);
    const auto receiver = filterSide(log, EventSide::Receiver);
    EXPECT_EQ(sender.size(), 3u);   // attempt, backoff, fail.
    EXPECT_EQ(receiver.size(), 3u); // accept, deliver, duplicate.
    EXPECT_EQ(sender.size() + receiver.size(), log.size());
}

// ------------------------------------------------------ wire traces

std::string
validTraceHeader()
{
    return "trace v1 backend=udp chunk=16384 attempts=8 base=0.05 "
           "max=2 jitter=0.25 jseed=7 resume=1\n";
}

TEST(TraceParse, MinimalTraceRoundTrips)
{
    const std::string text =
        validTraceHeader() +
        "send link=0 w=1 v=0 row=100 dir=push bytes=40000 "
        "deadline=inf\n"
        "att link=0 w=1 v=0 row=100 dir=push seq=0 off=0 out=accept "
        "bytes=16432 elapsed=0.001 complete=0\n"
        "rx link=0 w=1 v=0 row=100 dir=push seq=0 off=0 len=16384 "
        "got=16384 crc=ok\n";
    const TraceParseResult first = TransportTrace::tryParse(text);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.trace.sends.size(), 1u);
    EXPECT_EQ(first.trace.attempts.size(), 1u);
    EXPECT_EQ(first.trace.rx.size(), 1u);
    EXPECT_TRUE(std::isinf(first.trace.sends[0].deadline_s));
    const TraceParseResult second =
        TransportTrace::tryParse(first.trace.toText());
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(first.trace.toText(), second.trace.toText());
}

TEST(TraceParse, EveryRejectionPathNamesTheProblem)
{
    const std::string hdr = validTraceHeader();
    const RejectCase cases[] = {
        {"", "missing trace header"},
        {"send link=0 w=1 v=0 row=1 dir=push bytes=1 deadline=inf\n",
         "send before trace header"},
        {"att link=0 w=1 v=0 row=1 dir=push seq=0 off=0 out=accept "
         "bytes=1 elapsed=0 complete=0\n",
         "att before trace header"},
        {"rx link=0 w=1 v=0 row=1 dir=push seq=0 off=0 len=1 got=1 "
         "crc=ok\n",
         "rx before trace header"},
        {"trace v1 backend=udp chunk=16384\n", "10 fields, got 4"},
        {"trace v2 backend=udp chunk=16384 attempts=8 base=0.05 max=2 "
         "jitter=0.25 jseed=7 resume=1\n",
         "unsupported trace version 'v2'"},
        {"trace v1 backend=udp chunk=0 attempts=8 base=0.05 max=2 "
         "jitter=0.25 jseed=7 resume=1\n",
         "chunk must be positive"},
        {"trace v1 backend=udp chunk=16384 attempts=8 base=0.05 max=2 "
         "jitter=1.5 jseed=7 resume=1\n",
         "jitter must be in [0, 1)"},
        {"trace v1 backend=udp chunk=16384 attempts=8 base=0.05 max=2 "
         "jitter=0.25 jseed=7 resume=2\n",
         "resume must be 0 or 1"},
    };
    for (const RejectCase &c : cases) {
        const TraceParseResult parsed = TransportTrace::tryParse(c.line);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << c.line;
        EXPECT_NE(parsed.error.find(c.why), std::string::npos)
            << "input: " << c.line << "\n  error: " << parsed.error
            << "\n  expected substring: " << c.why;
    }

    const RejectCase body_cases[] = {
        {"", ""}, // sanity: a bare header parses.
        {"wat link=0\n", "unknown record type 'wat'"},
        {"trace v1 backend=udp chunk=16384 attempts=8 base=0.05 max=2 "
         "jitter=0.25 jseed=7 resume=1\n",
         "duplicate trace header"},
        {"send link=0 w=1 v=0 row=1 dir=push bytes=1\n",
         "send record needs 8 fields"},
        {"send link=0 w=1 v=0 row=1 dir=push bytes=-4 deadline=inf\n",
         "send bytes must be non-negative"},
        {"att link=0 w=1 v=0 row=1 dir=push seq=0 off=0 out=accept "
         "bytes=1 elapsed=0\n",
         "att record needs 12 fields"},
        {"att link=0 w=1 v=0 row=1 dir=push seq=0 off=0 out=vanished "
         "bytes=1 elapsed=0 complete=0\n",
         "unknown attempt outcome 'vanished'"},
        {"att link=0 w=1 v=0 row=1 dir=push seq=0 off=0 out=accept "
         "bytes=1 elapsed=0 complete=3\n",
         "complete must be 0 or 1"},
        {"att link=0 w=1 v=0 row=1 dir=push seq=0 off=0 out=accept "
         "bytes=-1 elapsed=0 complete=0\n",
         "att bytes/elapsed must be non-negative"},
        {"rx link=0 w=1 v=0 row=1 dir=push seq=0 off=0 len=1 got=1\n",
         "rx record needs 11 fields"},
        {"rx link=0 w=1 v=0 row=1 dir=push seq=0 off=0 len=1 got=2 "
         "crc=ok\n",
         "rx got exceeds fragment length"},
        {"rx link=0 w=1 v=0 row=1 dir=push seq=0 off=0 len=1 got=1 "
         "crc=maybe\n",
         "crc must be ok|bad"},
        {"att link=0 w=1 v=0 row=1 dir=pull seq=x off=0 out=accept "
         "bytes=1 elapsed=0 complete=0\n",
         "bad integer for 'seq'"},
    };
    for (const RejectCase &c : body_cases) {
        const std::string text = hdr + c.line;
        const TraceParseResult parsed = TransportTrace::tryParse(text);
        if (std::string(c.why).empty()) {
            EXPECT_TRUE(parsed.ok()) << parsed.error;
            continue;
        }
        EXPECT_FALSE(parsed.ok()) << "accepted: " << c.line;
        EXPECT_NE(parsed.error.find(c.why), std::string::npos)
            << "input: " << c.line << "\n  error: " << parsed.error
            << "\n  expected substring: " << c.why;
        // Rejection names the file line (header is line 1).
        EXPECT_NE(parsed.error.find("line "), std::string::npos);
    }
}

TEST(TraceParse, FuzzedTracesRoundTripExactly)
{
    Rng rng(0x7EACEu);
    for (int iter = 0; iter < 50; ++iter) {
        TransportTrace trace;
        trace.config.backend = (iter % 2) != 0 ? "udp" : "tcp";
        trace.config.chunk_bytes = rng.uniform(1.0, 65536.0);
        trace.config.max_attempts =
            static_cast<std::size_t>(1 + rng.uniformInt(16));
        trace.config.jitter_frac = rng.uniform(0.0, 0.99);
        trace.config.jitter_seed = rng.uniformInt(1u << 30);
        const int sends = static_cast<int>(rng.uniformInt(6));
        for (int s = 0; s < sends; ++s) {
            SendRecord rec;
            rec.key.worker =
                static_cast<std::uint16_t>(rng.uniformInt(10));
            rec.key.version = s;
            rec.key.row =
                static_cast<std::uint32_t>(rng.uniformInt(1000));
            rec.key.pull = rng.uniform() < 0.5;
            rec.payload_bytes = rng.uniform(0.0, 1e6);
            rec.deadline_s =
                rng.uniform() < 0.3
                    ? std::numeric_limits<double>::infinity()
                    : rng.uniform(0.1, 100.0);
            trace.sends.push_back(rec);

            AttemptRecord att;
            att.key = rec.key;
            att.chunk_seq =
                static_cast<std::uint32_t>(rng.uniformInt(8));
            att.payload_off = rng.uniformInt(1u << 20);
            att.outcome = static_cast<AttemptOutcome>(rng.uniformInt(6));
            att.bytes_sent = rng.uniform(0.0, 70000.0);
            att.elapsed_s = rng.uniform(0.0, 2.0);
            att.message_complete = rng.uniform() < 0.5;
            trace.attempts.push_back(att);

            RxRecord rx;
            rx.key = rec.key;
            rx.chunk_seq = att.chunk_seq;
            rx.payload_off = att.payload_off;
            rx.frag_len =
                static_cast<std::uint32_t>(rng.uniformInt(65536));
            rx.got = static_cast<std::uint32_t>(
                rng.uniformInt(rx.frag_len + 1u));
            rx.crc_ok = rng.uniform() < 0.8;
            trace.rx.push_back(rx);
        }
        const std::string text = trace.toText();
        const TraceParseResult parsed = TransportTrace::tryParse(text);
        ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << text;
        EXPECT_EQ(parsed.trace.toText(), text);
    }
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
