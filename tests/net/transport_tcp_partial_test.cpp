/**
 * @file
 * kFlagAckPartial over TCP. The stream backend never truncates a
 * frame in flight (the endpoint reassembles whole frames), so the
 * partial-ACK path over TCP is the *state-loss* one: a sender resumes
 * a chunk from a nonzero offset — exactly what ReliableLink does
 * after earlier partial progress — but the receiver process restarted
 * and holds no prefix. The gap fragment must come back as
 * kFlagAckPartial carrying the receiver's true prefix (zero), the
 * sender restarts the chunk from that offset, and delivery still
 * happens exactly once. Also pinned here over TCP: duplicate-chunk
 * dedup and the CRC-failure-wipes-the-chunk rule, both previously
 * exercised only on UDP.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/crc32c.hpp"
#include "common/poll_loop.hpp"
#include "net/transport/socket_backend.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

constexpr std::size_t kChunkBytes = 6000;

std::vector<std::uint8_t>
patternChunk()
{
    std::vector<std::uint8_t> chunk(kChunkBytes);
    for (std::size_t i = 0; i < chunk.size(); ++i)
        chunk[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return chunk;
}

MessageKey
testKey()
{
    MessageKey key;
    key.worker = 1;
    key.version = 9;
    key.row = 5;
    key.pull = false;
    return key;
}

FrameHeader
fragmentHeader(const std::vector<std::uint8_t> &chunk,
               std::size_t off, std::size_t len)
{
    FrameHeader hdr;
    hdr.worker = 1;
    hdr.version = 9;
    hdr.row = 5;
    hdr.chunk_seq = 0;
    hdr.chunk_count = 1;
    hdr.payload_off = off;
    hdr.payload_len = static_cast<std::uint32_t>(len);
    // The CRC always covers the complete chunk, never the fragment.
    hdr.payload_crc = crc32c({chunk.data(), chunk.size()});
    return hdr;
}

class TcpPartialAck : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        rx = std::make_unique<TcpReceiverEndpoint>(loop, 0);
        ASSERT_TRUE(rx->ok()) << rx->error();
        SocketOptions opts;
        opts.ack_timeout_s = 2.0; // ACKs must win, not timeouts.
        tx = std::make_unique<TcpBackend>(loop, "127.0.0.1",
                                          rx->port(), opts);
        ASSERT_TRUE(tx->ok()) << tx->error();
        send_id = tx->openSend(0, testKey(), /*payload_mode=*/false);
    }

    /** Ship one fragment and run the loop until its verdict lands. */
    FrameVerdict
    sendFragment(const std::vector<std::uint8_t> &chunk,
                 std::size_t off, std::size_t len)
    {
        std::optional<FrameVerdict> verdict;
        tx->sendFrame(
            send_id, fragmentHeader(chunk, off, len),
            {chunk.data() + off, len}, {chunk.data(), chunk.size()},
            static_cast<double>(len),
            static_cast<double>(chunk.size()), /*timeout_s=*/2.0,
            [&](const FrameVerdict &v) { verdict = v; }, [] {});
        EXPECT_TRUE(
            loop.runUntil([&] { return verdict.has_value(); }, 5.0))
            << "no verdict within 5s";
        return verdict.value_or(FrameVerdict{});
    }

    PollLoop loop;
    std::unique_ptr<TcpReceiverEndpoint> rx;
    std::unique_ptr<TcpBackend> tx;
    std::uint64_t send_id = 0;
};

TEST_F(TcpPartialAck, GapFragmentPartialAcksThenRestartDelivers)
{
    const std::vector<std::uint8_t> chunk = patternChunk();

    // Resume-from-offset against a receiver with no prefix (the
    // restarted-server case): the tail fragment cannot complete the
    // chunk, and the partial ACK reports prefix 0 — zero payload
    // progress for this attempt.
    const FrameVerdict partial = sendFragment(chunk, 3000, 3000);
    EXPECT_FALSE(partial.completed);
    EXPECT_EQ(partial.fresh_accepts, 0u);
    EXPECT_DOUBLE_EQ(partial.bytes_sent,
                     static_cast<double>(FrameHeader::kWireSize));
    EXPECT_EQ(rx->deliveredMessages(), 0u);

    // The sender restarts the chunk from the acked prefix: one whole
    // frame, accepted, message complete, delivered exactly once.
    const FrameVerdict full = sendFragment(chunk, 0, kChunkBytes);
    EXPECT_TRUE(full.completed);
    EXPECT_TRUE(full.crc_ok);
    EXPECT_EQ(full.fresh_accepts, 1u);
    EXPECT_TRUE(full.message_complete);
    EXPECT_EQ(rx->deliveredMessages(), 1u);
    tx->finishSend(send_id, true);
}

TEST_F(TcpPartialAck, DuplicateChunkDedupsExactlyOnce)
{
    const std::vector<std::uint8_t> chunk = patternChunk();
    const FrameVerdict first = sendFragment(chunk, 0, kChunkBytes);
    ASSERT_TRUE(first.completed);
    EXPECT_EQ(first.fresh_accepts, 1u);

    // A replay of the accepted chunk — the retransmit a lost ACK
    // would cause — must dedup, not double-deliver.
    const FrameVerdict again = sendFragment(chunk, 0, kChunkBytes);
    EXPECT_TRUE(again.completed);
    EXPECT_TRUE(again.crc_ok);
    EXPECT_EQ(again.fresh_accepts, 0u);
    EXPECT_EQ(again.duplicates, 1u);
    EXPECT_EQ(rx->deliveredMessages(), 1u);
    tx->finishSend(send_id, true);
}

TEST_F(TcpPartialAck, CrcFailureWipesChunkThenFullResendDelivers)
{
    const std::vector<std::uint8_t> chunk = patternChunk();

    // A fragment framed short of the chunk end reassembles into a
    // "complete" 4000-byte chunk whose CRC (computed over the true
    // 6000 bytes) cannot match: the receiver discards and wipes the
    // buffer, per the restart-the-chunk-on-corruption rule.
    const FrameVerdict bad = sendFragment(chunk, 0, 4000);
    EXPECT_TRUE(bad.completed);
    EXPECT_FALSE(bad.crc_ok);
    EXPECT_EQ(bad.fresh_accepts, 0u);
    EXPECT_EQ(rx->deliveredMessages(), 0u);

    const FrameVerdict good = sendFragment(chunk, 0, kChunkBytes);
    EXPECT_TRUE(good.completed);
    EXPECT_TRUE(good.crc_ok);
    EXPECT_EQ(good.fresh_accepts, 1u);
    EXPECT_TRUE(good.message_complete);
    EXPECT_EQ(rx->deliveredMessages(), 1u);
    tx->finishSend(send_id, true);
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
