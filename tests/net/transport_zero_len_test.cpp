/**
 * @file
 * A zero-length payload must round-trip as a valid one-chunk message
 * over every backend: the DES twin, UDP datagrams, and loopback TCP.
 * Historically only the DES path was exercised (and zero bytes died on
 * an assert); delivery still means a header-only frame round-tripped
 * intact and was accepted exactly once.
 */
#include <gtest/gtest.h>

#include "loopback_harness.hpp"
#include "net/channel.hpp"
#include "net/transport/crossval.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {
namespace {

using testing::countKind;
using testing::LoopbackOutcome;
using testing::quickSpec;
using testing::runLoopback;

TEST(TransportZeroLen, DesDeliversHeaderOnlyChunk)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(10e3, 600.0)});
    ReliableLink link(sim, ch, TransportConfig{});

    SendResult out;
    MessageKey key;
    key.version = 7;
    link.startSend(0, key, 0.0, kNoDeadline,
                   [&](SendResult r) { out = r; });
    sim.run();

    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.chunks, 1u);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_DOUBLE_EQ(out.payload_bytes, 0.0);
    // The wire still carried the header.
    EXPECT_DOUBLE_EQ(out.bytes_sent,
                     static_cast<double>(FrameHeader::kWireSize));
    EXPECT_EQ(countKind(link.log(), TransportEvent::Kind::Accept), 1u);
    EXPECT_EQ(countKind(link.log(), TransportEvent::Kind::Deliver), 1u);
}

TEST(TransportZeroLen, DesEmptyPayloadSpanDelivers)
{
    sim::Simulation sim;
    Channel ch(sim, {BandwidthTrace::constant(10e3, 600.0)});
    ReliableLink link(sim, ch, TransportConfig{});

    SendResult out;
    MessageKey key;
    key.version = 9;
    link.startSendPayload(0, key, {}, kNoDeadline,
                          [&](SendResult r) { out = r; });
    sim.run();

    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.chunks, 1u);
    EXPECT_TRUE(link.deliveredPayload(key).empty());
}

TEST(TransportZeroLen, UdpLoopbackDelivers)
{
    const LoopbackOutcome out = runLoopback(quickSpec("udp", 2, 0.0));
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 2u);
    EXPECT_EQ(out.rx_delivered, 2u);
    for (const SendResult &r : out.results) {
        EXPECT_TRUE(r.delivered);
        EXPECT_EQ(r.chunks, 1u);
        EXPECT_DOUBLE_EQ(
            r.bytes_sent, static_cast<double>(FrameHeader::kWireSize));
    }
    EXPECT_EQ(countKind(out.receiver_log, TransportEvent::Kind::Accept),
              2u);
}

TEST(TransportZeroLen, TcpLoopbackDelivers)
{
    const LoopbackOutcome out = runLoopback(quickSpec("tcp", 2, 0.0));
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.delivered, 2u);
    EXPECT_EQ(out.rx_delivered, 2u);
}

TEST(TransportZeroLen, UdpZeroLenRunCrossValidates)
{
    const LoopbackOutcome out = runLoopback(quickSpec("udp", 2, 0.0));
    ASSERT_TRUE(out.ok) << out.error;
    const CrossvalReport report =
        crossValidate(out.trace, out.merged_log);
    EXPECT_TRUE(report.ok) << report.detail;
}

} // namespace
} // namespace transport
} // namespace net
} // namespace rog
