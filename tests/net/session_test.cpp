/**
 * @file
 * Session layer: wire codec round-trips, SessionTable admission and
 * rejection paths (bad epoch, stale resume token, resume downgrade),
 * and the full node engine running over the DES fabric — including a
 * worker whose first Hello carries the wrong epoch and must adopt the
 * server's from the Reject before being admitted.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <iterator>

#include <sys/stat.h>

#include "core/node_engine.hpp"
#include "core/node_runner.hpp"
#include "net/session/des_fabric.hpp"
#include "net/session/session.hpp"
#include "net/session/wire.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace session {
namespace {

TEST(SessionWire, VersionPackingRoundTrips)
{
    const std::int64_t v = packVersion(7, 123456);
    EXPECT_EQ(versionScope(v), 7u);
    EXPECT_EQ(versionSeq(v), 123456);
    // Scopes separate identical sequences.
    EXPECT_NE(packVersion(1, 5), packVersion(2, 5));
}

TEST(SessionWire, HelloRoundTrips)
{
    Hello in;
    in.worker = 3;
    in.incarnation = 2;
    in.epoch = 9;
    in.resume_token = 0xDEADBEEFCAFEBABEull;
    in.nonce = 42;
    in.rx_port = 54321;
    in.last_done_iter = 17;
    Hello out;
    ASSERT_TRUE(parse(encode(in), out));
    EXPECT_EQ(out.worker, in.worker);
    EXPECT_EQ(out.incarnation, in.incarnation);
    EXPECT_EQ(out.epoch, in.epoch);
    EXPECT_EQ(out.resume_token, in.resume_token);
    EXPECT_EQ(out.nonce, in.nonce);
    EXPECT_EQ(out.rx_port, in.rx_port);
    EXPECT_EQ(out.last_done_iter, in.last_done_iter);
}

TEST(SessionWire, TruncatedParseFails)
{
    Hello in;
    in.worker = 1;
    std::vector<std::uint8_t> bytes = encode(in);
    bytes.pop_back();
    Hello out;
    EXPECT_FALSE(parse(bytes, out));
    Welcome w;
    EXPECT_FALSE(parse(bytes, w)); // wrong tag too.
}

TEST(SessionWire, VersionSeqBeyond24BitsPanics)
{
    EXPECT_DEATH(packVersion(1, 0x1000000), "24-bit");
    EXPECT_DEATH(packVersion(1, -1), "24-bit");
}

TEST(SessionWire, WelcomeWithHugeModelLenFailsParse)
{
    Welcome in;
    in.nonce = 7;
    std::vector<std::uint8_t> bytes = encode(in);
    // model_len sits after tag(1) + nonce(8) + session(4) + token(8) +
    // mode(1) + start_iter(8) + epoch(8) = offset 38. Claim 2^64-1
    // bytes: the parse must fail cleanly, not wrap the bounds check
    // into an invalid iterator range.
    ASSERT_EQ(bytes.size(), 46u);
    for (std::size_t i = 38; i < 46; ++i)
        bytes[i] = 0xFF;
    Welcome out;
    EXPECT_FALSE(parse(bytes, out));
}

TEST(SessionWire, PullDataWithHugeCountsFailsParse)
{
    PullData in;
    in.iter = 1;
    UnitUpdate u;
    u.unit = 0;
    u.values = {1.0f, 2.0f};
    in.units.push_back(u);
    const std::vector<std::uint8_t> bytes = encode(in);
    // Layout: tag(1) + iter(8) + min_done(8), unit count at 17,
    // first unit id at 21, its value count at 25.
    ASSERT_EQ(bytes.size(), 37u);
    PullData out;

    // A short message claiming ~2^32 units must fail the parse before
    // any proportional allocation.
    std::vector<std::uint8_t> huge_units = bytes;
    for (std::size_t i = 17; i < 21; ++i)
        huge_units[i] = 0xFF;
    EXPECT_FALSE(parse(huge_units, out));

    // Same for a unit claiming ~2^32 float values.
    std::vector<std::uint8_t> huge_values = bytes;
    for (std::size_t i = 25; i < 29; ++i)
        huge_values[i] = 0xFF;
    EXPECT_FALSE(parse(huge_values, out));
}

Hello
helloFor(std::size_t worker, std::uint64_t epoch,
         std::uint64_t token = 0, std::int64_t done = 0,
         std::uint32_t inc = 0)
{
    Hello h;
    h.worker = static_cast<std::uint16_t>(worker);
    h.incarnation = inc;
    h.epoch = epoch;
    h.resume_token = token;
    h.nonce = 1000 + inc;
    h.last_done_iter = done;
    return h;
}

TEST(SessionTable, FreshAdmissionMintsSessionAndToken)
{
    SessionTable t(4, /*epoch=*/3, /*salt=*/7);
    const Admission a = t.onHello(helloFor(1, 3));
    ASSERT_TRUE(a.admitted);
    EXPECT_EQ(a.mode, AdmitMode::Fresh);
    EXPECT_EQ(a.start_iter, 0);
    EXPECT_NE(a.session, 0u);
    EXPECT_NE(a.resume_token, 0u);
    EXPECT_TRUE(t.isCurrent(1, a.session));
    EXPECT_EQ(t.sessionOf(1), a.session);
    EXPECT_EQ(t.admissions(), 1u);
}

TEST(SessionTable, BadEpochRejectedWithoutMutation)
{
    SessionTable t(4, 3, 7);
    const Admission a = t.onHello(helloFor(0, /*epoch=*/2));
    ASSERT_FALSE(a.admitted);
    EXPECT_EQ(a.reject, RejectReason::BadEpoch);
    EXPECT_EQ(t.sessionOf(0), 0u);
    EXPECT_EQ(t.admissions(), 0u);

    // Adopting the right epoch (what the worker does on Reject)
    // admits on retry.
    const Admission b = t.onHello(helloFor(0, 3));
    EXPECT_TRUE(b.admitted);
    EXPECT_EQ(b.mode, AdmitMode::Fresh);
}

TEST(SessionTable, StaleTokenRejectedThenFreshReentry)
{
    SessionTable t(4, 3, 7);
    const Admission first = t.onHello(helloFor(2, 3));
    ASSERT_TRUE(first.admitted);

    // A nonzero token that is not the latest mint: rejected.
    const Admission bad =
        t.onHello(helloFor(2, 3, first.resume_token ^ 1, 5, 1));
    ASSERT_FALSE(bad.admitted);
    EXPECT_EQ(bad.reject, RejectReason::StaleToken);
    EXPECT_TRUE(t.isCurrent(2, first.session)); // table untouched.

    // The worker clears the token (token = 0): admitted as a rejoin.
    const Admission retry = t.onHello(helloFor(2, 3, 0, 0, 1));
    ASSERT_TRUE(retry.admitted);
    EXPECT_EQ(retry.mode, AdmitMode::Rejoin);
    EXPECT_NE(retry.session, first.session);
    EXPECT_FALSE(t.isCurrent(2, first.session));
}

TEST(SessionTable, ValidTokenResumesFromLocalCheckpoint)
{
    SessionTable t(4, 3, 7);
    const Admission first = t.onHello(helloFor(2, 3));
    ASSERT_TRUE(first.admitted);
    t.noteProgress(2, 6);
    t.noteResponse(2, 6);

    // Restarted process, checkpoint caught up with the last response:
    // resume, no model resync, starting where the checkpoint says.
    const Admission again =
        t.onHello(helloFor(2, 3, first.resume_token, 6, 1));
    ASSERT_TRUE(again.admitted);
    EXPECT_EQ(again.mode, AdmitMode::Resume);
    EXPECT_EQ(again.start_iter, 6);
    EXPECT_NE(again.resume_token, first.resume_token); // re-minted.
}

TEST(SessionTable, ResumeDowngradesToRejoinWhenCheckpointIsBehind)
{
    SessionTable t(4, 3, 7);
    const Admission first = t.onHello(helloFor(2, 3));
    ASSERT_TRUE(first.admitted);
    t.noteProgress(2, 8);
    t.noteResponse(2, 8);

    // The checkpoint (iter 5) predates the last answered pull (iter
    // 8): the outbox gradients cleared by that response would be lost
    // on a resume, so the admission must downgrade to a full resync.
    const Admission again =
        t.onHello(helloFor(2, 3, first.resume_token, 5, 1));
    ASSERT_TRUE(again.admitted);
    EXPECT_EQ(again.mode, AdmitMode::Rejoin);
    EXPECT_EQ(again.start_iter, 8);
}

TEST(SessionTable, TokensNeverRepeatAcrossAdmissions)
{
    SessionTable t(2, 1, 99);
    std::uint64_t prev = 0;
    for (int i = 0; i < 8; ++i) {
        const Admission a = t.onHello(
            helloFor(0, 1, 0, 0, static_cast<std::uint32_t>(i)));
        ASSERT_TRUE(a.admitted);
        EXPECT_NE(a.resume_token, 0u);
        EXPECT_NE(a.resume_token, prev);
        prev = a.resume_token;
    }
}

TEST(SessionTable, SnapshotRestoreHonorsPreCrashTokens)
{
    SessionTable t(4, /*epoch=*/3, /*salt=*/7);
    const Admission first = t.onHello(helloFor(2, 3));
    ASSERT_TRUE(first.admitted);
    t.noteProgress(2, 6);
    t.noteResponse(2, 6);

    // Server crash: the durable image moves into a brand-new table
    // under a bumped epoch (what ServerNode recovery does).
    const SessionSnapshot snap = t.snapshot();
    SessionTable fresh(4, /*epoch=*/1, /*salt=*/7);
    fresh.restore(snap, /*new_epoch=*/4);
    EXPECT_EQ(fresh.epoch(), 4u);

    // Live session ids do not survive: every worker re-enters
    // through Hello, and the pre-crash scope is dead.
    EXPECT_EQ(fresh.sessionOf(2), 0u);
    EXPECT_FALSE(fresh.isCurrent(2, first.session));

    // A Hello still carrying the dead epoch bounces off the gate.
    const Admission stale = fresh.onHello(
        helloFor(2, 3, first.resume_token, 6, 1));
    ASSERT_FALSE(stale.admitted);
    EXPECT_EQ(stale.reject, RejectReason::BadEpoch);

    // With the new epoch adopted, the pre-crash token resumes from
    // the local checkpoint exactly as it would have before the crash.
    const Admission resumed = fresh.onHello(
        helloFor(2, 4, first.resume_token, 6, 1));
    ASSERT_TRUE(resumed.admitted);
    EXPECT_EQ(resumed.mode, AdmitMode::Resume);
    EXPECT_EQ(resumed.start_iter, 6);
    // Session ids stay monotone across the restart — the restored
    // counter prevents scope aliasing with pre-crash messages.
    EXPECT_GT(resumed.session, first.session);
}

TEST(SessionTable, RestoreStillRejectsStaleTokens)
{
    SessionTable t(2, 1, 99);
    const Admission first = t.onHello(helloFor(0, 1));
    ASSERT_TRUE(first.admitted);

    SessionTable fresh(2, 1, 99);
    fresh.restore(t.snapshot(), 2);
    const Admission bad =
        fresh.onHello(helloFor(0, 2, first.resume_token ^ 1, 3, 1));
    ASSERT_FALSE(bad.admitted);
    EXPECT_EQ(bad.reject, RejectReason::StaleToken);

    // Clearing the token re-enters as a rejoin, same as pre-crash.
    const Admission retry = fresh.onHello(helloFor(0, 2, 0, 0, 1));
    ASSERT_TRUE(retry.admitted);
    EXPECT_EQ(retry.mode, AdmitMode::Rejoin);
}

// ---------------------------------------------------------------
// Engine over the DES fabric.

TEST(SessionDes, TwinRunsToCompletion)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 2;
    cfg.train.max_iters = 4;
    cfg.run_timeout_s = 300.0; // simulated seconds, not wall.
    const core::DesTwinResult res = core::runDesTwin(cfg);
    EXPECT_TRUE(res.done);
    EXPECT_TRUE(std::isfinite(res.metric));
    // 4 iters * 2 workers, each pushing every partition unit.
    EXPECT_GT(res.applied_pushes, 8u);
}

TEST(SessionDes, TwinIsDeterministicPerSeed)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 2;
    cfg.train.max_iters = 3;
    cfg.run_timeout_s = 300.0;
    const core::DesTwinResult a = core::runDesTwin(cfg);
    const core::DesTwinResult b = core::runDesTwin(cfg);
    ASSERT_TRUE(a.done);
    ASSERT_TRUE(b.done);
    EXPECT_EQ(a.metric, b.metric);
    EXPECT_EQ(a.applied_pushes, b.applied_pushes);
}

TEST(SessionDes, WorkerAdoptsServerEpochAfterReject)
{
    sim::Simulation sim;
    DesFabricNet net(sim, 4.0e6, transport::TransportConfig{});

    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 1;
    core::NodeTrainConfig train = cfg.train;
    train.max_iters = 2;
    train.epoch = 5;
    train.worker_state_dir.clear();
    train.checkpoint_path.clear();

    std::unique_ptr<core::Workload> workload =
        core::makeNodeWorkload(cfg);
    core::ServerNode server(net.node(kServerNode), *workload, train);
    server.start();

    // The worker believes in a previous run's epoch; its first Hello
    // is rejected with the server's epoch, which it adopts and
    // retries with.
    core::NodeTrainConfig wtrain = train;
    wtrain.epoch = 1;
    core::WorkerNode worker(net.node(workerNode(0)), *workload,
                            wtrain, 0, core::WorkerResumeState{});
    worker.start("des", 0);

    sim.runUntil(300.0);
    EXPECT_TRUE(worker.done());
    EXPECT_TRUE(server.done());
    EXPECT_EQ(worker.admitMode(), AdmitMode::Fresh);
    EXPECT_EQ(server.sessions().epoch(), 5u);
}

// A scripted parameter server: reacts to each of the worker's Hellos
// from inside the delivery (so its replies always quote a live
// nonce), and can also inject delayed rows a dead server incarnation
// might have left in flight.
class ScriptedServer
{
  public:
    explicit ScriptedServer(DesFabric &fab) : fab_(fab)
    {
        fab_.connectPeer(workerNode(0), "", 0);
        fab_.setMessageHandler(
            [this](const MessageKey &key,
                   std::vector<std::uint8_t> &&bytes) {
                if (key.row != kRowHello)
                    return;
                Hello h;
                if (!parse(bytes, h))
                    return;
                hellos.push_back(h);
                if (on_hello)
                    on_hello(h);
            });
    }

    ~ScriptedServer() { fab_.setMessageHandler({}); }

    void
    send(std::uint32_t row, std::vector<std::uint8_t> bytes)
    {
        MessageKey key{0, packVersion(0, seq_++), row, true};
        fab_.sendTo(workerNode(0), key, std::move(bytes),
                    fab_.now() + 3.0,
                    [this](bool ok) { delivered += ok ? 1 : 0; });
    }

    std::vector<Hello> hellos;
    std::function<void(const Hello &)> on_hello;
    int delivered = 0;

  private:
    DesFabric &fab_;
    std::uint32_t seq_ = 1;
};

TEST(SessionDes, WorkerAdoptsBumpedEpochAndIgnoresDeadWelcome)
{
    sim::Simulation sim;
    DesFabricNet net(sim, 4.0e6, transport::TransportConfig{});

    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 1;
    core::NodeTrainConfig train = cfg.train;
    train.max_iters = 2;
    train.epoch = 7; // the epoch the worker was admitted under.
    train.worker_state_dir.clear();
    train.checkpoint_path.clear();
    std::unique_ptr<core::Workload> workload =
        core::makeNodeWorkload(cfg);

    ScriptedServer server(net.node(kServerNode));
    std::string wlog;
    core::WorkerNode worker(
        net.node(workerNode(0)), *workload, train, 0,
        core::WorkerResumeState{},
        [&wlog](const std::string &s) { wlog += s + "\n"; });

    // Script: (1) bounce the first Hello with BadEpoch announcing
    // epoch 8 — a server that restarted and bumped its epoch; (2) the
    // first epoch-8 Hello gets only a *delayed* Welcome minted for
    // the dead epoch-7 handshake, which the worker must ignore;
    // (3) every later epoch-8 Hello gets the genuine Welcome.
    int stage = 0;
    std::uint64_t dead_nonce = 0;
    std::size_t epoch7_hellos_after_adopt = 0;
    server.on_hello = [&](const Hello &h) {
        if (h.epoch == 7) {
            if (stage == 0)
                dead_nonce = h.nonce;
            else
                ++epoch7_hellos_after_adopt;
            Reject rej;
            rej.nonce = h.nonce;
            rej.reason = RejectReason::BadEpoch;
            rej.server_epoch = 8;
            server.send(kRowReject, encode(rej));
            stage = stage == 0 ? 1 : stage;
            return;
        }
        if (stage == 1) {
            Welcome stale;
            stale.nonce = dead_nonce; // a dead handshake's nonce.
            stale.session = 77;
            stale.resume_token = 123;
            stale.mode = AdmitMode::Fresh;
            stale.start_iter = 0;
            stale.epoch = 7;
            server.send(kRowWelcome, encode(stale));
            stage = 2;
            return;
        }
        Welcome ok;
        ok.nonce = h.nonce;
        ok.session = 9;
        ok.resume_token = 456;
        ok.mode = AdmitMode::Fresh;
        ok.start_iter = 0;
        ok.epoch = 8;
        server.send(kRowWelcome, encode(ok));
    };

    worker.start("des", 0);
    for (double t = 0.1; t < 10.0 && !worker.admitted(); t += 0.1)
        sim.runUntil(t);

    // The worker adopted epoch 8, ignored the dead epoch's Welcome
    // (or it would sit in session 77), and accepted the genuine one.
    EXPECT_GT(server.delivered, 0) << "hellos=" << server.hellos.size();
    EXPECT_TRUE(worker.admitted()) << wlog;
    EXPECT_EQ(worker.epoch(), 8u);
    EXPECT_EQ(worker.session(), 9u);
    EXPECT_EQ(worker.admitMode(), AdmitMode::Fresh);
    // Every post-adoption Hello carried the new epoch.
    EXPECT_EQ(epoch7_hellos_after_adopt, 0u);
    ASSERT_GE(server.hellos.size(), 3u); // reject, stale, genuine.
}

TEST(SessionDes, ServerCrashTwinRecoversAndFinishes)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.workers = 2;
    cfg.train.max_iters = 8;
    cfg.run_timeout_s = 300.0; // simulated seconds.
    cfg.server_crash_iter = 3;
    cfg.server_crash_restart_s = 0.5;
    cfg.artifact_dir = testing::TempDir() + "rog_des_crash_twin";
    ::mkdir(cfg.artifact_dir.c_str(), 0755);
    std::remove((cfg.artifact_dir + "/des_twin.log").c_str());

    const core::DesTwinResult res = core::runDesTwin(cfg);
    EXPECT_TRUE(res.done);
    EXPECT_TRUE(std::isfinite(res.metric));
    EXPECT_GT(res.applied_pushes, 0u);

    // The twin's log must show the kill and a recovered incarnation
    // under a bumped epoch re-admitting the fleet.
    std::ifstream is(cfg.artifact_dir + "/des_twin.log");
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("des_server_killed"), std::string::npos);
    EXPECT_NE(text.find("server_start epoch=2 recovered=1"),
              std::string::npos);
    EXPECT_NE(text.find("epoch=2"), std::string::npos);
}

} // namespace
} // namespace session
} // namespace net
} // namespace rog
