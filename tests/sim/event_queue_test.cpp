/**
 * @file
 * Unit tests for the discrete-event queue.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace rog {
namespace sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NowAdvancesOnlyOnFire)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    q.step();
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueTest, CancelPreventsFire)
{
    EventQueue q;
    bool fired = false;
    bool dropped = false;
    const EventId id = q.schedule(
        1.0, [&] { fired = true; }, [&] { dropped = true; });
    q.cancel(id);
    while (q.step()) {
    }
    EXPECT_FALSE(fired);
    EXPECT_TRUE(dropped);
}

TEST(EventQueueTest, CancelAfterFireIsNoop)
{
    EventQueue q;
    int fires = 0;
    const EventId id = q.schedule(1.0, [&] { ++fires; });
    q.step();
    q.cancel(id);
    EXPECT_EQ(fires, 1);
}

TEST(EventQueueTest, CancelInvalidIdIsNoop)
{
    EventQueue q;
    q.cancel(EventId{});
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DestructorRunsDropHandlers)
{
    int drops = 0;
    {
        EventQueue q;
        q.schedule(1.0, [] {}, [&] { ++drops; });
        q.schedule(2.0, [] {}, [&] { ++drops; });
    }
    EXPECT_EQ(drops, 2);
}

TEST(EventQueueTest, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<double> times;
    q.schedule(1.0, [&] {
        times.push_back(q.now());
        q.schedule(2.0, [&] { times.push_back(q.now()); });
    });
    while (q.step()) {
    }
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueueTest, CallbackMayCancelLaterEvent)
{
    EventQueue q;
    bool late_fired = false;
    EventId late = q.schedule(5.0, [&] { late_fired = true; });
    q.schedule(1.0, [&] { q.cancel(late); });
    while (q.step()) {
    }
    EXPECT_FALSE(late_fired);
}

TEST(EventQueueTest, SchedulingIntoThePastDies)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(1.0, [] {}), "past");
}

TEST(EventQueueTest, PeekTime)
{
    EventQueue q;
    q.schedule(7.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_DOUBLE_EQ(q.peekTime(), 2.0);
}

TEST(EventQueueTest, SizeTracksPending)
{
    EventQueue q;
    EXPECT_EQ(q.size(), 0u);
    q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.step();
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace sim
} // namespace rog
