/**
 * @file
 * Differential fuzz of the heap event core against the std::map oracle.
 *
 * Drives both queues with the same random trace of schedule / cancel /
 * step operations — including equal-timestamp bursts and cancellation
 * of already-fired handles — and asserts the observable firing and drop
 * sequences are identical.  This is the verification the heap rewrite
 * leans on: the (time, insertion-seq) order of the seed std::map
 * implementation is the contract, the 4-ary heap is just a faster way
 * to produce it.
 */
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_queue_ref.hpp"

namespace {

using rog::Rng;
using rog::sim::EventId;
using rog::sim::EventQueue;
using rog::sim::MapEventId;
using rog::sim::MapEventQueue;

/**
 * One log shared by both queues under test.  Events append tagged
 * strings ("F:<id>" on fire, "D:<id>" on drop); after the trace the two
 * logs must match element for element.
 */
struct TraceLog
{
    std::vector<std::string> entries;

    void fire(std::uint64_t id) { entries.push_back("F:" + std::to_string(id)); }
    void drop(std::uint64_t id) { entries.push_back("D:" + std::to_string(id)); }
};

/** A live handle pair: the same logical event on both queues. */
struct Handle
{
    std::uint64_t logical_id;
    EventId heap_id;
    MapEventId map_id;
};

struct DifferentialDriver
{
    EventQueue heap;
    MapEventQueue map;
    TraceLog heap_log;
    TraceLog map_log;
    std::vector<Handle> handles; // includes stale (already fired) ones
    std::uint64_t next_logical = 0;

    void
    schedule(double time)
    {
        const std::uint64_t id = next_logical++;
        TraceLog *hl = &heap_log;
        TraceLog *ml = &map_log;
        Handle h;
        h.logical_id = id;
        h.heap_id = heap.schedule(
            time, [hl, id] { hl->fire(id); }, [hl, id] { hl->drop(id); });
        h.map_id = map.schedule(
            time, [ml, id] { ml->fire(id); }, [ml, id] { ml->drop(id); });
        handles.push_back(h);
    }

    /** Cancels the same logical event on both queues (may be stale). */
    void
    cancel(std::size_t index)
    {
        heap.cancel(handles[index].heap_id);
        map.cancel(handles[index].map_id);
    }

    void
    step()
    {
        const bool a = heap.step();
        const bool b = map.step();
        ASSERT_EQ(a, b) << "step() progress diverged";
    }

    void
    checkInvariants()
    {
        ASSERT_EQ(heap.size(), map.size());
        ASSERT_EQ(heap.empty(), map.empty());
        ASSERT_DOUBLE_EQ(heap.now(), map.now());
        if (!heap.empty()) {
            ASSERT_DOUBLE_EQ(heap.peekTime(), map.peekTime());
        }
    }
};

TEST(EventQueueFuzz, HundredThousandOpsMatchOracle)
{
    Rng rng(0xF00DF00Du);
    DifferentialDriver d;

    constexpr int kOps = 100000;
    for (int op = 0; op < kOps; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.45) {
            // Coarse quantisation forces frequent equal-timestamp
            // collisions so insertion-seq tie-breaking is exercised.
            const double dt =
                static_cast<double>(rng.uniformInt(16)) * 0.25;
            d.schedule(d.heap.now() + dt);
        } else if (roll < 0.65 && !d.handles.empty()) {
            // Cancel a random handle — live or stale.  Stale cancels
            // must be no-ops on both queues (generation check on the
            // heap, map miss on the oracle).
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(d.handles.size()));
            d.cancel(i);
        } else {
            d.step();
        }
        if (op % 64 == 0)
            d.checkInvariants();
    }

    // Drain both queues fully, then compare the complete firing logs.
    while (!d.heap.empty() || !d.map.empty())
        d.step();
    d.checkInvariants();
    ASSERT_EQ(d.heap_log.entries, d.map_log.entries);
    ASSERT_GT(d.heap_log.entries.size(), 10000u);
}

TEST(EventQueueFuzz, EqualTimestampBurstsFireInInsertionOrder)
{
    Rng rng(0xB00B1E5u);
    DifferentialDriver d;

    // Several bursts of events all at the exact same timestamp, with
    // random cancellations interleaved mid-burst.
    for (int burst = 0; burst < 50; ++burst) {
        const double t = d.heap.now() + 1.0;
        const int n = 1 + static_cast<int>(rng.uniformInt(40));
        const std::size_t first = d.handles.size();
        for (int i = 0; i < n; ++i)
            d.schedule(t);
        // Cancel roughly a quarter of this burst while pending.
        for (int i = 0; i < n / 4; ++i) {
            const std::size_t idx =
                first + static_cast<std::size_t>(rng.uniformInt(n));
            d.cancel(idx);
        }
        while (!d.heap.empty())
            d.step();
        d.checkInvariants();
    }
    ASSERT_EQ(d.heap_log.entries, d.map_log.entries);
}

TEST(EventQueueFuzz, DestructionDropsPendingInReverseKeyOrder)
{
    TraceLog heap_log;
    TraceLog map_log;
    {
        EventQueue heap;
        MapEventQueue map;
        Rng rng(0xDEADu);
        // Unsorted insertion times, several duplicates.
        for (std::uint64_t id = 0; id < 200; ++id) {
            const double t =
                static_cast<double>(rng.uniformInt(32)) * 0.5;
            TraceLog *hl = &heap_log;
            TraceLog *ml = &map_log;
            heap.schedule(t, [] {}, [hl, id] { hl->drop(id); });
            map.schedule(t, [] {}, [ml, id] { ml->drop(id); });
        }
        // Fire a prefix so now() has advanced, leaving a mixed tail.
        for (int i = 0; i < 60; ++i) {
            heap.step();
            map.step();
        }
    } // both destructors run here
    ASSERT_EQ(heap_log.entries.size(), 140u);
    ASSERT_EQ(heap_log.entries, map_log.entries);
}

TEST(EventQueueFuzz, CancelledHandleStaysDeadAfterSlotReuse)
{
    EventQueue q;
    int fired = 0;
    int dropped = 0;
    const EventId a = q.schedule(1.0, [&] { ++fired; },
                                 [&] { ++dropped; });
    q.cancel(a);
    EXPECT_EQ(dropped, 1);
    // The arena slot freed by `a` is recycled by the next schedule.
    const EventId b = q.schedule(2.0, [&] { ++fired; });
    // Cancelling the stale handle again must not kill `b`.
    q.cancel(a);
    q.cancel(a);
    EXPECT_EQ(dropped, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    (void)b;
}

} // namespace
