/**
 * @file
 * Unit tests for the Simulation facade (scheduling helpers, horizons).
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace rog {
namespace sim {
namespace {

TEST(SimulationTest, AfterSchedulesRelativeToNow)
{
    Simulation sim;
    std::vector<double> fired;
    sim.after(2.0, [&] {
        fired.push_back(sim.now());
        sim.after(3.0, [&] { fired.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(fired, (std::vector<double>{2.0, 5.0}));
}

TEST(SimulationTest, AtSchedulesAbsolute)
{
    Simulation sim;
    double fired_at = -1.0;
    sim.at(7.5, [&] { fired_at = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulationTest, NegativeDelayDies)
{
    Simulation sim;
    EXPECT_DEATH(sim.after(-1.0, [] {}), "negative");
}

TEST(SimulationTest, RunUntilStopsAtHorizon)
{
    Simulation sim;
    int fired = 0;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        sim.at(t, [&] { ++fired; });
    sim.runUntil(2.5);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    // Remaining events still fire on a later run().
    sim.run();
    EXPECT_EQ(fired, 4);
}

TEST(SimulationTest, RunUntilIncludesBoundary)
{
    Simulation sim;
    bool fired = false;
    sim.at(3.0, [&] { fired = true; });
    sim.runUntil(3.0);
    EXPECT_TRUE(fired);
}

TEST(SimulationTest, CancelViaFacade)
{
    Simulation sim;
    bool fired = false;
    const EventId id = sim.after(1.0, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulationTest, EmptyRunLeavesTimeAtZero)
{
    Simulation sim;
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

} // namespace
} // namespace sim
} // namespace rog
