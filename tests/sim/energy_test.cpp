/**
 * @file
 * Unit tests for the energy meter, including the paper's Table III
 * power model.
 */
#include <gtest/gtest.h>

#include "sim/energy.hpp"

namespace rog {
namespace sim {
namespace {

TEST(EnergyTest, DefaultPowerMatchesTableIII)
{
    const PowerModel m;
    EXPECT_DOUBLE_EQ(m.watts(DeviceState::Compute), 13.35);
    EXPECT_DOUBLE_EQ(m.watts(DeviceState::Communicate), 4.25);
    EXPECT_DOUBLE_EQ(m.watts(DeviceState::Stall), 4.04);
}

TEST(EnergyTest, StallIsAboutThirtyPercentOfCompute)
{
    // Sec. II-C: a stalling robot consumes almost one third of the
    // computing power (leakage keeps the chips warm).
    const PowerModel m;
    const double ratio =
        m.watts(DeviceState::Stall) / m.watts(DeviceState::Compute);
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 0.35);
}

TEST(EnergyTest, StateNames)
{
    EXPECT_EQ(deviceStateName(DeviceState::Compute), "compute");
    EXPECT_EQ(deviceStateName(DeviceState::Communicate), "communicate");
    EXPECT_EQ(deviceStateName(DeviceState::Stall), "stall");
}

TEST(EnergyTest, IntegratesSingleState)
{
    Simulation sim;
    EnergyMeter meter(sim, PowerModel{});
    sim.after(10.0, [] {});
    sim.run();
    // 10 s of Compute at 13.35 W.
    EXPECT_NEAR(meter.totalJoules(), 133.5, 1e-9);
    EXPECT_NEAR(meter.secondsIn(DeviceState::Compute), 10.0, 1e-12);
}

TEST(EnergyTest, IntegratesStateTimeline)
{
    Simulation sim;
    EnergyMeter meter(sim, PowerModel{});
    sim.after(2.0,
              [&] { meter.setState(DeviceState::Communicate); });
    sim.after(5.0, [&] { meter.setState(DeviceState::Stall); });
    sim.after(9.0, [&] { meter.setState(DeviceState::Compute); });
    sim.after(10.0, [] {});
    sim.run();
    EXPECT_NEAR(meter.secondsIn(DeviceState::Compute), 3.0, 1e-12);
    EXPECT_NEAR(meter.secondsIn(DeviceState::Communicate), 3.0, 1e-12);
    EXPECT_NEAR(meter.secondsIn(DeviceState::Stall), 4.0, 1e-12);
    const double expected =
        3.0 * 13.35 + 3.0 * 4.25 + 4.0 * 4.04;
    EXPECT_NEAR(meter.totalJoules(), expected, 1e-9);
    EXPECT_NEAR(meter.joulesIn(DeviceState::Stall), 4.0 * 4.04, 1e-9);
}

TEST(EnergyTest, RepeatedQueriesAreStable)
{
    Simulation sim;
    EnergyMeter meter(sim, PowerModel{});
    sim.after(4.0, [] {});
    sim.run();
    const double a = meter.totalJoules();
    const double b = meter.totalJoules();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(EnergyTest, StateScopeRestoresPreviousState)
{
    Simulation sim;
    EnergyMeter meter(sim, PowerModel{});
    EXPECT_EQ(meter.state(), DeviceState::Compute);
    {
        StateScope scope(meter, DeviceState::Stall);
        EXPECT_EQ(meter.state(), DeviceState::Stall);
        {
            StateScope inner(meter, DeviceState::Communicate);
            EXPECT_EQ(meter.state(), DeviceState::Communicate);
        }
        EXPECT_EQ(meter.state(), DeviceState::Stall);
    }
    EXPECT_EQ(meter.state(), DeviceState::Compute);
}

TEST(EnergyTest, CustomPowerModel)
{
    Simulation sim;
    PowerModel m;
    m.compute_w = 1.0;
    m.communicate_w = 2.0;
    m.stall_w = 3.0;
    EnergyMeter meter(sim, m);
    sim.after(1.0, [&] { meter.setState(DeviceState::Stall); });
    sim.after(2.0, [] {});
    sim.run();
    EXPECT_NEAR(meter.totalJoules(), 1.0 * 1.0 + 1.0 * 3.0, 1e-12);
}

} // namespace
} // namespace sim
} // namespace rog
