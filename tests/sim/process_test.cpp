/**
 * @file
 * Unit tests for coroutine simulation processes: delays, conditions,
 * and frame cleanup on early teardown.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/process.hpp"

namespace rog {
namespace sim {
namespace {

Process
delayer(Simulation &sim, std::vector<double> &log, double step, int count)
{
    for (int i = 0; i < count; ++i) {
        co_await delay(sim, step);
        log.push_back(sim.now());
    }
}

TEST(ProcessTest, DelaysAdvanceVirtualTime)
{
    Simulation sim;
    std::vector<double> log;
    delayer(sim, log, 1.5, 3);
    sim.run();
    EXPECT_EQ(log, (std::vector<double>{1.5, 3.0, 4.5}));
}

TEST(ProcessTest, TwoProcessesInterleave)
{
    Simulation sim;
    std::vector<double> a, b;
    delayer(sim, a, 2.0, 2);
    delayer(sim, b, 3.0, 2);
    sim.run();
    EXPECT_EQ(a, (std::vector<double>{2.0, 4.0}));
    EXPECT_EQ(b, (std::vector<double>{3.0, 6.0}));
    EXPECT_DOUBLE_EQ(sim.now(), 6.0);
}

Process
waiter(Simulation &sim, Condition &cond, int &wakes)
{
    co_await cond.wait();
    ++wakes;
    (void)sim;
}

TEST(ProcessTest, NotifyAllWakesEveryWaiter)
{
    Simulation sim;
    Condition cond(sim);
    int wakes = 0;
    waiter(sim, cond, wakes);
    waiter(sim, cond, wakes);
    waiter(sim, cond, wakes);
    EXPECT_EQ(cond.waiters(), 3u);
    cond.notifyAll();
    sim.run();
    EXPECT_EQ(wakes, 3);
    EXPECT_EQ(cond.waiters(), 0u);
}

Process
predicateWaiter(Simulation &sim, Condition &cond, const int &value,
                int target, std::vector<double> &log)
{
    while (value < target)
        co_await cond.wait();
    log.push_back(sim.now());
}

Process
incrementer(Simulation &sim, Condition &cond, int &value, int times)
{
    for (int i = 0; i < times; ++i) {
        co_await delay(sim, 1.0);
        ++value;
        cond.notifyAll();
    }
}

TEST(ProcessTest, PredicateLoopWaitsForCondition)
{
    Simulation sim;
    Condition cond(sim);
    int value = 0;
    std::vector<double> log;
    predicateWaiter(sim, cond, value, 3, log);
    incrementer(sim, cond, value, 5);
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(log[0], 3.0);
}

/** RAII counter proving frames are destroyed on early teardown. */
struct FrameTracker
{
    explicit FrameTracker(int &alive_) : alive(alive_) { ++alive; }
    ~FrameTracker() { --alive; }
    int &alive;
};

Process
sleeper(Simulation &sim, int &alive)
{
    FrameTracker tracker(alive);
    co_await delay(sim, 1000.0);
}

TEST(ProcessTest, SuspendedFrameDestroyedWithSimulation)
{
    int alive = 0;
    {
        Simulation sim;
        sleeper(sim, alive);
        EXPECT_EQ(alive, 1);
        // Never run: the pending resume event's drop handler must
        // destroy the frame (and run FrameTracker's destructor).
    }
    EXPECT_EQ(alive, 0);
}

Process
condSleeper(Simulation &sim, Condition &cond, int &alive)
{
    FrameTracker tracker(alive);
    co_await cond.wait();
    (void)sim;
}

TEST(ProcessTest, WaitingFrameDestroyedWithCondition)
{
    int alive = 0;
    Simulation sim;
    {
        Condition cond(sim);
        condSleeper(sim, cond, alive);
        EXPECT_EQ(alive, 1);
    }
    EXPECT_EQ(alive, 0);
}

TEST(ProcessTest, CompletedFrameSelfDestroys)
{
    int alive = 0;
    Simulation sim;
    sleeper(sim, alive);
    // Run to completion: frame must free itself without teardown help.
    sim.run();
    EXPECT_EQ(alive, 0);
}

TEST(ProcessTest, ZeroDelayStillYields)
{
    Simulation sim;
    std::vector<int> order;
    // A zero-delay awaiting process resumes via the queue, so code
    // scheduled before it at the same timestamp runs first.
    sim.after(0.0, [&] { order.push_back(1); });
    [](Simulation &s, std::vector<int> &ord) -> Process {
        co_await delay(s, 0.0);
        ord.push_back(2);
    }(sim, order);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
} // namespace sim
} // namespace rog
