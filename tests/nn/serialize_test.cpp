/**
 * @file
 * Unit tests for model checkpointing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "nn/serialize.hpp"

namespace rog {
namespace nn {
namespace {

Model
makeModelA(std::uint64_t seed)
{
    Rng rng(seed);
    ClassifierConfig cfg;
    cfg.input_dim = 5;
    cfg.hidden = {7};
    cfg.classes = 3;
    return makeClassifier(cfg, rng);
}

TEST(SerializeTest, RoundTripPreservesWeights)
{
    Model a = makeModelA(1);
    Model b = makeModelA(2); // different init.
    std::stringstream ss;
    saveModel(ss, a);
    loadModel(ss, b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, RoundTripPreservesPredictions)
{
    Model a = makeModelA(3);
    Model b = makeModelA(4);
    std::stringstream ss;
    saveModel(ss, a);
    loadModel(ss, b);
    Rng rng(5);
    tensor::Tensor x(4, 5);
    x.randomNormal(rng, 1.0f);
    const tensor::Tensor out_a = a.forward(x);
    const tensor::Tensor &out_b = b.forward(x);
    for (std::size_t i = 0; i < out_a.size(); ++i)
        EXPECT_EQ(out_a[i], out_b[i]);
}

TEST(SerializeTest, BadMagicThrows)
{
    Model m = makeModelA(6);
    std::stringstream ss("NOPE....");
    EXPECT_THROW(loadModel(ss, m), std::runtime_error);
}

TEST(SerializeTest, TruncatedPayloadThrows)
{
    Model a = makeModelA(7);
    std::stringstream ss;
    saveModel(ss, a);
    std::string data = ss.str();
    data.resize(data.size() / 2);
    std::stringstream cut(data);
    EXPECT_THROW(loadModel(cut, a), std::runtime_error);
}

TEST(SerializeTest, ArchitectureMismatchThrows)
{
    Model a = makeModelA(8);
    Rng rng(9);
    ClassifierConfig other;
    other.input_dim = 5;
    other.hidden = {9}; // different hidden width.
    other.classes = 3;
    Model b = makeClassifier(other, rng);
    std::stringstream ss;
    saveModel(ss, a);
    EXPECT_THROW(loadModel(ss, b), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip)
{
    const std::string path = "/tmp/rog_serialize_test.bin";
    Model a = makeModelA(10);
    Model b = makeModelA(11);
    saveModelFile(path, a);
    loadModelFile(path, b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    EXPECT_EQ(pa[0]->value[0], pb[0]->value[0]);
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows)
{
    Model m = makeModelA(12);
    EXPECT_THROW(loadModelFile("/nonexistent/model.bin", m),
                 std::runtime_error);
}

} // namespace
} // namespace nn
} // namespace rog
