/**
 * @file
 * Unit tests for model checkpointing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "nn/serialize.hpp"

namespace rog {
namespace nn {
namespace {

Model
makeModelA(std::uint64_t seed)
{
    Rng rng(seed);
    ClassifierConfig cfg;
    cfg.input_dim = 5;
    cfg.hidden = {7};
    cfg.classes = 3;
    return makeClassifier(cfg, rng);
}

TEST(SerializeTest, RoundTripPreservesWeights)
{
    Model a = makeModelA(1);
    Model b = makeModelA(2); // different init.
    std::stringstream ss;
    saveModel(ss, a);
    loadModel(ss, b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, RoundTripPreservesPredictions)
{
    Model a = makeModelA(3);
    Model b = makeModelA(4);
    std::stringstream ss;
    saveModel(ss, a);
    loadModel(ss, b);
    Rng rng(5);
    tensor::Tensor x(4, 5);
    x.randomNormal(rng, 1.0f);
    const tensor::Tensor out_a = a.forward(x);
    const tensor::Tensor &out_b = b.forward(x);
    for (std::size_t i = 0; i < out_a.size(); ++i)
        EXPECT_EQ(out_a[i], out_b[i]);
}

TEST(SerializeTest, BadMagicThrows)
{
    Model m = makeModelA(6);
    std::stringstream ss("NOPE....");
    EXPECT_THROW(loadModel(ss, m), std::runtime_error);
}

TEST(SerializeTest, TruncatedPayloadThrows)
{
    Model a = makeModelA(7);
    std::stringstream ss;
    saveModel(ss, a);
    std::string data = ss.str();
    data.resize(data.size() / 2);
    std::stringstream cut(data);
    EXPECT_THROW(loadModel(cut, a), std::runtime_error);
}

TEST(SerializeTest, ArchitectureMismatchThrows)
{
    Model a = makeModelA(8);
    Rng rng(9);
    ClassifierConfig other;
    other.input_dim = 5;
    other.hidden = {9}; // different hidden width.
    other.classes = 3;
    Model b = makeClassifier(other, rng);
    std::stringstream ss;
    saveModel(ss, a);
    EXPECT_THROW(loadModel(ss, b), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip)
{
    const std::string path = "/tmp/rog_serialize_test.bin";
    Model a = makeModelA(10);
    Model b = makeModelA(11);
    saveModelFile(path, a);
    loadModelFile(path, b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    EXPECT_EQ(pa[0]->value[0], pb[0]->value[0]);
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows)
{
    Model m = makeModelA(12);
    EXPECT_THROW(loadModelFile("/nonexistent/model.bin", m),
                 std::runtime_error);
}

std::string
savedBytes(std::uint64_t seed)
{
    Model m = makeModelA(seed);
    std::stringstream ss;
    saveModel(ss, m);
    return ss.str();
}

void
appendU32(std::string &s, std::uint32_t v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

TEST(SerializeTest, SavedBytesAreDeterministic)
{
    EXPECT_EQ(savedBytes(13), savedBytes(13));
}

TEST(SerializeTest, TruncationAtEveryByteThrows)
{
    const std::string data = savedBytes(14);
    Model m = makeModelA(14);
    for (std::size_t n = 0; n < data.size(); ++n) {
        std::stringstream cut(data.substr(0, n));
        EXPECT_THROW(loadModel(cut, m), std::runtime_error)
            << "prefix of " << n << " bytes was accepted";
    }
}

TEST(SerializeTest, BitFlipInEveryByteThrows)
{
    // Wherever a flip lands — magic, version, count, a name length or
    // its characters, a shape, a float payload, or the trailer itself
    // — the load must reject. Structural fields fail their own
    // checks; pure payload damage is what the CRC trailer exists for.
    const std::string data = savedBytes(15);
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::string bad = data;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        Model m = makeModelA(15);
        std::stringstream ss(bad);
        EXPECT_THROW(loadModel(ss, m), std::runtime_error)
            << "flip at byte " << i << " was accepted";
    }
}

TEST(SerializeTest, LegacyV1LoadsWithoutTrailer)
{
    // A v1 checkpoint is the v2 body with version 1 and no trailer.
    Model a = makeModelA(16);
    std::stringstream ss;
    saveModel(ss, a);
    std::string v1 = ss.str();
    v1.resize(v1.size() - 4); // drop the CRC trailer.
    v1[4] = 1;                // version field follows the magic.
    Model b = makeModelA(17);
    std::stringstream legacy(v1);
    loadModel(legacy, b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, LegacyV1CannotDetectPayloadDamage)
{
    // Documents what v2 buys: the same payload flip that v1 swallows
    // silently is rejected once the trailer is present.
    std::string v1 = savedBytes(18);
    v1.resize(v1.size() - 4);
    v1[4] = 1;
    v1[v1.size() - 1] ^= 0x40; // last float payload byte.
    Model m = makeModelA(19);
    std::stringstream ss(v1);
    EXPECT_NO_THROW(loadModel(ss, m));
}

TEST(SerializeTest, UnsupportedVersionThrows)
{
    std::string bad = savedBytes(20);
    bad[4] = 3;
    Model m = makeModelA(20);
    std::stringstream ss(bad);
    EXPECT_THROW(loadModel(ss, m), std::runtime_error);
}

TEST(SerializeTest, ImplausibleNameLengthThrows)
{
    std::string bad("ROGM");
    appendU32(bad, 2);    // version.
    appendU32(bad, 1);    // parameter count.
    appendU32(bad, 5000); // name length beyond the 4096 cap.
    bad.append(5000, 'x');
    Model m = makeModelA(21);
    std::stringstream ss(bad);
    EXPECT_THROW(loadModel(ss, m), std::runtime_error);
}

TEST(SerializeTest, ParameterCountMismatchThrows)
{
    Model a = makeModelA(22);
    Rng rng(23);
    ClassifierConfig deeper;
    deeper.input_dim = 5;
    deeper.hidden = {7, 7}; // one extra layer -> more parameters.
    deeper.classes = 3;
    Model b = makeClassifier(deeper, rng);
    std::stringstream ss;
    saveModel(ss, a);
    EXPECT_THROW(loadModel(ss, b), std::runtime_error);
}

TEST(SerializeTest, ConcatenatedCheckpointsLoadBackToBack)
{
    // The engine's capture_final_model concatenates one checkpoint
    // per worker into a single stream; each load must consume exactly
    // its own bytes, trailer included.
    Model a = makeModelA(24);
    Model b = makeModelA(25);
    std::stringstream ss;
    saveModel(ss, a);
    saveModel(ss, b);
    Model ra = makeModelA(26);
    Model rb = makeModelA(27);
    loadModel(ss, ra);
    loadModel(ss, rb);
    auto pb = b.parameters();
    auto prb = rb.parameters();
    for (std::size_t i = 0; i < pb.size(); ++i)
        for (std::size_t j = 0; j < pb[i]->value.size(); ++j)
            EXPECT_EQ(pb[i]->value[j], prb[i]->value[j]);
}

} // namespace
} // namespace nn
} // namespace rog
