/**
 * @file
 * Layer tests, including numerical gradient checks that validate every
 * analytic backward pass against finite differences.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"

namespace rog {
namespace nn {
namespace {

/** Scalar loss of a model output: sum of squares (easy derivative). */
float
sumSquares(const Tensor &out)
{
    float s = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i)
        s += out[i] * out[i];
    return 0.5f * s;
}

Tensor
sumSquaresGrad(const Tensor &out)
{
    Tensor g(out.rows(), out.cols());
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] = out[i];
    return g;
}

/**
 * Check d(sumSquares(model(x)))/d(param) numerically for a sample of
 * parameter coordinates.
 */
void
gradCheck(Model &model, const Tensor &x, float tol = 2e-2f)
{
    model.zeroGrad();
    const Tensor &out = model.forward(x);
    model.backward(sumSquaresGrad(out));

    Rng pick(12345);
    for (Parameter *p : model.parameters()) {
        // Sample up to 12 coordinates per parameter.
        for (int k = 0; k < 12; ++k) {
            const std::size_t i = pick.uniformInt(p->value.size());
            const float eps = 1e-3f;
            const float orig = p->value[i];
            p->value[i] = orig + eps;
            const float up = sumSquares(model.forward(x));
            p->value[i] = orig - eps;
            const float down = sumSquares(model.forward(x));
            p->value[i] = orig;
            const float numeric = (up - down) / (2.0f * eps);
            const float analytic = p->grad[i];
            const float scale =
                std::max({std::fabs(numeric), std::fabs(analytic), 1.0f});
            EXPECT_NEAR(numeric / scale, analytic / scale, tol)
                << p->name << "[" << i << "]";
        }
    }
}

TEST(LayersTest, LinearForwardKnownValues)
{
    Rng rng(1);
    Linear lin("t", 2, 2, rng);
    auto params = lin.parameters();
    // W = [[1, 2], [3, 4]], b = [10, 20].
    params[0]->value[0] = 1;
    params[0]->value[1] = 2;
    params[0]->value[2] = 3;
    params[0]->value[3] = 4;
    params[1]->value[0] = 10;
    params[1]->value[1] = 20;

    Tensor x(1, 2);
    x[0] = 1.0f;
    x[1] = 1.0f;
    Tensor out;
    lin.forward(x, out);
    EXPECT_FLOAT_EQ(out[0], 14.0f); // 1+3+10
    EXPECT_FLOAT_EQ(out[1], 26.0f); // 2+4+20
}

TEST(LayersTest, LinearParameterNamesAndShapes)
{
    Rng rng(2);
    Linear lin("fc", 5, 7, rng);
    auto params = lin.parameters();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0]->name, "fc.weight");
    EXPECT_EQ(params[1]->name, "fc.bias");
    EXPECT_EQ(params[0]->value.rows(), 5u);
    EXPECT_EQ(params[0]->value.cols(), 7u);
    EXPECT_EQ(params[1]->value.rows(), 1u);
}

TEST(LayersTest, LinearGradCheck)
{
    Rng rng(3);
    Model m;
    m.add(std::make_unique<Linear>("l", 4, 3, rng));
    Tensor x(5, 4);
    x.randomNormal(rng, 1.0f);
    gradCheck(m, x);
}

TEST(LayersTest, ReluGradCheck)
{
    Rng rng(4);
    Model m;
    m.add(std::make_unique<Linear>("l", 4, 6, rng));
    m.add(std::make_unique<Relu>());
    Tensor x(3, 4);
    x.randomNormal(rng, 1.0f);
    gradCheck(m, x);
}

TEST(LayersTest, TanhGradCheck)
{
    Rng rng(5);
    Model m;
    m.add(std::make_unique<Linear>("l", 4, 6, rng));
    m.add(std::make_unique<Tanh>());
    m.add(std::make_unique<Linear>("l2", 6, 2, rng));
    Tensor x(3, 4);
    x.randomNormal(rng, 1.0f);
    gradCheck(m, x);
}

TEST(LayersTest, PositionalEncodingGradCheck)
{
    Rng rng(6);
    Model m;
    m.add(std::make_unique<PositionalEncoding>(3));
    m.add(std::make_unique<Linear>("l", 3 * 7, 2, rng));
    Tensor x(4, 3);
    x.randomNormal(rng, 0.5f);
    gradCheck(m, x);
}

TEST(LayersTest, PositionalEncodingDims)
{
    PositionalEncoding enc(4);
    EXPECT_EQ(enc.outputDim(3), 3u * 9u);
    Tensor x(2, 3);
    Tensor out;
    enc.forward(x, out);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 27u);
}

TEST(LayersTest, PositionalEncodingValues)
{
    PositionalEncoding enc(1);
    Tensor x(1, 1);
    x[0] = 0.5f;
    Tensor out;
    enc.forward(x, out);
    ASSERT_EQ(out.cols(), 3u);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_NEAR(out[1], std::sin(0.5f), 1e-6f);
    EXPECT_NEAR(out[2], std::cos(0.5f), 1e-6f);
}

TEST(LayersTest, DeepMlpGradCheck)
{
    Rng rng(7);
    ClassifierConfig cfg;
    cfg.input_dim = 6;
    cfg.hidden = {8, 8};
    cfg.classes = 4;
    Model m = makeClassifier(cfg, rng);
    Tensor x(5, 6);
    x.randomNormal(rng, 1.0f);
    gradCheck(m, x);
}

/** Cross-entropy gradient check against finite differences. */
TEST(LayersTest, CrossEntropyGradCheck)
{
    Rng rng(8);
    Tensor logits(3, 5);
    logits.randomNormal(rng, 1.0f);
    std::vector<std::uint32_t> labels = {1, 4, 2};

    auto res = softmaxCrossEntropy(logits, labels);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Tensor up = logits, down = logits;
        up[i] += eps;
        down[i] -= eps;
        const float numeric = (softmaxCrossEntropy(up, labels).loss -
                               softmaxCrossEntropy(down, labels).loss) /
                              (2.0f * eps);
        // res.grad is d(mean loss)/d(logit).
        EXPECT_NEAR(numeric, res.grad[i] * 3.0f / 3.0f, 2e-2f) << i;
    }
}

} // namespace
} // namespace nn
} // namespace rog
