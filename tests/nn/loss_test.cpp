/**
 * @file
 * Unit tests for loss functions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/loss.hpp"

namespace rog {
namespace nn {
namespace {

TEST(LossTest, CrossEntropyUniformLogits)
{
    // All-zero logits over k classes: loss = log(k), accuracy chance.
    Tensor logits(4, 5);
    std::vector<std::uint32_t> labels = {0, 1, 2, 3};
    auto res = softmaxCrossEntropy(logits, labels);
    EXPECT_NEAR(res.loss, std::log(5.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyPerfectPrediction)
{
    Tensor logits(2, 3);
    logits.at(0, 1) = 50.0f;
    logits.at(1, 2) = 50.0f;
    std::vector<std::uint32_t> labels = {1, 2};
    auto res = softmaxCrossEntropy(logits, labels);
    EXPECT_NEAR(res.loss, 0.0f, 1e-4f);
    EXPECT_FLOAT_EQ(res.accuracy, 1.0f);
}

TEST(LossTest, CrossEntropyAccuracyCountsTopOne)
{
    Tensor logits(2, 2);
    logits.at(0, 0) = 1.0f; // predicts 0, label 0: correct.
    logits.at(1, 0) = 1.0f; // predicts 0, label 1: wrong.
    std::vector<std::uint32_t> labels = {0, 1};
    auto res = softmaxCrossEntropy(logits, labels);
    EXPECT_FLOAT_EQ(res.accuracy, 0.5f);
}

TEST(LossTest, CrossEntropyGradRowsSumToZero)
{
    Rng rng(9);
    Tensor logits(6, 4);
    logits.randomNormal(rng, 2.0f);
    std::vector<std::uint32_t> labels = {0, 1, 2, 3, 0, 1};
    auto res = softmaxCrossEntropy(logits, labels);
    for (std::size_t r = 0; r < 6; ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < 4; ++c)
            sum += res.grad.at(r, c);
        EXPECT_NEAR(sum, 0.0f, 1e-6f);
    }
}

TEST(LossTest, CrossEntropyLabelOutOfRangeDies)
{
    Tensor logits(1, 3);
    std::vector<std::uint32_t> labels = {7};
    EXPECT_DEATH(softmaxCrossEntropy(logits, labels), "label");
}

TEST(LossTest, MseKnownValue)
{
    Tensor pred(1, 2);
    pred[0] = 1.0f;
    pred[1] = 3.0f;
    Tensor target(1, 2);
    target[0] = 0.0f;
    target[1] = 1.0f;
    auto res = meanSquaredError(pred, target);
    // ((1)^2 + (2)^2) / 2 = 2.5.
    EXPECT_NEAR(res.loss, 2.5f, 1e-6f);
    // grad = 2 * (pred - target) / n.
    EXPECT_NEAR(res.grad[0], 1.0f, 1e-6f);
    EXPECT_NEAR(res.grad[1], 2.0f, 1e-6f);
}

TEST(LossTest, MseZeroAtPerfectFit)
{
    Tensor pred(2, 2, 3.0f);
    Tensor target(2, 2, 3.0f);
    auto res = meanSquaredError(pred, target);
    EXPECT_FLOAT_EQ(res.loss, 0.0f);
    for (std::size_t i = 0; i < res.grad.size(); ++i)
        EXPECT_FLOAT_EQ(res.grad[i], 0.0f);
}

TEST(LossTest, MseShapeMismatchDies)
{
    Tensor a(2, 2), b(2, 3);
    EXPECT_DEATH(meanSquaredError(a, b), "shape");
}

} // namespace
} // namespace nn
} // namespace rog
