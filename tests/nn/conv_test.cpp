/**
 * @file
 * Unit tests for Conv2d and the miniature ConvMLP, including numerical
 * gradient checks of the im2col forward/backward pair.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace rog {
namespace nn {
namespace {

TEST(ConvTest, OutputShape)
{
    Rng rng(1);
    Conv2d conv("c", 3, 8, 8, 5, 3, rng);
    EXPECT_EQ(conv.inputDim(), 3u * 64);
    EXPECT_EQ(conv.outputDim(0), 5u * 64);
    Tensor x(2, 3 * 64);
    Tensor out;
    conv.forward(x, out);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 5u * 64);
}

TEST(ConvTest, ParameterShapes)
{
    Rng rng(2);
    Conv2d conv("c", 4, 6, 6, 7, 3, rng);
    auto params = conv.parameters();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0]->value.rows(), 4u * 9);
    EXPECT_EQ(params[0]->value.cols(), 7u);
    EXPECT_EQ(params[1]->value.rows(), 1u);
    EXPECT_EQ(params[1]->value.cols(), 7u);
}

TEST(ConvTest, IdentityKernelCopiesInput)
{
    // A 1-channel 3x3 kernel with only the center weight set to 1
    // reproduces the input exactly (same padding, stride 1).
    Rng rng(3);
    Conv2d conv("c", 1, 4, 4, 1, 3, rng);
    auto params = conv.parameters();
    params[0]->value.zero();
    params[0]->value.at(4, 0) = 1.0f; // kernel center (ky=0, kx=0).
    params[1]->value.zero();

    Tensor x(1, 16);
    for (std::size_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i) * 0.25f;
    Tensor out;
    conv.forward(x, out);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(out[i], x[i], 1e-6f) << i;
}

TEST(ConvTest, ShiftKernelRespectsPaddingZeros)
{
    // Kernel that reads the pixel to the left: output column 0 must be
    // zero (padding), other columns shift.
    Rng rng(4);
    Conv2d conv("c", 1, 3, 3, 1, 3, rng);
    auto params = conv.parameters();
    params[0]->value.zero();
    params[0]->value.at(3, 0) = 1.0f; // (ky=0, kx=-1).
    params[1]->value.zero();

    Tensor x(1, 9, 1.0f);
    Tensor out;
    conv.forward(x, out);
    // Column 0 of every row looks at padding.
    EXPECT_NEAR(out[0], 0.0f, 1e-6f);
    EXPECT_NEAR(out[3], 0.0f, 1e-6f);
    EXPECT_NEAR(out[6], 0.0f, 1e-6f);
    EXPECT_NEAR(out[1], 1.0f, 1e-6f);
}

TEST(ConvTest, GradientCheck)
{
    Rng rng(5);
    Model m;
    m.add(std::make_unique<Conv2d>("c", 2, 4, 4, 3, 3, rng));
    Tensor x(2, 2 * 16);
    x.randomNormal(rng, 1.0f);

    m.zeroGrad();
    const Tensor &out = m.forward(x);
    Tensor dloss(out.rows(), out.cols());
    for (std::size_t i = 0; i < dloss.size(); ++i)
        dloss[i] = out[i];
    m.backward(dloss);

    auto loss_of = [&]() {
        const Tensor &o = m.forward(x);
        float s = 0.0f;
        for (std::size_t i = 0; i < o.size(); ++i)
            s += o[i] * o[i];
        return 0.5f * s;
    };

    Rng pick(99);
    for (Parameter *p : m.parameters()) {
        for (int k = 0; k < 10; ++k) {
            const std::size_t i = pick.uniformInt(p->value.size());
            const float eps = 1e-2f;
            const float orig = p->value[i];
            p->value[i] = orig + eps;
            const float up = loss_of();
            p->value[i] = orig - eps;
            const float down = loss_of();
            p->value[i] = orig;
            const float numeric = (up - down) / (2.0f * eps);
            const float analytic = p->grad[i];
            const float scale = std::max(
                {std::fabs(numeric), std::fabs(analytic), 1.0f});
            EXPECT_NEAR(numeric / scale, analytic / scale, 3e-2f)
                << p->name << "[" << i << "]";
        }
    }
}

TEST(ConvTest, InputGradientCheck)
{
    Rng rng(6);
    Conv2d conv("c", 1, 3, 3, 2, 3, rng);
    Tensor x(1, 9);
    x.randomNormal(rng, 1.0f);

    Tensor out;
    conv.forward(x, out);
    Tensor dout(out.rows(), out.cols(), 1.0f);
    Tensor din;
    conv.backward(dout, din);

    for (std::size_t i = 0; i < 9; ++i) {
        const float eps = 1e-2f;
        Tensor up_x = x, down_x = x;
        up_x[i] += eps;
        down_x[i] -= eps;
        Tensor up_out, down_out;
        conv.forward(up_x, up_out);
        float up = 0.0f;
        for (std::size_t j = 0; j < up_out.size(); ++j)
            up += up_out[j];
        conv.forward(down_x, down_out);
        float down = 0.0f;
        for (std::size_t j = 0; j < down_out.size(); ++j)
            down += down_out[j];
        // Restore the forward cache for consistency.
        conv.forward(x, out);
        EXPECT_NEAR((up - down) / (2.0f * eps), din[i], 5e-2f) << i;
    }
}

TEST(ConvTest, EvenKernelDies)
{
    Rng rng(7);
    EXPECT_DEATH(Conv2d("c", 1, 4, 4, 1, 2, rng), "odd");
}

TEST(ConvMlpTest, BuildsAndClassifies)
{
    Rng rng(8);
    ConvMlpConfig cfg;
    cfg.channels = 2;
    cfg.height = 6;
    cfg.width = 6;
    cfg.conv_channels = 4;
    cfg.mlp_hidden = {16};
    cfg.classes = 3;
    Model m = makeConvMlp(cfg, rng);
    Tensor x(4, 2 * 36);
    x.randomNormal(rng, 1.0f);
    const Tensor &out = m.forward(x);
    EXPECT_EQ(out.cols(), 3u);
    EXPECT_GT(m.rowCount(), 2u * 9); // conv rows are exposed to ROG.
}

TEST(ConvMlpTest, LearnsToyImageTask)
{
    // Two classes: bright top half vs bright bottom half.
    Rng rng(9);
    ConvMlpConfig cfg;
    cfg.channels = 1;
    cfg.height = 6;
    cfg.width = 6;
    cfg.conv_channels = 4;
    cfg.conv_layers = 1;
    cfg.mlp_hidden = {16};
    cfg.classes = 2;
    Model m = makeConvMlp(cfg, rng);
    SgdMomentum opt(m, {0.05f, 0.9f});

    Tensor x(20, 36);
    std::vector<std::uint32_t> y(20);
    for (std::size_t i = 0; i < 20; ++i) {
        const bool top = i % 2 == 0;
        for (std::size_t p = 0; p < 36; ++p) {
            const bool in_top = p < 18;
            x.at(i, p) = (top == in_top ? 1.0f : 0.0f) +
                         static_cast<float>(rng.gaussian(0.0, 0.1));
        }
        y[i] = top ? 1 : 0;
    }
    for (int step = 0; step < 80; ++step) {
        m.zeroGrad();
        auto res = softmaxCrossEntropy(m.forward(x), y);
        m.backward(res.grad);
        for (std::size_t r = 0; r < opt.rowCount(); ++r) {
            auto g = opt.rowGrad(r);
            opt.applyRow(r, {g.data(), g.size()});
        }
    }
    auto final_res = softmaxCrossEntropy(m.forward(x), y);
    EXPECT_GT(final_res.accuracy, 0.9f);
}

} // namespace
} // namespace nn
} // namespace rog
