/**
 * @file
 * Unit tests for the Model container and factories.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace rog {
namespace nn {
namespace {

TEST(ModelTest, ClassifierShapeAndCounts)
{
    Rng rng(1);
    ClassifierConfig cfg;
    cfg.input_dim = 10;
    cfg.hidden = {16, 8};
    cfg.classes = 4;
    Model m = makeClassifier(cfg, rng);
    // weights: 10x16 + 16x8 + 8x4; biases: 16 + 8 + 4.
    EXPECT_EQ(m.parameterCount(),
              10u * 16 + 16u * 8 + 8u * 4 + 16 + 8 + 4);
    // rows: 10 + 16 + 8 weight rows + 3 bias rows.
    EXPECT_EQ(m.rowCount(), 10u + 16 + 8 + 3);
    Tensor x(2, 10);
    const Tensor &out = m.forward(x);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 4u);
}

TEST(ModelTest, ImplicitMapShape)
{
    Rng rng(2);
    ImplicitMapConfig cfg;
    cfg.input_dim = 3;
    cfg.encoding_octaves = 2;
    cfg.hidden = {8};
    cfg.output_dim = 1;
    Model m = makeImplicitMap(cfg, rng);
    Tensor x(5, 3);
    const Tensor &out = m.forward(x);
    EXPECT_EQ(out.rows(), 5u);
    EXPECT_EQ(out.cols(), 1u);
}

TEST(ModelTest, SameSeedSameInitialization)
{
    ClassifierConfig cfg;
    cfg.input_dim = 6;
    cfg.hidden = {8};
    cfg.classes = 3;
    Rng rng1(42), rng2(42);
    Model a = makeClassifier(cfg, rng1);
    Model b = makeClassifier(cfg, rng2);
    auto pa = a.parameters();
    auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(ModelTest, CopyParametersFrom)
{
    ClassifierConfig cfg;
    cfg.input_dim = 6;
    cfg.hidden = {8};
    cfg.classes = 3;
    Rng rng1(1), rng2(2);
    Model a = makeClassifier(cfg, rng1);
    Model b = makeClassifier(cfg, rng2);
    b.copyParametersFrom(a);
    auto pa = a.parameters();
    auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(ModelTest, ZeroGradClearsAccumulators)
{
    Rng rng(3);
    ClassifierConfig cfg;
    cfg.input_dim = 4;
    cfg.hidden = {6};
    cfg.classes = 2;
    Model m = makeClassifier(cfg, rng);
    Tensor x(3, 4);
    x.randomNormal(rng, 1.0f);
    std::vector<std::uint32_t> y = {0, 1, 0};
    auto res = softmaxCrossEntropy(m.forward(x), y);
    m.backward(res.grad);
    bool any_nonzero = false;
    for (Parameter *p : m.parameters())
        for (std::size_t i = 0; i < p->grad.size(); ++i)
            if (p->grad[i] != 0.0f)
                any_nonzero = true;
    EXPECT_TRUE(any_nonzero);
    m.zeroGrad();
    for (Parameter *p : m.parameters())
        for (std::size_t i = 0; i < p->grad.size(); ++i)
            EXPECT_EQ(p->grad[i], 0.0f);
}

TEST(ModelTest, TrainingReducesLossOnToyTask)
{
    // Two well-separated classes in 2D must be learnable.
    Rng rng(4);
    ClassifierConfig cfg;
    cfg.input_dim = 2;
    cfg.hidden = {16};
    cfg.classes = 2;
    Model m = makeClassifier(cfg, rng);
    SgdMomentum opt(m, {0.1f, 0.9f});

    Tensor x(40, 2);
    std::vector<std::uint32_t> y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        const bool pos = i % 2 == 0;
        x.at(i, 0) = (pos ? 2.0f : -2.0f) +
                     static_cast<float>(rng.gaussian(0.0, 0.3));
        x.at(i, 1) = (pos ? -2.0f : 2.0f) +
                     static_cast<float>(rng.gaussian(0.0, 0.3));
        y[i] = pos ? 1 : 0;
    }

    float first_loss = 0.0f, last_loss = 0.0f;
    for (int step = 0; step < 60; ++step) {
        m.zeroGrad();
        auto res = softmaxCrossEntropy(m.forward(x), y);
        if (step == 0)
            first_loss = res.loss;
        last_loss = res.loss;
        m.backward(res.grad);
        for (std::size_t r = 0; r < opt.rowCount(); ++r) {
            auto g = opt.rowGrad(r);
            opt.applyRow(r, {g.data(), g.size()});
        }
    }
    EXPECT_LT(last_loss, 0.3f * first_loss);
    auto final_res = softmaxCrossEntropy(m.forward(x), y);
    EXPECT_GT(final_res.accuracy, 0.95f);
}

TEST(ModelTest, DescribeMentionsLayersAndCounts)
{
    Rng rng(5);
    ClassifierConfig cfg;
    cfg.input_dim = 4;
    cfg.hidden = {6};
    cfg.classes = 2;
    Model m = makeClassifier(cfg, rng);
    const std::string d = m.describe();
    EXPECT_NE(d.find("Linear"), std::string::npos);
    EXPECT_NE(d.find("Relu"), std::string::npos);
    EXPECT_NE(d.find("rows"), std::string::npos);
}

} // namespace
} // namespace nn
} // namespace rog
