/**
 * @file
 * Unit tests for the per-row SGD-momentum optimizer.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/optimizer.hpp"

namespace rog {
namespace nn {
namespace {

Model
tinyModel(Rng &rng)
{
    ClassifierConfig cfg;
    cfg.input_dim = 3;
    cfg.hidden = {4};
    cfg.classes = 2;
    return makeClassifier(cfg, rng);
}

TEST(OptimizerTest, RowCountMatchesModel)
{
    Rng rng(1);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {0.1f, 0.0f});
    EXPECT_EQ(opt.rowCount(), m.rowCount());
}

TEST(OptimizerTest, PlainSgdStep)
{
    Rng rng(2);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {0.5f, 0.0f});
    auto w = opt.rowValues(0);
    const float before = w[0];
    std::vector<float> g(opt.rowWidth(0), 2.0f);
    opt.applyRow(0, g);
    EXPECT_FLOAT_EQ(opt.rowValues(0)[0], before - 0.5f * 2.0f);
}

TEST(OptimizerTest, MomentumAccumulates)
{
    Rng rng(3);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {1.0f, 0.5f});
    const float before = opt.rowValues(0)[0];
    std::vector<float> g(opt.rowWidth(0), 1.0f);
    opt.applyRow(0, g); // v=1, w -= 1.
    opt.applyRow(0, g); // v=1.5, w -= 1.5.
    EXPECT_FLOAT_EQ(opt.rowValues(0)[0], before - 1.0f - 1.5f);
}

TEST(OptimizerTest, MomentumIsPerRow)
{
    Rng rng(4);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {1.0f, 0.9f});
    std::vector<float> g0(opt.rowWidth(0), 1.0f);
    const float before1 = opt.rowValues(1)[0];
    // Updating row 0 must not build momentum on row 1.
    opt.applyRow(0, g0);
    opt.applyRow(0, g0);
    std::vector<float> g1(opt.rowWidth(1), 1.0f);
    opt.applyRow(1, g1);
    EXPECT_FLOAT_EQ(opt.rowValues(1)[0], before1 - 1.0f);
}

TEST(OptimizerTest, ApplyRowRangeTouchesOnlyRange)
{
    Rng rng(5);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {1.0f, 0.0f});
    ASSERT_GE(opt.rowWidth(0), 3u);
    auto w = opt.rowValues(0);
    const float before0 = w[0];
    const float before1 = w[1];
    std::vector<float> g = {10.0f};
    opt.applyRowRange(0, 1, g);
    EXPECT_FLOAT_EQ(opt.rowValues(0)[0], before0);
    EXPECT_FLOAT_EQ(opt.rowValues(0)[1], before1 - 10.0f);
}

TEST(OptimizerTest, ApplyRowRangeMomentumMatchesFullRow)
{
    // Applying a row in two half-ranges must equal one full apply.
    Rng rng(6);
    Model ma = tinyModel(rng);
    Rng rng2(6);
    Model mb = tinyModel(rng2);
    SgdMomentum oa(ma, {0.3f, 0.7f});
    SgdMomentum ob(mb, {0.3f, 0.7f});

    const std::size_t width = oa.rowWidth(0);
    std::vector<float> g(width);
    for (std::size_t i = 0; i < width; ++i)
        g[i] = static_cast<float>(i) - 1.5f;

    for (int step = 0; step < 3; ++step) {
        oa.applyRow(0, g);
        const std::size_t half = width / 2;
        ob.applyRowRange(0, 0, {g.data(), half});
        ob.applyRowRange(0, half, {g.data() + half, width - half});
    }
    for (std::size_t i = 0; i < width; ++i)
        EXPECT_FLOAT_EQ(oa.rowValues(0)[i], ob.rowValues(0)[i]);
}

TEST(OptimizerTest, WidthMismatchDies)
{
    Rng rng(7);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {0.1f, 0.0f});
    std::vector<float> g(opt.rowWidth(0) + 3, 0.0f);
    EXPECT_DEATH(opt.applyRow(0, g), "bounds");
}

TEST(OptimizerTest, BadHyperparametersDie)
{
    Rng rng(8);
    Model m = tinyModel(rng);
    EXPECT_DEATH(SgdMomentum(m, {-0.1f, 0.0f}), "learning rate");
    EXPECT_DEATH(SgdMomentum(m, {0.1f, 1.5f}), "momentum");
}

TEST(OptimizerTest, SetLearningRate)
{
    Rng rng(9);
    Model m = tinyModel(rng);
    SgdMomentum opt(m, {0.1f, 0.0f});
    opt.setLearningRate(1.0f);
    const float before = opt.rowValues(0)[0];
    std::vector<float> g(opt.rowWidth(0), 1.0f);
    opt.applyRow(0, g);
    EXPECT_FLOAT_EQ(opt.rowValues(0)[0], before - 1.0f);
}

} // namespace
} // namespace nn
} // namespace rog
