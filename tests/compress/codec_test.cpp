/**
 * @file
 * Unit tests for gradient codecs, including the error-compensation
 * ("lossless in the long run") property of one-bit compression.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "compress/codec.hpp"

namespace rog {
namespace compress {
namespace {

TEST(CodecTest, IdentityIsExact)
{
    IdentityCodec codec;
    std::vector<float> in = {1.5f, -2.5f, 0.0f};
    std::vector<float> out(3);
    codec.transcodeRow(0, in, out);
    EXPECT_EQ(out, in);
    EXPECT_DOUBLE_EQ(codec.payloadBytes(3), 12.0);
}

TEST(CodecTest, OneBitOutputIsSignTimesScale)
{
    OneBitCodec codec;
    std::vector<float> in = {1.0f, -3.0f, 2.0f, -2.0f};
    std::vector<float> out(4);
    codec.transcodeRow(0, in, out);
    const float scale = (1.0f + 3.0f + 2.0f + 2.0f) / 4.0f;
    EXPECT_FLOAT_EQ(out[0], scale);
    EXPECT_FLOAT_EQ(out[1], -scale);
    EXPECT_FLOAT_EQ(out[2], scale);
    EXPECT_FLOAT_EQ(out[3], -scale);
}

TEST(CodecTest, OneBitPayloadIsBitsPlusScale)
{
    OneBitCodec codec;
    EXPECT_DOUBLE_EQ(codec.payloadBytes(8), 1.0 + 4.0);
    EXPECT_DOUBLE_EQ(codec.payloadBytes(100), 13.0 + 4.0);
    // Compression ratio approaches 1/32 of float32 for wide rows.
    EXPECT_LT(codec.payloadBytes(512) / (4.0 * 512), 0.04);
}

TEST(CodecTest, OneBitErrorFeedbackIsLossless)
{
    // Cumulative decoded output tracks cumulative input: the residual
    // carries everything that was quantized away (error compensation
    // per [22]).
    OneBitCodec codec;
    Rng rng(3);
    const std::size_t width = 64;
    std::vector<double> cum_in(width, 0.0), cum_out(width, 0.0);
    std::vector<float> in(width), out(width);
    for (int step = 0; step < 400; ++step) {
        for (std::size_t i = 0; i < width; ++i) {
            in[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
            cum_in[i] += in[i];
        }
        codec.transcodeRow(7, in, out);
        for (std::size_t i = 0; i < width; ++i)
            cum_out[i] += out[i];
    }
    // The residual is bounded by ~2*scale, so cumulative error stays
    // bounded while cumulative input grows — relative error is small.
    const double bound = 3.0 * codec.residualMeanAbs(7) + 0.5;
    for (std::size_t i = 0; i < width; ++i)
        EXPECT_NEAR(cum_out[i], cum_in[i], bound) << i;
}

TEST(CodecTest, OneBitRowsAreIndependent)
{
    OneBitCodec codec;
    std::vector<float> a = {10.0f, 10.0f};
    std::vector<float> b = {-1.0f, 1.0f};
    std::vector<float> out_a(2), out_b(2);
    codec.transcodeRow(0, a, out_a);
    codec.transcodeRow(1, b, out_b);
    // Row 1's scale must not be polluted by row 0's residual.
    EXPECT_FLOAT_EQ(std::fabs(out_b[0]), 1.0f);
}

TEST(CodecTest, OneBitResidualShrinksReconstructionError)
{
    // Feeding the same constant vector repeatedly: with error
    // feedback, the mean decoded value converges to the input.
    OneBitCodec codec;
    const std::size_t width = 16;
    std::vector<float> in(width);
    for (std::size_t i = 0; i < width; ++i)
        in[i] = 0.01f * static_cast<float>(i + 1);
    std::vector<float> out(width);
    std::vector<double> cum(width, 0.0);
    const int steps = 500;
    for (int s = 0; s < steps; ++s) {
        codec.transcodeRow(0, in, out);
        for (std::size_t i = 0; i < width; ++i)
            cum[i] += out[i];
    }
    for (std::size_t i = 0; i < width; ++i)
        EXPECT_NEAR(cum[i] / steps, in[i], 0.02) << i;
}

TEST(CodecTest, RowWidthChangeDies)
{
    OneBitCodec codec;
    std::vector<float> a(4, 1.0f), out4(4);
    codec.transcodeRow(0, a, out4);
    std::vector<float> b(8, 1.0f), out8(8);
    EXPECT_DEATH(codec.transcodeRow(0, b, out8), "width");
}

TEST(CodecTest, ChunkedTranscodeSharesBlockResidual)
{
    // Transcoding a block in two chunks must use one residual buffer:
    // the second chunk of the same block sees its own error state, and
    // the chunks quantize with independent scales.
    OneBitCodec codec;
    std::vector<float> in = {1.0f, 1.0f, 10.0f, 10.0f};
    std::vector<float> out(4);
    codec.transcode(3, 4, 0, {in.data(), 2}, {out.data(), 2});
    codec.transcode(3, 4, 2, {in.data() + 2, 2}, {out.data() + 2, 2});
    // Per-chunk scales: 1.0 for the first chunk, 10.0 for the second.
    EXPECT_FLOAT_EQ(out[0], 1.0f);
    EXPECT_FLOAT_EQ(out[2], 10.0f);
    // Error feedback: residuals are exact, so a zero follow-up input
    // decodes to (previous residual)'s quantization, still bounded.
    std::vector<float> zero(4, 0.0f), out2(4);
    codec.transcode(3, 4, 0, zero, out2);
    EXPECT_LE(std::fabs(out2[0]), 1.0f);
}

TEST(CodecTest, ChunkBeyondBlockDies)
{
    OneBitCodec codec;
    std::vector<float> in(4, 1.0f), out(4);
    EXPECT_DEATH(codec.transcode(0, 4, 2, in, out), "block");
}

TEST(CodecTest, ChunkedErrorFeedbackIsLosslessPerBlock)
{
    // Property: streaming a block in uneven chunks preserves the
    // cumulative-conservation property of error compensation.
    OneBitCodec codec;
    Rng rng(11);
    const std::size_t width = 48;
    std::vector<double> cum_in(width, 0.0), cum_out(width, 0.0);
    std::vector<float> in(width), out(width);
    for (int step = 0; step < 300; ++step) {
        for (std::size_t i = 0; i < width; ++i) {
            in[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
            cum_in[i] += in[i];
        }
        // Split at a varying point.
        const std::size_t cut = 1 + step % (width - 1);
        codec.transcode(0, width, 0, {in.data(), cut},
                        {out.data(), cut});
        codec.transcode(0, width, cut, {in.data() + cut, width - cut},
                        {out.data() + cut, width - cut});
        for (std::size_t i = 0; i < width; ++i)
            cum_out[i] += out[i];
    }
    const double bound = 3.0 * codec.residualMeanAbs(0) + 0.5;
    for (std::size_t i = 0; i < width; ++i)
        EXPECT_NEAR(cum_out[i], cum_in[i], bound) << i;
}

TEST(CodecTest, FactoryByName)
{
    EXPECT_EQ(makeCodec("identity")->name(), "identity");
    EXPECT_EQ(makeCodec("onebit")->name(), "onebit");
    EXPECT_EQ(makeCodec("topk")->name(), "topk");
    EXPECT_THROW(makeCodec("zstd"), std::runtime_error);
}

TEST(TopKCodecTest, KeepsLargestMagnitudes)
{
    TopKCodec codec(0.25); // keep 2 of 8.
    std::vector<float> in = {0.1f, -5.0f, 0.2f, 0.0f,
                             3.0f, -0.3f, 0.05f, 0.4f};
    std::vector<float> out(8);
    codec.transcodeRow(0, in, out);
    EXPECT_FLOAT_EQ(out[1], -5.0f);
    EXPECT_FLOAT_EQ(out[4], 3.0f);
    for (std::size_t i : {0u, 2u, 3u, 5u, 6u, 7u})
        EXPECT_FLOAT_EQ(out[i], 0.0f) << i;
}

TEST(TopKCodecTest, ResidualDeliversSuppressedMassLater)
{
    // An element suppressed in round 1 accumulates and eventually
    // outranks the rest (error compensation keeps it lossless).
    TopKCodec codec(0.5); // keep 1 of 2.
    std::vector<float> out(2);
    std::vector<float> in = {1.0f, 0.6f};
    codec.transcodeRow(0, in, out);
    EXPECT_FLOAT_EQ(out[0], 1.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    codec.transcodeRow(0, in, out); // residual[1] = 1.2 beats 1.0.
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 1.2f);
}

TEST(TopKCodecTest, CumulativeConservation)
{
    TopKCodec codec(0.2);
    Rng rng(21);
    const std::size_t width = 40;
    std::vector<double> cum_in(width, 0.0), cum_out(width, 0.0);
    std::vector<float> in(width), out(width);
    for (int step = 0; step < 300; ++step) {
        for (std::size_t i = 0; i < width; ++i) {
            in[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
            cum_in[i] += in[i];
        }
        codec.transcodeRow(3, in, out);
        for (std::size_t i = 0; i < width; ++i)
            cum_out[i] += out[i];
    }
    // Transmission is exact for what goes out: cumulative difference
    // equals whatever still sits in the residual (bounded).
    for (std::size_t i = 0; i < width; ++i)
        EXPECT_NEAR(cum_out[i], cum_in[i], 2.0) << i;
}

TEST(TopKCodecTest, PayloadScalesWithKeepFraction)
{
    TopKCodec dense(1.0);
    TopKCodec sparse(0.1);
    EXPECT_DOUBLE_EQ(dense.payloadBytes(100), 800.0);
    EXPECT_DOUBLE_EQ(sparse.payloadBytes(100), 80.0);
    // At 10% keep, top-k costs more wire than one-bit for this width.
    OneBitCodec onebit;
    EXPECT_GT(sparse.payloadBytes(100), onebit.payloadBytes(100));
}

TEST(TopKCodecTest, BadFractionDies)
{
    EXPECT_DEATH(TopKCodec bad(0.0), "fraction");
    EXPECT_DEATH(TopKCodec bad2(1.5), "fraction");
}

TEST(CodecTest, CompressionRatioMatchesPaperBallpark)
{
    // The paper reports ~3.2% wire volume after one-bit compression.
    // For a row of 500 elements: (63 + 4) / 2000 = 3.35%.
    OneBitCodec codec;
    const double ratio = codec.payloadBytes(500) / (4.0 * 500);
    EXPECT_GT(ratio, 0.028);
    EXPECT_LT(ratio, 0.04);
}

} // namespace
} // namespace compress
} // namespace rog
