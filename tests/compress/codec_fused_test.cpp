/**
 * @file
 * Fused one-bit transcode kernel vs the seed's multi-pass reference.
 *
 * The contract is bitwise: the fused sweep must produce exactly the
 * out / residual / packed bytes of the reference pipeline, and the
 * OneBitCodec built on it must produce timelines independent of the
 * worker thread count (the determinism contract every engine test
 * leans on). Thread sweeps use locally constructed pools — the global
 * pool's size is fixed at first use.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "compress/packbits.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rog {
namespace compress {
namespace {

/** Bitwise float-vector equality (EXPECT_EQ would compare by value
 *  and treat -0.0f == 0.0f; the contract here is representation). */
void
expectBitwiseEq(const std::vector<float> &got,
                const std::vector<float> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        std::uint32_t g, w;
        std::memcpy(&g, &got[i], 4);
        std::memcpy(&w, &want[i], 4);
        ASSERT_EQ(g, w) << what << " diverges at " << i;
    }
}

struct KernelRun
{
    std::vector<float> residual;
    std::vector<float> out;
    std::vector<std::uint8_t> packed;
    OneBitChunkStats stats;
};

KernelRun
runKernel(bool fused, const std::vector<float> &residual0,
          const std::vector<float> &grad)
{
    KernelRun r;
    r.residual = residual0;
    r.out.assign(grad.size(), 0.0f);
    r.packed.assign(packedBytes(grad.size()), 0);
    r.stats = fused ? onebitTranscodeFused(r.residual, grad, r.out,
                                           r.packed)
                    : onebitTranscodeRef(r.residual, grad, r.out,
                                         r.packed);
    return r;
}

/** Fused == ref, bit for bit, across widths covering the 64-element
 *  word boundary and the ISSUE's 4096-wide row. */
TEST(CodecFusedTest, FusedMatchesRefBitwise)
{
    for (std::size_t n :
         {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{127},
          std::size_t{128}, std::size_t{129}, std::size_t{1000},
          std::size_t{4096}}) {
        Rng rng(n * 17 + 3);
        std::vector<float> grad(n), residual0(n);
        for (auto &x : grad)
            x = static_cast<float>(rng.gaussian());
        for (auto &x : residual0)
            x = static_cast<float>(rng.gaussian() * 0.25);

        const KernelRun fused = runKernel(true, residual0, grad);
        const KernelRun ref = runKernel(false, residual0, grad);

        expectBitwiseEq(fused.out, ref.out, "out");
        expectBitwiseEq(fused.residual, ref.residual, "residual");
        ASSERT_EQ(fused.packed, ref.packed) << "packed, n=" << n;
        std::uint32_t fs, rs;
        std::memcpy(&fs, &fused.stats.scale, 4);
        std::memcpy(&rs, &ref.stats.scale, 4);
        ASSERT_EQ(fs, rs) << "scale, n=" << n;
    }
}

/** sum(|grad|) from the fused sweep equals a plain sequential sum. */
TEST(CodecFusedTest, ImportanceMagnitudeMatchesSeparatePass)
{
    Rng rng(55);
    const std::size_t n = 777;
    std::vector<float> grad(n), residual0(n, 0.0f);
    for (auto &x : grad)
        x = static_cast<float>(rng.gaussian());
    const KernelRun fused = runKernel(true, residual0, grad);
    float want = 0.0f;
    for (float g : grad)
        want += std::fabs(g);
    EXPECT_EQ(fused.stats.sum_abs_grad, want);
}

/** Error compensation carries across calls identically on both
 *  kernels: iterate several rounds, compare full state each time. */
TEST(CodecFusedTest, ResidualCarriesIdenticallyAcrossRounds)
{
    const std::size_t n = 200;
    Rng rng(99);
    std::vector<float> res_fused(n, 0.0f), res_ref(n, 0.0f);
    for (int round = 0; round < 10; ++round) {
        std::vector<float> grad(n);
        for (auto &x : grad)
            x = static_cast<float>(rng.gaussian());
        std::vector<float> out_f(n), out_r(n);
        std::vector<std::uint8_t> pk_f(packedBytes(n)),
            pk_r(packedBytes(n));
        onebitTranscodeFused(res_fused, grad, out_f, pk_f);
        onebitTranscodeRef(res_ref, grad, out_r, pk_r);
        expectBitwiseEq(out_f, out_r, "out");
        expectBitwiseEq(res_fused, res_ref, "residual");
        ASSERT_EQ(pk_f, pk_r) << "round " << round;
    }
}

/**
 * 1000-schedule fuzz: random widths, offsets splitting a block into
 * chunks, and gradients. The OneBitCodec (fused path, pool scratch)
 * must reconstruct exactly what a scratch-built reference codec run
 * produces.
 */
TEST(CodecFusedTest, CodecMatchesRefKernelUnderFuzz)
{
    Rng rng(20240805);
    for (int round = 0; round < 1000; ++round) {
        const std::size_t width = 1 + rng.next() % 300;
        std::vector<float> grad(width), out(width);
        for (auto &x : grad)
            x = static_cast<float>(rng.gaussian());

        OneBitCodec codec;
        // Split the block at a random chunk boundary (or not at all).
        const std::size_t cut = rng.next() % (width + 1);
        if (cut > 0)
            codec.transcode(7, width, 0,
                            {grad.data(), cut}, {out.data(), cut});
        if (cut < width)
            codec.transcode(7, width, cut,
                            {grad.data() + cut, width - cut},
                            {out.data() + cut, width - cut});

        // Reference: the ref kernel over the same chunking.
        std::vector<float> res(width, 0.0f), want(width);
        std::vector<std::uint8_t> pk(packedBytes(width));
        if (cut > 0)
            onebitTranscodeRef({res.data(), cut}, {grad.data(), cut},
                               {want.data(), cut},
                               {pk.data(), packedBytes(cut)});
        if (cut < width)
            onebitTranscodeRef({res.data() + cut, width - cut},
                               {grad.data() + cut, width - cut},
                               {want.data() + cut, width - cut},
                               {pk.data(), packedBytes(width - cut)});
        expectBitwiseEq(out, want, "codec out");
    }
}

/**
 * Thread-count independence: transcoding many prepared blocks inside
 * parallelFor regions over pools of 1/2/4/8 threads yields bitwise
 * identical outputs and residuals — the property EngineConfig's
 * determinism contract reduces to at this layer.
 */
TEST(CodecFusedTest, ParallelTranscodeIndependentOfThreads)
{
    const std::size_t blocks = 24;
    const std::size_t width = 130;
    Rng rng(4242);
    std::vector<std::vector<float>> grads(blocks,
                                          std::vector<float>(width));
    for (auto &g : grads)
        for (auto &x : g)
            x = static_cast<float>(rng.gaussian());

    auto runWith = [&](std::size_t threads) {
        parallel::ThreadPool pool(threads);
        OneBitCodec codec;
        for (std::size_t b = 0; b < blocks; ++b)
            codec.prepare(b, width);
        std::vector<std::vector<float>> outs(
            blocks, std::vector<float>(width, 0.0f));
        for (int round = 0; round < 3; ++round) {
            parallel::parallelFor(
                0, blocks, 1,
                [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t b = lo; b < hi; ++b)
                        codec.transcodeRow(b, grads[b], outs[b]);
                },
                pool);
        }
        std::vector<float> flat;
        for (std::size_t b = 0; b < blocks; ++b) {
            flat.insert(flat.end(), outs[b].begin(), outs[b].end());
            EXPECT_GT(codec.lastTranscodeMagnitude(b), 0.0);
        }
        return flat;
    };

    const auto base = runWith(1);
    for (std::size_t t : {std::size_t{2}, std::size_t{4}, std::size_t{8}})
        expectBitwiseEq(runWith(t), base, "thread sweep");
}

TEST(CodecFusedTest, KernelAssertsOnBadScratch)
{
    std::vector<float> res(10, 0.0f), grad(10, 1.0f), out(10);
    std::vector<std::uint8_t> packed(1); // needs 2.
    EXPECT_DEATH(onebitTranscodeFused(res, grad, out, packed),
                 "scratch");
}

} // namespace
} // namespace compress
} // namespace rog
