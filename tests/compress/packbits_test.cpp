/**
 * @file
 * Unit tests for sign-bit packing.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "compress/packbits.hpp"

namespace rog {
namespace compress {
namespace {

TEST(PackbitsTest, PackedBytesRoundsUp)
{
    EXPECT_EQ(packedBytes(0), 0u);
    EXPECT_EQ(packedBytes(1), 1u);
    EXPECT_EQ(packedBytes(8), 1u);
    EXPECT_EQ(packedBytes(9), 2u);
    EXPECT_EQ(packedBytes(64), 8u);
}

TEST(PackbitsTest, KnownPattern)
{
    std::vector<float> v = {1.0f, -1.0f, 2.0f, -0.5f,
                            0.0f, -3.0f, 4.0f, -5.0f};
    std::vector<std::uint8_t> packed(1);
    packSigns(v, packed);
    // bits (LSB first): 1,0,1,0,1,0,1,0 -> 0b01010101 = 0x55.
    EXPECT_EQ(packed[0], 0x55);
}

TEST(PackbitsTest, ZeroCountsAsPositive)
{
    std::vector<float> v = {0.0f};
    std::vector<std::uint8_t> packed(1);
    packSigns(v, packed);
    std::vector<float> out(1);
    unpackSigns(packed, 1, out);
    EXPECT_EQ(out[0], 1.0f);
}

/** Property sweep: pack/unpack round-trips signs for many widths. */
class PackRoundtrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PackRoundtrip, SignsSurvive)
{
    const std::size_t n = GetParam();
    Rng rng(n * 7 + 1);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    std::vector<std::uint8_t> packed(packedBytes(n));
    packSigns(v, packed);
    std::vector<float> out(n);
    unpackSigns(packed, n, out);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], v[i] >= 0.0f ? 1.0f : -1.0f) << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, PackRoundtrip,
                         ::testing::Values(1, 2, 7, 8, 9, 15, 16, 17, 31,
                                           33, 64, 100, 127, 128, 1000));

TEST(PackbitsTest, SizeMismatchDies)
{
    std::vector<float> v(10);
    std::vector<std::uint8_t> packed(1); // needs 2.
    EXPECT_DEATH(packSigns(v, packed), "size");
}

} // namespace
} // namespace compress
} // namespace rog
