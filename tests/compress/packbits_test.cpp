/**
 * @file
 * Unit tests for sign-bit packing.
 */
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "compress/packbits.hpp"

namespace rog {
namespace compress {
namespace {

TEST(PackbitsTest, PackedBytesRoundsUp)
{
    EXPECT_EQ(packedBytes(0), 0u);
    EXPECT_EQ(packedBytes(1), 1u);
    EXPECT_EQ(packedBytes(8), 1u);
    EXPECT_EQ(packedBytes(9), 2u);
    EXPECT_EQ(packedBytes(64), 8u);
}

TEST(PackbitsTest, KnownPattern)
{
    std::vector<float> v = {1.0f, -1.0f, 2.0f, -0.5f,
                            0.0f, -3.0f, 4.0f, -5.0f};
    std::vector<std::uint8_t> packed(1);
    packSigns(v, packed);
    // bits (LSB first): 1,0,1,0,1,0,1,0 -> 0b01010101 = 0x55.
    EXPECT_EQ(packed[0], 0x55);
}

TEST(PackbitsTest, ZeroCountsAsPositive)
{
    std::vector<float> v = {0.0f};
    std::vector<std::uint8_t> packed(1);
    packSigns(v, packed);
    std::vector<float> out(1);
    unpackSigns(packed, 1, out);
    EXPECT_EQ(out[0], 1.0f);
}

/** Property sweep: pack/unpack round-trips signs for many widths. */
class PackRoundtrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PackRoundtrip, SignsSurvive)
{
    const std::size_t n = GetParam();
    Rng rng(n * 7 + 1);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    std::vector<std::uint8_t> packed(packedBytes(n));
    packSigns(v, packed);
    std::vector<float> out(n);
    unpackSigns(packed, n, out);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], v[i] >= 0.0f ? 1.0f : -1.0f) << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, PackRoundtrip,
                         ::testing::Values(1, 2, 7, 8, 9, 15, 16, 17, 31,
                                           33, 64, 100, 127, 128, 1000));

TEST(PackbitsTest, SizeMismatchDies)
{
    std::vector<float> v(10);
    std::vector<std::uint8_t> packed(1); // needs 2.
    EXPECT_DEATH(packSigns(v, packed), "size");
}

/**
 * The word-wide fast path vs the seed's bit-at-a-time reference,
 * bitwise, at every width from 1 through 129: that range crosses the
 * partial-byte tail, the whole-byte tail, and both sides of the
 * 64-element word boundary (63/64/65, 127/128/129).
 */
TEST(PackbitsTest, FastMatchesRefAtEveryWidth)
{
    for (std::size_t n = 1; n <= 129; ++n) {
        Rng rng(n * 131 + 7);
        std::vector<float> v(n);
        for (auto &x : v)
            x = static_cast<float>(rng.gaussian());
        std::vector<std::uint8_t> fast(packedBytes(n), 0xAA);
        std::vector<std::uint8_t> ref(packedBytes(n), 0x55);
        packSigns(v, fast);
        packSignsRef(v, ref);
        ASSERT_EQ(fast, ref) << "width " << n;

        std::vector<float> out_fast(n), out_ref(n);
        unpackSigns(fast, n, out_fast);
        unpackSignsRef(ref, n, out_ref);
        ASSERT_EQ(out_fast, out_ref) << "width " << n;
    }
}

/**
 * The sign predicate is `v >= 0.0f` in both paths, so -0.0 packs as
 * positive and NaN (every comparison false) packs as negative — the
 * fast path must not switch to signbit extraction.
 */
TEST(PackbitsTest, SpecialValuesMatchRef)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    std::vector<float> v = {-0.0f, 0.0f, nan,  -nan, inf,
                            -inf,  1.0f, -1.0f};
    // Pad across a word boundary so the 64-wide body sees them too.
    while (v.size() < 70)
        v.push_back(v[v.size() % 8]);
    std::vector<std::uint8_t> fast(packedBytes(v.size()));
    std::vector<std::uint8_t> ref(packedBytes(v.size()));
    packSigns(v, fast);
    packSignsRef(v, ref);
    EXPECT_EQ(fast, ref);
    // And the documented semantics hold: -0.0 >= 0 is true, NaN is not.
    EXPECT_TRUE(fast[0] & 0x01);  // -0.0 -> positive bit.
    EXPECT_FALSE(fast[0] & 0x04); // NaN -> negative bit.
}

TEST(PackbitsTest, RefRoundTripsToo)
{
    const std::size_t n = 100;
    Rng rng(9001);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    std::vector<std::uint8_t> packed(packedBytes(n));
    packSignsRef(v, packed);
    std::vector<float> out(n);
    unpackSignsRef(packed, n, out);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], v[i] >= 0.0f ? 1.0f : -1.0f) << i;
}

} // namespace
} // namespace compress
} // namespace rog
