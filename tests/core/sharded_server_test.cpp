/**
 * @file
 * Sharded parameter server equivalence: the ShardedServer facade must
 * be observably — and for full engine runs bit-for-bit — identical to
 * the unsharded server for every shard count. Sharding only changes
 * the storage layout (ROADMAP item 1 / DESIGN.md Sec. 17); the
 * training computation must not notice.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/row_partition.hpp"
#include "core/server_shard.hpp"
#include "core/server_state.hpp"
#include "core/version_storage.hpp"
#include "core/workloads.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace core {
namespace {

CrudaWorkloadConfig
tinyCruda(std::size_t workers)
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = workers;
    cfg.pretrain_iters = 40;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

NetworkSetup
unstableNetwork(std::size_t workers, double mean = 20e3)
{
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(mean);
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 17 + i * 1000));
    return net;
}

/**
 * Differential driver: one legacy trio (VersionStorage + ServerState
 * + MtaTimeTracker) against a ShardedServer with @p shards, fed the
 * same random operation trace; every observable value must match
 * bit-for-bit (float equality, not tolerance).
 */
void
runDifferentialTrace(std::size_t shards, std::uint32_t seed)
{
    // A real partition from a real flat model, so unit widths are the
    // uneven ones the engine sees.
    CrudaWorkloadConfig wcfg = tinyCruda(3);
    CrudaWorkload workload(wcfg);
    auto model = workload.buildReplica();
    FlatModel flat(*model);
    RowPartition partition(flat, Granularity::Row);

    const std::size_t workers = 3;
    const std::size_t units = partition.unitCount();
    ASSERT_GT(units, shards);

    VersionStorage versions(workers, units);
    ServerState server(workers, partition);
    MtaTimeTracker tracker(workers);
    ShardedServer sharded(workers, partition, shards);
    ASSERT_EQ(sharded.shardCount(), shards);

    Rng rng(seed);
    std::vector<float> grad;
    for (int op = 0; op < 4000; ++op) {
        const std::size_t w = rng.uniformInt(workers);
        const std::size_t u = rng.uniformInt(units);
        switch (rng.uniformInt(8)) {
        case 0: { // push: accumulate + version bump
            grad.resize(partition.unit(u).width);
            for (auto &g : grad)
                g = static_cast<float>(rng.uniform(-1.0, 1.0));
            server.accumulate(u, grad);
            sharded.accumulate(u, grad);
            const std::int64_t iter = versions.get(w, u) + 1;
            versions.update(w, u, iter);
            sharded.updateVersion(w, u, iter);
            server.noteUpdate(u, iter);
            sharded.noteUpdate(u, iter);
            break;
        }
        case 1: // pull: read + clear one copy
            ASSERT_EQ(server.hasPending(w, u),
                      sharded.hasPending(w, u));
            if (server.hasPending(w, u)) {
                auto a = server.pending(w, u);
                auto b = sharded.pending(w, u);
                ASSERT_EQ(a.size(), b.size());
                for (std::size_t j = 0; j < a.size(); ++j)
                    ASSERT_EQ(a[j], b[j]) << "row " << u;
                server.clearPending(w, u);
                sharded.clearPending(w, u);
            }
            break;
        case 2:
            ASSERT_DOUBLE_EQ(server.pendingMeanAbs(w, u),
                             sharded.pendingMeanAbs(w, u));
            break;
        case 3:
            ASSERT_EQ(server.lastUpdate(u), sharded.lastUpdate(u));
            ASSERT_EQ(versions.get(w, u), sharded.version(w, u));
            break;
        case 4: { // MTA report (replicated into every shard tracker)
            const double bytes = rng.uniform(1e3, 1e6);
            const double secs = rng.uniform(0.01, 2.0);
            const double mta = rng.uniform(1e3, 1e5);
            tracker.report(w, bytes, secs, mta);
            sharded.report(w, bytes, secs, mta);
            ASSERT_EQ(tracker.mtaTime(), sharded.mtaTime());
            ASSERT_EQ(tracker.estimateFor(w), sharded.estimateFor(w));
            break;
        }
        case 5:
            if (!versions.retired(w)) {
                versions.retireWorker(w);
                sharded.retireWorker(w);
            }
            break;
        case 6:
            if (versions.retired(w)) {
                const std::int64_t at = versions.maxVersionOfWorker(w);
                versions.rejoinWorker(w, at);
                sharded.rejoinWorker(w, at);
                server.clearWorker(w);
                sharded.clearWorker(w);
            }
            break;
        default:
            ASSERT_EQ(versions.retired(w), sharded.retired(w));
            ASSERT_EQ(versions.maxVersionOfWorker(w),
                      sharded.maxVersionOfWorker(w));
            break;
        }
    }

    // Full sweep at the end: every cell identical.
    for (std::size_t w = 0; w < workers; ++w) {
        for (std::size_t u = 0; u < units; ++u) {
            ASSERT_EQ(versions.get(w, u), sharded.version(w, u));
            ASSERT_EQ(server.hasPending(w, u), sharded.hasPending(w, u));
            auto a = server.pending(w, u);
            auto b = sharded.pending(w, u);
            for (std::size_t j = 0; j < a.size(); ++j)
                ASSERT_EQ(a[j], b[j]);
        }
    }
}

TEST(ShardedServerTest, TwoShardsMatchLegacyTrio)
{
    runDifferentialTrace(2, 0xA11CEu);
}

TEST(ShardedServerTest, FourShardsMatchLegacyTrio)
{
    runDifferentialTrace(4, 0xB0B0u);
}

TEST(ShardedServerTest, SingleShardMatchesLegacyTrio)
{
    runDifferentialTrace(1, 0xCAFEu);
}

TEST(ShardedServerTest, ShardCountClampsToUnitCount)
{
    CrudaWorkload workload(tinyCruda(2));
    auto model = workload.buildReplica();
    FlatModel flat(*model);
    RowPartition partition(flat, Granularity::Row);
    ShardedServer s(2, partition, 100000);
    EXPECT_EQ(s.shardCount(), partition.unitCount());
    ShardedServer s0(2, partition, 0);
    EXPECT_EQ(s0.shardCount(), 1u);
}

TEST(ShardedServerTest, ShardRangesAreContiguousAndCoverEveryUnit)
{
    CrudaWorkload workload(tinyCruda(2));
    auto model = workload.buildReplica();
    FlatModel flat(*model);
    RowPartition partition(flat, Granularity::Row);
    ShardedServer s(2, partition, 4);
    std::size_t last = 0;
    for (std::size_t u = 0; u < s.units(); ++u) {
        const std::size_t sh = s.shardOf(u);
        EXPECT_GE(sh, last) << "unit " << u;
        EXPECT_LE(sh, last + 1) << "unit " << u;
        last = sh;
    }
    EXPECT_EQ(last, s.shardCount() - 1);
}

/**
 * The acceptance bar: a full ROG engine run with a sharded server is
 * row-for-row identical to the single-shard run — same final model
 * bytes, same per-iteration records, same simulated clock.
 */
TEST(ShardedServerTest, EngineRunBitIdenticalAcrossShardCounts)
{
    RunResult base;
    {
        CrudaWorkload workload(tinyCruda(3));
        EngineConfig cfg;
        cfg.system = SystemConfig::rog(4);
        cfg.iterations = 15;
        cfg.eval_every = 5;
        cfg.capture_final_model = true;
        cfg.server_shards = 1;
        base = runDistributedTraining(workload, cfg,
                                      unstableNetwork(3));
    }
    for (std::size_t shards : {2u, 4u}) {
        CrudaWorkload workload(tinyCruda(3));
        EngineConfig cfg;
        cfg.system = SystemConfig::rog(4);
        cfg.iterations = 15;
        cfg.eval_every = 5;
        cfg.capture_final_model = true;
        cfg.server_shards = shards;
        const auto res = runDistributedTraining(workload, cfg,
                                                unstableNetwork(3));
        EXPECT_EQ(res.server_shards, shards);
        ASSERT_EQ(res.final_model_bytes, base.final_model_bytes)
            << "shards=" << shards;
        ASSERT_EQ(res.iterations.size(), base.iterations.size());
        for (std::size_t i = 0; i < res.iterations.size(); ++i) {
            EXPECT_EQ(res.iterations[i].worker,
                      base.iterations[i].worker);
            EXPECT_DOUBLE_EQ(res.iterations[i].comm_s,
                             base.iterations[i].comm_s);
            EXPECT_DOUBLE_EQ(res.iterations[i].stall_s,
                             base.iterations[i].stall_s);
            EXPECT_DOUBLE_EQ(res.iterations[i].end_time_s,
                             base.iterations[i].end_time_s);
        }
        EXPECT_DOUBLE_EQ(res.sim_seconds, base.sim_seconds);
    }
}

} // namespace
} // namespace core
} // namespace rog
