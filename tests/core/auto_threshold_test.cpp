/**
 * @file
 * Unit tests for the automatic staleness-threshold controller.
 */
#include <gtest/gtest.h>

#include "core/auto_threshold.hpp"

namespace rog {
namespace core {
namespace {

AutoThresholdConfig
smallWindow()
{
    AutoThresholdConfig cfg;
    cfg.window = 4;
    return cfg;
}

TEST(AutoThresholdTest, StartsAtInitial)
{
    AutoThresholdController c(smallWindow());
    EXPECT_EQ(c.threshold(), 4u);
    EXPECT_EQ(c.adjustments(), 0u);
}

TEST(AutoThresholdTest, WidensUnderHeavyStall)
{
    AutoThresholdController c(smallWindow());
    for (int i = 0; i < 4; ++i)
        c.observe(5.0, 10.0); // 50% stall.
    EXPECT_GT(c.threshold(), 4u);
    EXPECT_EQ(c.adjustments(), 1u);
}

TEST(AutoThresholdTest, KeepsWideningWhileStallPersists)
{
    AutoThresholdConfig cfg = smallWindow();
    AutoThresholdController c(cfg);
    for (int round = 0; round < 20; ++round)
        for (int i = 0; i < 4; ++i)
            c.observe(5.0, 10.0);
    EXPECT_EQ(c.threshold(), cfg.max_threshold);
}

TEST(AutoThresholdTest, NarrowsWhenCalm)
{
    AutoThresholdConfig cfg = smallWindow();
    cfg.initial_threshold = 10;
    AutoThresholdController c(cfg);
    for (int i = 0; i < 4; ++i)
        c.observe(0.0, 10.0);
    EXPECT_EQ(c.threshold(), 9u);
}

TEST(AutoThresholdTest, NeverLeavesBounds)
{
    AutoThresholdConfig cfg = smallWindow();
    cfg.min_threshold = 3;
    cfg.max_threshold = 12;
    cfg.initial_threshold = 3;
    AutoThresholdController c(cfg);
    for (int round = 0; round < 50; ++round)
        for (int i = 0; i < 4; ++i)
            c.observe(0.0, 1.0);
    EXPECT_EQ(c.threshold(), 3u);
    for (int round = 0; round < 50; ++round)
        for (int i = 0; i < 4; ++i)
            c.observe(1.0, 1.0);
    EXPECT_EQ(c.threshold(), 12u);
}

TEST(AutoThresholdTest, ModerateStallHolds)
{
    AutoThresholdConfig cfg = smallWindow();
    AutoThresholdController c(cfg);
    for (int round = 0; round < 10; ++round)
        for (int i = 0; i < 4; ++i)
            c.observe(0.5, 10.0); // 5%: inside the band.
    EXPECT_EQ(c.threshold(), cfg.initial_threshold);
    EXPECT_EQ(c.adjustments(), 0u);
}

TEST(AutoThresholdTest, DecisionsOnlyAtWindowBoundaries)
{
    AutoThresholdController c(smallWindow());
    c.observe(5.0, 10.0);
    c.observe(5.0, 10.0);
    c.observe(5.0, 10.0);
    EXPECT_EQ(c.threshold(), 4u); // window not full yet.
    c.observe(5.0, 10.0);
    EXPECT_GT(c.threshold(), 4u);
}

TEST(AutoThresholdTest, BadConfigDies)
{
    AutoThresholdConfig cfg;
    cfg.min_threshold = 1;
    EXPECT_DEATH(AutoThresholdController c1(cfg), "thresholds");
    AutoThresholdConfig cfg2;
    cfg2.initial_threshold = 100;
    EXPECT_DEATH(AutoThresholdController c2(cfg2), "initial");
    AutoThresholdConfig cfg3;
    cfg3.window = 0;
    EXPECT_DEATH(AutoThresholdController c3(cfg3), "window");
}

TEST(AutoThresholdTest, InvalidObservationDies)
{
    AutoThresholdController c(smallWindow());
    EXPECT_DEATH(c.observe(5.0, 3.0), "observation");
}

} // namespace
} // namespace core
} // namespace rog
