/**
 * @file
 * Empirical checks of Theorem 1 (SGD under RSP): regret stays under
 * the closed-form bound and vanishes per-iteration, across staleness
 * levels and worker counts.
 */
#include <gtest/gtest.h>

#include "core/convergence.hpp"

namespace rog {
namespace core {
namespace {

TEST(ConvergenceTest, SynchronousRegretVanishes)
{
    RegretConfig cfg;
    cfg.staleness = 0;
    cfg.iterations = 3000;
    const auto res = simulateRspRegret(cfg);
    EXPECT_TRUE(res.within_bound);
    EXPECT_LT(res.average_regret, 0.5);
    EXPECT_EQ(res.max_realized_staleness, 0u);
}

TEST(ConvergenceTest, AverageRegretDecreasesWithHorizon)
{
    RegretConfig small;
    small.staleness = 4;
    small.iterations = 500;
    RegretConfig large = small;
    large.iterations = 8000;
    const auto r_small = simulateRspRegret(small);
    const auto r_large = simulateRspRegret(large);
    EXPECT_LT(r_large.average_regret, r_small.average_regret);
}

TEST(ConvergenceTest, StalenessIsActuallyExercised)
{
    RegretConfig cfg;
    cfg.staleness = 6;
    cfg.iterations = 1000;
    const auto res = simulateRspRegret(cfg);
    EXPECT_GE(res.max_realized_staleness, 3u);
    EXPECT_LE(res.max_realized_staleness, 6u);
}

/** Property sweep: the theorem bound holds across (S, P) settings. */
struct BoundCase
{
    std::size_t staleness;
    std::size_t workers;
    std::uint64_t seed;
};

class TheoremBound : public ::testing::TestWithParam<BoundCase>
{
};

TEST_P(TheoremBound, RegretWithinBound)
{
    const auto c = GetParam();
    RegretConfig cfg;
    cfg.staleness = c.staleness;
    cfg.workers = c.workers;
    cfg.seed = c.seed;
    cfg.iterations = 2000;
    const auto res = simulateRspRegret(cfg);
    EXPECT_TRUE(res.within_bound)
        << "S=" << c.staleness << " P=" << c.workers << " regret "
        << res.cumulative_regret.back() << " bound "
        << res.theorem_bound;
    // And the regret trajectory is o(T): the last-quarter average is
    // below the first-quarter average.
    const std::size_t q = cfg.iterations / 4;
    const double first = res.cumulative_regret[q - 1] / q;
    const double last = (res.cumulative_regret.back() -
                         res.cumulative_regret[3 * q - 1]) /
                        q;
    EXPECT_LT(last, first + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremBound,
    ::testing::Values(BoundCase{0, 1, 1}, BoundCase{2, 4, 2},
                      BoundCase{4, 4, 3}, BoundCase{8, 4, 4},
                      BoundCase{20, 4, 5}, BoundCase{4, 8, 6},
                      BoundCase{4, 2, 7}));

TEST(ConvergenceTest, InvalidConfigDies)
{
    RegretConfig cfg;
    cfg.rows = 0;
    EXPECT_DEATH(simulateRspRegret(cfg), "invalid");
}

} // namespace
} // namespace core
} // namespace rog
