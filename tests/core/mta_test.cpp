/**
 * @file
 * Unit tests for the MTA solver — must reproduce the paper's Table I.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/mta.hpp"

namespace rog {
namespace core {
namespace {

/** Table I of the paper: threshold -> MTA (2 decimal places). */
struct TableIRow
{
    std::size_t threshold;
    double mta;
};

class TableI : public ::testing::TestWithParam<TableIRow>
{
};

TEST_P(TableI, MatchesPaperValue)
{
    const auto row = GetParam();
    EXPECT_NEAR(mtaFraction(row.threshold), row.mta, 0.005)
        << "threshold " << row.threshold;
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, TableI,
    ::testing::Values(TableIRow{2, 0.50}, TableIRow{3, 0.38},
                      TableIRow{4, 0.32}, TableIRow{5, 0.28},
                      TableIRow{6, 0.25}, TableIRow{7, 0.22},
                      TableIRow{8, 0.20}));

TEST(MtaTest, ThresholdOneSendsEverything)
{
    EXPECT_DOUBLE_EQ(mtaFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(mtaFraction(1), 1.0);
}

TEST(MtaTest, SolutionSatisfiesDefiningEquation)
{
    for (std::size_t s : {2u, 3u, 5u, 10u, 20u, 40u}) {
        const double p = mtaFraction(s);
        EXPECT_NEAR(std::pow(1.0 - p, static_cast<double>(s - 1)), p,
                    1e-9)
            << s;
    }
}

TEST(MtaTest, FractionDecreasesWithThreshold)
{
    double prev = 1.0;
    for (std::size_t s = 2; s <= 40; ++s) {
        const double p = mtaFraction(s);
        EXPECT_LT(p, prev) << s;
        EXPECT_GT(p, 0.0) << s;
        prev = p;
    }
}

TEST(MtaTest, UnitsRoundUpAndClamp)
{
    // threshold 2 -> 50% of 10 units = 5.
    EXPECT_EQ(mtaUnits(2, 10), 5u);
    // threshold 4 -> 0.3177 * 10 = 3.177 -> ceil 4.
    EXPECT_EQ(mtaUnits(4, 10), 4u);
    // Always at least one unit.
    EXPECT_EQ(mtaUnits(40, 1), 1u);
    // Never more than the total.
    EXPECT_EQ(mtaUnits(1, 7), 7u);
}

TEST(MtaTest, GuaranteeProperty)
{
    // If every push ships the MTA fraction of the *oldest* rows, then
    // after S-1 pushes fewer than an MTA's worth remain — so nothing
    // can exceed staleness S. Simulate the rotation.
    for (std::size_t s : {2u, 4u, 8u}) {
        const std::size_t total = 1000;
        const std::size_t mta = mtaUnits(s, total);
        std::vector<std::size_t> age(total, 0);
        for (int step = 0; step < 200; ++step) {
            // Push the `mta` oldest rows.
            std::vector<std::size_t> order(total);
            for (std::size_t i = 0; i < total; ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return age[a] > age[b];
                      });
            for (std::size_t i = 0; i < total; ++i) {
                if (i < mta)
                    age[order[i]] = 0;
                else
                    ++age[order[i]];
            }
            for (std::size_t a : age)
                EXPECT_LT(a, s) << "threshold " << s;
        }
    }
}

} // namespace
} // namespace core
} // namespace rog
