/**
 * @file
 * Bitwise determinism of the parallel fleet DES (ISSUE 10 satellite,
 * mirroring thread_pool_test's contract for tensor ops): the same
 * FleetConfig must produce byte-identical results — final replica
 * bytes, event logs, simulated clock — for every thread count driving
 * the shard lanes, and for both event-queue implementations (heap
 * core vs std::map oracle).
 */
#include <sys/stat.h>

#include <gtest/gtest.h>

#include "core/fleet.hpp"
#include "core/server_checkpoint.hpp"
#include "parallel/thread_pool.hpp"

namespace rog {
namespace core {
namespace {

FleetConfig
fleetConfig64()
{
    FleetConfig cfg;
    cfg.workers = 64;
    cfg.rows = 96;
    cfg.row_width = 24;
    cfg.shards = 4;
    cfg.iterations = 10;
    cfg.staleness_threshold = 4;
    cfg.atp = true;
    cfg.seed = 2026;
    return cfg;
}

void
expectBitIdentical(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.state_digest, b.state_digest);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.iterations_completed, b.iterations_completed);
    // Exact float comparison on purpose: the determinism contract is
    // bitwise, not approximate.
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.final_metric, b.final_metric);
}

TEST(FleetDeterminismTest, BitwiseIdenticalAcrossThreadCounts)
{
    const FleetConfig cfg = fleetConfig64();

    parallel::ThreadPool p1(1);
    const FleetResult base = runFleetSimulation(cfg, p1);
    EXPECT_EQ(base.workers, 64u);
    EXPECT_EQ(base.shards, 4u);
    EXPECT_EQ(base.iterations_completed, 64u * 10u);
    EXPECT_GT(base.events_processed, 0u);
    EXPECT_GT(base.sim_seconds, 0.0);

    for (std::size_t threads : {2u, 4u, 8u}) {
        parallel::ThreadPool pool(threads);
        const FleetResult r = runFleetSimulation(cfg, pool);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectBitIdentical(base, r);
    }
}

TEST(FleetDeterminismTest, HeapAndMapQueuesProduceIdenticalRuns)
{
    FleetConfig cfg = fleetConfig64();
    cfg.workers = 16;
    cfg.iterations = 6;

    parallel::ThreadPool pool(2);
    const FleetResult heap = runFleetSimulation(cfg, pool);
    cfg.use_map_queue = true;
    const FleetResult map = runFleetSimulation(cfg, pool);
    expectBitIdentical(heap, map);
}

TEST(FleetDeterminismTest, RepeatRunsAreReproducible)
{
    FleetConfig cfg = fleetConfig64();
    cfg.workers = 8;
    cfg.iterations = 5;

    parallel::ThreadPool pool(4);
    const FleetResult a = runFleetSimulation(cfg, pool);
    const FleetResult b = runFleetSimulation(cfg, pool);
    expectBitIdentical(a, b);
}

TEST(FleetDeterminismTest, BspLockstepConvergesTighterThanRog)
{
    FleetConfig cfg = fleetConfig64();
    cfg.workers = 8;
    cfg.iterations = 12;

    parallel::ThreadPool pool(2);
    const FleetResult rog = runFleetSimulation(cfg, pool);

    FleetConfig bsp = cfg;
    bsp.staleness_threshold = 1; // lockstep
    bsp.atp = false;             // full pushes
    const FleetResult bsp_r = runFleetSimulation(bsp, pool);

    // BSP ships every row every iteration, so per-iteration progress
    // dominates ROG's partial pushes...
    EXPECT_LT(bsp_r.final_metric, rog.final_metric);
    // ...but pays for it on the wire: strictly more bytes moved.
    EXPECT_GT(bsp_r.total_bytes, rog.total_bytes);
}

TEST(FleetDeterminismTest, WritesOneCheckpointFilePerShard)
{
    FleetConfig cfg = fleetConfig64();
    cfg.workers = 4;
    cfg.iterations = 6;
    cfg.shards = 3;
    cfg.checkpoint_every = 3;
    cfg.checkpoint_dir = testing::TempDir() + "rog_fleet_ckpt";
    ::mkdir(cfg.checkpoint_dir.c_str(), 0755);

    parallel::ThreadPool pool(2);
    const FleetResult r = runFleetSimulation(cfg, pool);
    // Worker 0 checkpoints at iterations 3 and 6: shards x 2 files.
    EXPECT_EQ(r.checkpoint_files_written, 3u * 2u);

    for (std::size_t s = 0; s < 3; ++s) {
        std::string path = cfg.checkpoint_dir + "/fleet.rogs";
        if (s != 0)
            path += ".shard" + std::to_string(s);
        const ServerCheckpoint ckpt = readServerCheckpointFile(path);
        EXPECT_EQ(ckpt.iteration, 6);
        EXPECT_EQ(ckpt.versions.versions.size(), cfg.workers);
    }
}

} // namespace
} // namespace core
} // namespace rog
