/**
 * @file
 * Unit tests of the phi-accrual membership tracker: suspicion grows
 * with silence, regular heartbeats keep a worker alive, the hard
 * detection bound catches workers that never beat, and the lifecycle
 * (alive -> suspect -> dead -> rejoining -> alive) is walked exactly
 * as documented with every transition recorded in the history.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/failure_detector.hpp"

namespace rog {
namespace core {
namespace {

FailureDetectorConfig
testConfig()
{
    FailureDetectorConfig cfg;
    cfg.heartbeat_interval_s = 1.0;
    cfg.phi_suspect = 2.0;
    cfg.phi_evict = 4.0;
    cfg.detection_bound_s = 30.0;
    cfg.min_samples = 3;
    return cfg;
}

/** Deliver @p n on-schedule beats at the configured interval. */
double
beatRegularly(MembershipTracker &t, std::size_t worker, std::size_t n,
              double start = 0.0, double interval = 1.0)
{
    double now = start;
    for (std::size_t i = 0; i < n; ++i) {
        t.observeHeartbeat(worker, now);
        now += interval;
    }
    return now - interval; // time of the last beat.
}

TEST(FailureDetectorConfig, ValidatesItsFields)
{
    EXPECT_TRUE(FailureDetectorConfig{}.validationError().empty());

    auto bad = testConfig();
    bad.heartbeat_interval_s = 0.0;
    EXPECT_FALSE(bad.validationError().empty());

    bad = testConfig();
    bad.phi_evict = bad.phi_suspect - 1.0;
    EXPECT_FALSE(bad.validationError().empty());

    bad = testConfig();
    bad.detection_bound_s = bad.heartbeat_interval_s;
    EXPECT_FALSE(bad.validationError().empty());

    bad = testConfig();
    bad.check_interval_s = -1.0;
    EXPECT_FALSE(bad.validationError().empty());

    bad = testConfig();
    bad.heartbeat_bytes = 0;
    EXPECT_FALSE(bad.validationError().empty());
}

TEST(MembershipTracker, RejectsBadConfigFatally)
{
    auto bad = testConfig();
    bad.phi_suspect = -1.0;
    EXPECT_THROW(MembershipTracker(2, bad), std::runtime_error);
}

TEST(MembershipTracker, RegularHeartbeatsStayAlive)
{
    MembershipTracker t(2, testConfig());
    const double last = beatRegularly(t, 0, 50);
    beatRegularly(t, 1, 50);
    const auto events = t.evaluate(last + 1.0);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(t.state(0), MemberState::Alive);
    EXPECT_EQ(t.state(1), MemberState::Alive);
    EXPECT_EQ(t.participantCount(), 2u);
    EXPECT_TRUE(t.history().empty());
}

TEST(MembershipTracker, PhiGrowsWithSilence)
{
    MembershipTracker t(1, testConfig());
    const double last = beatRegularly(t, 0, 10);
    const double p1 = t.phi(0, last + 1.0);
    const double p5 = t.phi(0, last + 5.0);
    const double p20 = t.phi(0, last + 20.0);
    EXPECT_LT(p1, p5);
    EXPECT_LT(p5, p20);
    EXPECT_NEAR(t.silence(0, last + 5.0), 5.0, 1e-12);
}

TEST(MembershipTracker, SilenceWalksSuspectThenDead)
{
    MembershipTracker t(1, testConfig());
    const double last = beatRegularly(t, 0, 10);

    // phi = silence / (1.0 * ln 10): suspect at ~4.6s, dead at ~9.2s.
    auto ev = t.evaluate(last + 5.0);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].from, MemberState::Alive);
    EXPECT_EQ(ev[0].to, MemberState::Suspect);
    EXPECT_GE(ev[0].phi, 2.0);
    EXPECT_EQ(t.state(0), MemberState::Suspect);
    EXPECT_EQ(t.participantCount(), 1u); // suspects still count.

    ev = t.evaluate(last + 10.0);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].from, MemberState::Suspect);
    EXPECT_EQ(ev[0].to, MemberState::Dead);
    EXPECT_EQ(t.state(0), MemberState::Dead);
    EXPECT_EQ(t.participantCount(), 0u);
    EXPECT_EQ(t.history().size(), 2u);
}

TEST(MembershipTracker, JumpStraightToDeadEmitsBothTransitions)
{
    MembershipTracker t(1, testConfig());
    beatRegularly(t, 0, 10);
    // One evaluation far past the eviction threshold: the suspect
    // step is not skipped in the record.
    const auto ev = t.evaluate(9.0 + 25.0);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].to, MemberState::Suspect);
    EXPECT_EQ(ev[1].to, MemberState::Dead);
}

TEST(MembershipTracker, HeartbeatClearsSuspicion)
{
    MembershipTracker t(1, testConfig());
    const double last = beatRegularly(t, 0, 10);
    t.evaluate(last + 5.0);
    ASSERT_EQ(t.state(0), MemberState::Suspect);
    t.observeHeartbeat(0, last + 5.5);
    EXPECT_EQ(t.state(0), MemberState::Alive);
    // And the fresh arrival resets the silence clock.
    EXPECT_TRUE(t.evaluate(last + 6.0).empty());
}

TEST(MembershipTracker, HardBoundCatchesWorkerThatNeverBeat)
{
    // No heartbeat ever arrives, so phi stays 0 (below min_samples);
    // only the hard bound can declare this worker dead.
    MembershipTracker t(1, testConfig());
    EXPECT_TRUE(t.evaluate(29.0).empty());
    const auto ev = t.evaluate(30.0);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(t.state(0), MemberState::Dead);
}

TEST(MembershipTracker, PhiUntrustedBelowMinSamples)
{
    MembershipTracker t(1, testConfig());
    t.observeHeartbeat(0, 0.0);
    t.observeHeartbeat(0, 1.0); // two samples < min_samples = 3.
    EXPECT_EQ(t.phi(0, 11.0), 0.0);
    // Ten seconds of silence would be phi ~4.3 with enough samples,
    // but below min_samples only the 30s hard bound applies.
    EXPECT_TRUE(t.evaluate(11.0).empty());
    EXPECT_EQ(t.state(0), MemberState::Alive);
}

TEST(MembershipTracker, SlowLinkEarnsLongerGrace)
{
    // A worker whose beats arrive every 4s must survive a silence
    // that would kill a 1s-interval worker.
    MembershipTracker t(2, testConfig());
    const double last_fast = beatRegularly(t, 0, 10, 0.0, 1.0);
    const double last_slow = beatRegularly(t, 1, 10, 0.0, 4.0);
    EXPECT_GT(t.phi(0, last_fast + 10.0), t.phi(1, last_slow + 10.0));
    t.evaluate(last_slow + 10.0);
    EXPECT_EQ(t.state(0), MemberState::Dead);
    EXPECT_EQ(t.state(1), MemberState::Alive);
}

TEST(MembershipTracker, RejoinLifecycleRoundTrips)
{
    MembershipTracker t(1, testConfig());
    const double last = beatRegularly(t, 0, 10);
    t.evaluate(last + 10.0);
    ASSERT_EQ(t.state(0), MemberState::Dead);

    // Dead workers do not revive on a stray late heartbeat.
    t.observeHeartbeat(0, last + 11.0);
    EXPECT_EQ(t.state(0), MemberState::Dead);

    t.markRejoining(0, last + 12.0);
    EXPECT_EQ(t.state(0), MemberState::Rejoining);
    EXPECT_EQ(t.participantCount(), 0u);

    t.markRejoined(0, last + 13.0);
    EXPECT_EQ(t.state(0), MemberState::Alive);
    EXPECT_EQ(t.participantCount(), 1u);
    // Statistics restarted: the pre-crash gaps are forgotten and the
    // silence clock starts at the rejoin time.
    EXPECT_EQ(t.phi(0, last + 14.0), 0.0);
    EXPECT_NEAR(t.silence(0, last + 14.0), 1.0, 1e-12);

    ASSERT_EQ(t.history().size(), 4u);
    EXPECT_EQ(t.history().back().to, MemberState::Alive);
}

TEST(MembershipTracker, ResetStatsClearsSuspectWithoutLifecycle)
{
    MembershipTracker t(1, testConfig());
    const double last = beatRegularly(t, 0, 10);
    t.evaluate(last + 5.0);
    ASSERT_EQ(t.state(0), MemberState::Suspect);
    t.resetStats(0, last + 6.0);
    EXPECT_EQ(t.state(0), MemberState::Alive);
    EXPECT_EQ(t.phi(0, last + 7.0), 0.0);
    EXPECT_TRUE(t.evaluate(last + 7.0).empty());
}

TEST(MembershipTracker, DeactivatedWorkerIsNeverScored)
{
    MembershipTracker t(2, testConfig());
    beatRegularly(t, 0, 10);
    beatRegularly(t, 1, 10);
    t.deactivate(1);
    EXPECT_FALSE(t.active(1));
    EXPECT_EQ(t.participantCount(), 1u);
    // Arbitrarily long silence: the finished worker is not reported.
    const auto ev = t.evaluate(1000.0);
    for (const auto &e : ev)
        EXPECT_NE(e.worker, 1u);
    EXPECT_NE(t.state(1), MemberState::Dead);
}

TEST(MembershipTracker, StateNamesAreStable)
{
    EXPECT_STREQ(memberStateName(MemberState::Alive), "alive");
    EXPECT_STREQ(memberStateName(MemberState::Suspect), "suspect");
    EXPECT_STREQ(memberStateName(MemberState::Dead), "dead");
    EXPECT_STREQ(memberStateName(MemberState::Rejoining), "rejoining");
}

} // namespace
} // namespace core
} // namespace rog
