/**
 * @file
 * Unit tests for the parameter-server state and MTA time tracker.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/server_state.hpp"
#include "nn/model.hpp"

namespace rog {
namespace core {
namespace {

struct Fixture
{
    Fixture()
        : model(makeModel()), flat(model),
          partition(flat, Granularity::Row)
    {
    }

    static nn::Model
    makeModel()
    {
        Rng rng(3);
        nn::ClassifierConfig cfg;
        cfg.input_dim = 4;
        cfg.hidden = {4};
        cfg.classes = 2;
        return nn::makeClassifier(cfg, rng);
    }

    nn::Model model;
    FlatModel flat;
    RowPartition partition;
};

TEST(ServerStateTest, AccumulateAveragesIntoEveryWorkerCopy)
{
    Fixture f;
    ServerState server(4, f.partition);
    std::vector<float> g(f.partition.unit(0).width, 8.0f);
    server.accumulate(0, g);
    for (std::size_t w = 0; w < 4; ++w) {
        EXPECT_TRUE(server.hasPending(w, 0));
        EXPECT_FLOAT_EQ(server.pending(w, 0)[0], 2.0f); // 8 / 4.
    }
    EXPECT_FALSE(server.hasPending(0, 1));
}

TEST(ServerStateTest, AccumulationAdds)
{
    Fixture f;
    ServerState server(2, f.partition);
    std::vector<float> g(f.partition.unit(0).width, 4.0f);
    server.accumulate(0, g);
    server.accumulate(0, g);
    EXPECT_FLOAT_EQ(server.pending(0, 0)[0], 4.0f); // 2 + 2.
}

TEST(ServerStateTest, ClearPendingIsPerWorker)
{
    // Sec. III-B: sending to one worker zeroes only that copy.
    Fixture f;
    ServerState server(3, f.partition);
    std::vector<float> g(f.partition.unit(2).width, 3.0f);
    server.accumulate(2, g);
    server.clearPending(1, 2);
    EXPECT_FALSE(server.hasPending(1, 2));
    EXPECT_FLOAT_EQ(server.pending(1, 2)[0], 0.0f);
    EXPECT_TRUE(server.hasPending(0, 2));
    EXPECT_FLOAT_EQ(server.pending(0, 2)[0], 1.0f);
}

TEST(ServerStateTest, PendingMeanAbs)
{
    Fixture f;
    ServerState server(1, f.partition);
    const std::size_t width = f.partition.unit(0).width;
    std::vector<float> g(width);
    for (std::size_t i = 0; i < width; ++i)
        g[i] = (i % 2 == 0) ? 2.0f : -2.0f;
    server.accumulate(0, g);
    EXPECT_NEAR(server.pendingMeanAbs(0, 0), 2.0, 1e-6);
}

TEST(ServerStateTest, LastUpdateTracksMax)
{
    Fixture f;
    ServerState server(2, f.partition);
    EXPECT_EQ(server.lastUpdate(0), 0);
    server.noteUpdate(0, 5);
    server.noteUpdate(0, 3); // older update must not regress.
    EXPECT_EQ(server.lastUpdate(0), 5);
}

TEST(ServerStateTest, WidthMismatchDies)
{
    Fixture f;
    ServerState server(2, f.partition);
    std::vector<float> bad(f.partition.unit(0).width + 1, 1.0f);
    EXPECT_DEATH(server.accumulate(0, bad), "width");
}

TEST(MtaTimeTrackerTest, UnseededIsInfinite)
{
    MtaTimeTracker tracker(3);
    EXPECT_TRUE(std::isinf(tracker.mtaTime()));
}

TEST(MtaTimeTrackerTest, RemainsInfiniteUntilAllReport)
{
    MtaTimeTracker tracker(2);
    tracker.report(0, 1000.0, 1.0, 500.0);
    EXPECT_TRUE(std::isinf(tracker.mtaTime()));
    tracker.report(1, 1000.0, 1.0, 500.0);
    EXPECT_FALSE(std::isinf(tracker.mtaTime()));
}

TEST(MtaTimeTrackerTest, TakesMaxOverWorkers)
{
    MtaTimeTracker tracker(2);
    // Worker 0: 1000 B/s, MTA 500 B -> 0.5 s.
    tracker.report(0, 1000.0, 1.0, 500.0);
    // Worker 1: 100 B/s, MTA 500 B -> 5 s (the straggler).
    tracker.report(1, 100.0, 1.0, 500.0);
    EXPECT_NEAR(tracker.mtaTime(), 5.0, 1e-9);
    EXPECT_NEAR(tracker.estimateFor(0), 0.5, 1e-9);
}

TEST(MtaTimeTrackerTest, ClampsToBounds)
{
    MtaTimeTracker tracker(1, 0.35, 0.05, 30.0);
    tracker.report(0, 1.0, 1.0, 1e9); // absurdly slow.
    EXPECT_DOUBLE_EQ(tracker.mtaTime(), 30.0);
    MtaTimeTracker fast(1, 0.35, 0.05, 30.0);
    fast.report(0, 1e9, 1.0, 1.0); // absurdly fast.
    EXPECT_DOUBLE_EQ(fast.mtaTime(), 0.05);
}

TEST(MtaTimeTrackerTest, EwmaSmoothsRate)
{
    MtaTimeTracker tracker(1, 0.5, 1e-6, 1e6);
    tracker.report(0, 100.0, 1.0, 100.0); // 100 B/s -> 1 s.
    tracker.report(0, 300.0, 1.0, 100.0); // rate ewma = 200 -> 0.5 s.
    EXPECT_NEAR(tracker.estimateFor(0), 0.5, 1e-9);
}

} // namespace
} // namespace core
} // namespace rog
