/**
 * @file
 * Integration tests for the distributed-training engine: protocol
 * invariants (staleness bounds, MTA floor, BSP lockstep), determinism,
 * bookkeeping consistency, and equivalence with plain SGD in the
 * single-worker identity-codec limit.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "core/mta.hpp"
#include "net/trace_generator.hpp"
#include "nn/loss.hpp"

namespace rog {
namespace core {
namespace {

CrudaWorkloadConfig
tinyCruda(std::size_t workers)
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = workers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f; // fast-converging test setting.
    return cfg;
}

NetworkSetup
unstableNetwork(std::size_t workers, double mean = 20e3)
{
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(mean);
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 17 + i * 1000));
    return net;
}

NetworkSetup
stableNetwork(std::size_t workers, double rate = 50e3)
{
    NetworkSetup net;
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(rate));
    return net;
}

EngineConfig
baseConfig(SystemConfig system, std::size_t iterations = 25)
{
    EngineConfig cfg;
    cfg.system = std::move(system);
    cfg.iterations = iterations;
    cfg.eval_every = 10;
    return cfg;
}

/** Sweep the four systems through the same invariant checks. */
class SystemInvariants : public ::testing::TestWithParam<const char *>
{
  protected:
    SystemConfig
    system() const
    {
        const std::string name = GetParam();
        if (name == "BSP")
            return SystemConfig::bsp();
        if (name == "SSP")
            return SystemConfig::ssp(4);
        if (name == "FLOWN")
            return SystemConfig::flownSystem();
        return SystemConfig::rog(4);
    }
};

TEST_P(SystemInvariants, CompletesAllIterationsWithSaneRecords)
{
    CrudaWorkload workload(tinyCruda(3));
    const auto cfg = baseConfig(system());
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3));
    EXPECT_EQ(res.completed_iterations, cfg.iterations);
    EXPECT_EQ(res.iterations.size(), cfg.iterations * 3);
    for (const auto &r : res.iterations) {
        EXPECT_GT(r.compute_s, 0.0);
        EXPECT_GT(r.comm_s, 0.0);
        EXPECT_GE(r.stall_s, 0.0);
        EXPECT_GT(r.bytes_pushed, 0.0);
        EXPECT_GE(r.units_pushed, 1u);
        EXPECT_LE(r.units_pushed, res.total_units);
    }
}

TEST_P(SystemInvariants, StalenessNeverExceedsThreshold)
{
    CrudaWorkload workload(tinyCruda(3));
    const auto sys = system();
    const auto res = runDistributedTraining(workload, baseConfig(sys),
                                            unstableNetwork(3));
    // RSP/SSP gate: a worker can be at most `threshold` iterations
    // behind the fastest one (FLOWN: at most its max threshold).
    const auto bound = static_cast<std::int64_t>(
        sys.flown_dynamic ? sys.flown.max_threshold
                          : sys.staleness_threshold);
    for (const auto &r : res.iterations)
        EXPECT_LE(r.staleness_behind, bound)
            << res.system << " iter " << r.iteration;
}

TEST_P(SystemInvariants, PerWorkerTimeIsMonotone)
{
    CrudaWorkload workload(tinyCruda(2));
    const auto res = runDistributedTraining(workload,
                                            baseConfig(system()),
                                            unstableNetwork(2));
    std::vector<double> last(2, 0.0);
    for (const auto &r : res.iterations) {
        EXPECT_GE(r.end_time_s, last[r.worker]);
        last[r.worker] = r.end_time_s;
    }
}

TEST_P(SystemInvariants, EnergyAccountingIsConsistent)
{
    CrudaWorkload workload(tinyCruda(2));
    const auto res = runDistributedTraining(workload,
                                            baseConfig(system()),
                                            unstableNetwork(2));
    ASSERT_EQ(res.worker_energy_j.size(), 2u);
    const sim::PowerModel power{};
    for (std::size_t w = 0; w < 2; ++w) {
        // State durations sum to the worker's lifetime and reproduce
        // the reported joules.
        const double joules = res.worker_compute_s[w] * power.compute_w +
                              res.worker_comm_s[w] * power.communicate_w +
                              res.worker_stall_s[w] * power.stall_w;
        EXPECT_NEAR(res.worker_energy_j[w], joules,
                    1e-6 * std::max(1.0, joules));
        EXPECT_GT(res.worker_energy_j[w], 0.0);
    }
}

TEST_P(SystemInvariants, DeterministicAcrossRuns)
{
    const auto sys = system();
    CrudaWorkload workload_a(tinyCruda(2));
    CrudaWorkload workload_b(tinyCruda(2));
    const auto a = runDistributedTraining(workload_a, baseConfig(sys),
                                          unstableNetwork(2));
    const auto b = runDistributedTraining(workload_b, baseConfig(sys),
                                          unstableNetwork(2));
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].worker, b.iterations[i].worker);
        EXPECT_DOUBLE_EQ(a.iterations[i].comm_s, b.iterations[i].comm_s);
        EXPECT_DOUBLE_EQ(a.iterations[i].stall_s,
                         b.iterations[i].stall_s);
    }
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(Systems, SystemInvariants,
                         ::testing::Values("BSP", "SSP", "FLOWN", "ROG"));

TEST(EngineTest, BspRunsInLockstep)
{
    CrudaWorkload workload(tinyCruda(3));
    const auto res = runDistributedTraining(
        workload, baseConfig(SystemConfig::bsp()), unstableNetwork(3));
    for (const auto &r : res.iterations)
        EXPECT_LE(r.staleness_behind, 1) << r.iteration;
}

TEST(EngineTest, BaselinesPushWholeModelEveryIteration)
{
    CrudaWorkload workload(tinyCruda(2));
    const auto res = runDistributedTraining(
        workload, baseConfig(SystemConfig::ssp(4)), unstableNetwork(2));
    EXPECT_EQ(res.total_units, 1u);
    for (const auto &r : res.iterations) {
        EXPECT_EQ(r.units_pushed, 1u);
        EXPECT_DOUBLE_EQ(r.push_fraction, 1.0);
    }
}

TEST(EngineTest, RogRespectsMtaFloor)
{
    CrudaWorkload workload(tinyCruda(3));
    const auto res = runDistributedTraining(
        workload, baseConfig(SystemConfig::rog(4)), unstableNetwork(3));
    const std::size_t floor = mtaUnits(4, res.total_units);
    for (const auto &r : res.iterations)
        EXPECT_GE(r.units_pushed, floor) << r.iteration;
}

TEST(EngineTest, RogTransmitsPartiallyUnderPressure)
{
    // Over an unstable network, ROG must sometimes ship less than the
    // full row set (that is the whole point).
    CrudaWorkload workload(tinyCruda(3));
    auto cfg = baseConfig(SystemConfig::rog(4), 40);
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3, 8e3));
    bool partial = false;
    for (const auto &r : res.iterations)
        if (r.units_pushed < res.total_units)
            partial = true;
    EXPECT_TRUE(partial);
}

TEST(EngineTest, RowGranularityHasManyUnits)
{
    CrudaWorkload workload(tinyCruda(2));
    const auto res = runDistributedTraining(
        workload, baseConfig(SystemConfig::rog(4), 3),
        stableNetwork(2));
    auto replica = workload.buildReplica();
    EXPECT_EQ(res.total_units, replica->rowCount());
}

TEST(EngineTest, TimeHorizonStopsTheRun)
{
    CrudaWorkload workload(tinyCruda(2));
    auto cfg = baseConfig(SystemConfig::bsp(), 10000);
    cfg.time_horizon_seconds = 60.0;
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(2));
    EXPECT_LT(res.completed_iterations, 10000u);
    EXPECT_GT(res.completed_iterations, 5u);
    // All workers end shortly after the horizon.
    EXPECT_LT(res.sim_seconds, 120.0);
}

TEST(EngineTest, CheckpointsCoverEveryWorkerAndIterationZero)
{
    CrudaWorkload workload(tinyCruda(2));
    auto cfg = baseConfig(SystemConfig::ssp(2), 20);
    cfg.eval_every = 5;
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(2));
    std::size_t zero_count = 0;
    std::size_t final_count = 0;
    for (const auto &c : res.checkpoints) {
        if (c.iteration == 0)
            ++zero_count;
        if (c.iteration == 20)
            ++final_count;
    }
    EXPECT_EQ(zero_count, 2u);
    EXPECT_EQ(final_count, 2u);
}

TEST(EngineTest, TrainingImprovesMetric)
{
    CrudaWorkload workload(tinyCruda(3));
    auto cfg = baseConfig(SystemConfig::rog(4), 120);
    cfg.eval_every = 30;
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3));
    double first = 0.0, last = 0.0;
    std::size_t max_iter = 0;
    for (const auto &c : res.checkpoints) {
        if (c.iteration == 0)
            first = c.metric;
        if (c.iteration >= max_iter) {
            max_iter = c.iteration;
            last = c.metric;
        }
    }
    EXPECT_GT(last, first + 5.0); // online adaptation recovers accuracy.
}

TEST(EngineTest, SingleWorkerBspMatchesSequentialSgd)
{
    // With one worker, identity codec, and a stable network, the
    // distributed run must reproduce plain SGD-momentum exactly.
    auto wcfg = tinyCruda(1);
    CrudaWorkload workload(wcfg);
    auto cfg = baseConfig(SystemConfig::bsp(), 15);
    cfg.codec = "identity";
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(1));
    EXPECT_EQ(res.completed_iterations, 15u);

    // Reference: same workload instance sequence, local updates.
    CrudaWorkload ref_workload(wcfg);
    auto model = ref_workload.buildReplica();
    nn::SgdMomentum opt(*model, ref_workload.optimizerConfig());
    auto sampler = ref_workload.makeSampler(0);
    for (int it = 0; it < 15; ++it) {
        auto batch = sampler.sample(ref_workload.batchSize());
        model->zeroGrad();
        auto loss = nn::softmaxCrossEntropy(model->forward(batch.features),
                                            batch.labels);
        model->backward(loss.grad);
        for (std::size_t r = 0; r < opt.rowCount(); ++r) {
            auto g = opt.rowGrad(r);
            opt.applyRow(r, {g.data(), g.size()});
        }
    }
    const double ref_metric = ref_workload.evaluate(*model);
    double engine_metric = 0.0;
    for (const auto &c : res.checkpoints)
        if (c.iteration == 15)
            engine_metric = c.metric;
    EXPECT_NEAR(engine_metric, ref_metric, 1e-9);
}

TEST(EngineTest, WrongTraceCountDies)
{
    CrudaWorkload workload(tinyCruda(3));
    EXPECT_DEATH(runDistributedTraining(workload,
                                        baseConfig(SystemConfig::bsp()),
                                        stableNetwork(2)),
                 "trace");
}

TEST(EngineTest, ModelWireBytesOrdering)
{
    CrudaWorkload workload(tinyCruda(2));
    const double whole =
        modelWireBytes(workload, Granularity::WholeModel, "onebit");
    const double row =
        modelWireBytes(workload, Granularity::Row, "onebit");
    const double elem =
        modelWireBytes(workload, Granularity::Element, "onebit");
    const double raw =
        modelWireBytes(workload, Granularity::WholeModel, "identity");
    EXPECT_LT(whole, row);
    EXPECT_LT(row, elem);
    EXPECT_LT(whole, 0.1 * raw); // ~3.2% compression.
}

} // namespace
} // namespace core
} // namespace rog
