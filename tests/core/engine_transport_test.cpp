/**
 * @file
 * Engine integration of the reliable transport: gradient pushes and
 * pulls travel as framed, checksummed, chunked messages. Training must
 * complete over the transport, survive corruption-class faults with
 * clean invariants, account retries/backoff/retransmission in the run
 * result, split backoff out in the timeline, and replay
 * deterministically.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"
#include "stats/timeline.hpp"

namespace rog {
namespace core {
namespace {

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kIterations = 12;

CrudaWorkloadConfig
tinyCruda()
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = kWorkers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

NetworkSetup
stableNetwork(double rate = 50e3)
{
    NetworkSetup net;
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(rate));
    return net;
}

EngineConfig
transportConfig()
{
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = kIterations;
    cfg.eval_every = 6;
    cfg.reliable_transport = true;
    cfg.transport.chunk_bytes = 4096.0;
    return cfg;
}

RunResult
run(EngineConfig cfg, const NetworkSetup &net,
    const fault::FaultPlan *plan = nullptr,
    fault::InvariantChecker *checker = nullptr)
{
    CrudaWorkload workload(tinyCruda());
    cfg.fault_plan = plan;
    cfg.invariants = checker;
    return runDistributedTraining(workload, cfg, net);
}

TEST(EngineTransport, CleanNetworkTrainsWithoutRetries)
{
    fault::InvariantChecker checker;
    const auto res =
        run(transportConfig(), stableNetwork(), nullptr, &checker);

    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(res.worker_iterations[w], kIterations);
    // Every row travelled through the transport...
    EXPECT_GT(res.total_bytes, 0.0);
    // ...and a clean network never needs a second attempt.
    EXPECT_EQ(res.transport_retries, 0u);
    EXPECT_DOUBLE_EQ(res.transport_backoff_s, 0.0);
    EXPECT_DOUBLE_EQ(res.transport_retransmitted_bytes, 0.0);
    EXPECT_EQ(res.transport_corrupt_chunks, 0u);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(checker.checksRun(), 0u);
}

TEST(EngineTransport, SurvivesCorruptionClassFaults)
{
    // Corrupt, duplicate, and reorder deliveries sprayed over every
    // link: training still completes, every record stays intact
    // (invariants clean), and the transport's repair work shows up in
    // the run accounting.
    fault::FaultPlan plan;
    for (std::size_t l = 0; l < kWorkers; ++l) {
        for (const double at : {0.0, 1.0, 3.0, 7.0}) {
            fault::TransferFaultRule r;
            r.link = l;
            r.at_s = at;
            r.corrupt = true;
            plan.transfer_faults.push_back(r);
        }
        fault::TransferFaultRule d;
        d.link = l;
        d.at_s = 2.0;
        d.duplicate = true;
        plan.transfer_faults.push_back(d);
        fault::TransferFaultRule t;
        t.link = l;
        t.at_s = 5.0;
        t.truncate_bytes = 1000.0;
        plan.transfer_faults.push_back(t);
    }
    plan.validate();

    fault::InvariantChecker checker;
    const auto res =
        run(transportConfig(), stableNetwork(), &plan, &checker);

    EXPECT_TRUE(checker.clean()) << checker.report();
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(res.worker_iterations[w], kIterations);
    EXPECT_GT(res.transport_corrupt_chunks, 0u);
    EXPECT_GT(res.transport_retries, 0u);
    EXPECT_GT(res.transport_backoff_s, 0.0);
    EXPECT_GT(res.transport_retransmitted_bytes, 0.0);

    // Per-iteration accounting reconciles with the aggregate.
    std::size_t retries = 0;
    double backoff = 0.0;
    for (const auto &r : res.iterations) {
        retries += r.retries;
        backoff += r.backoff_s;
        EXPECT_LE(r.backoff_s, r.comm_s + 1e-9);
    }
    EXPECT_EQ(retries, res.transport_retries);
    EXPECT_NEAR(backoff, res.transport_backoff_s, 1e-6);
}

TEST(EngineTransport, BackoffIsItsOwnTimelinePhase)
{
    fault::FaultPlan plan;
    for (std::size_t l = 0; l < kWorkers; ++l) {
        fault::TransferFaultRule r;
        r.link = l;
        r.at_s = 0.0;
        r.corrupt = true;
        plan.transfer_faults.push_back(r);
    }
    plan.validate();

    const auto res = run(transportConfig(), stableNetwork(), &plan);
    const auto segments = stats::buildTimeline(res);

    double backoff = 0.0, communicate = 0.0;
    for (const auto &s : segments) {
        if (s.phase == "backoff")
            backoff += s.duration_s;
        else if (s.phase == "communicate")
            communicate += s.duration_s;
    }
    EXPECT_GT(backoff, 0.0);
    EXPECT_GT(communicate, 0.0);
    EXPECT_NEAR(backoff, res.transport_backoff_s, 1e-6);
}

TEST(EngineTransport, ReplayIsDeterministic)
{
    fault::FaultPlan plan;
    for (std::size_t l = 0; l < kWorkers; ++l) {
        fault::TransferFaultRule r;
        r.link = l;
        r.at_s = 1.0;
        r.corrupt = true;
        plan.transfer_faults.push_back(r);
        fault::TransferFaultRule t;
        t.link = l;
        t.at_s = 4.0;
        t.truncate_bytes = 2000.0;
        plan.transfer_faults.push_back(t);
    }
    plan.validate();

    const auto a = run(transportConfig(), stableNetwork(), &plan);
    const auto b = run(transportConfig(), stableNetwork(), &plan);
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_DOUBLE_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.transport_retries, b.transport_retries);
    EXPECT_DOUBLE_EQ(a.transport_backoff_s, b.transport_backoff_s);
    EXPECT_DOUBLE_EQ(a.transport_retransmitted_bytes,
                     b.transport_retransmitted_bytes);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i)
        EXPECT_DOUBLE_EQ(a.iterations[i].end_time_s,
                         b.iterations[i].end_time_s)
            << "record " << i;
}

TEST(EngineTransport, TransportCostsMoreWireButSameTraining)
{
    // The transport pays per-chunk frame headers, so it moves more
    // bytes than the legacy bulk path — but training progress (the
    // iteration budget) is identical on a clean network.
    auto with = transportConfig();
    auto without = transportConfig();
    without.reliable_transport = false;

    const auto a = run(with, stableNetwork());
    const auto b = run(without, stableNetwork());
    EXPECT_EQ(a.completed_iterations, b.completed_iterations);
    EXPECT_GT(a.total_bytes, b.total_bytes);
    // Legacy runs report zero transport activity.
    EXPECT_EQ(b.transport_retries, 0u);
    EXPECT_DOUBLE_EQ(b.transport_backoff_s, 0.0);
}

} // namespace
} // namespace core
} // namespace rog
