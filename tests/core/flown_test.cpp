/**
 * @file
 * Unit tests for the FLOWN dynamic-threshold scheduler.
 */
#include <gtest/gtest.h>

#include "core/flown.hpp"

namespace rog {
namespace core {
namespace {

TEST(FlownTest, ConservativeUntilAllSeeded)
{
    FlownScheduler sched(3, FlownConfig{});
    sched.reportThroughput(0, 1000.0);
    EXPECT_EQ(sched.thresholdFor(0), 1u);
    sched.reportThroughput(1, 1000.0);
    sched.reportThroughput(2, 1000.0);
    EXPECT_GE(sched.thresholdFor(0), 1u);
}

TEST(FlownTest, EqualRatesGetBaseThreshold)
{
    FlownConfig cfg;
    cfg.base_threshold = 2;
    FlownScheduler sched(2, cfg);
    sched.reportThroughput(0, 500.0);
    sched.reportThroughput(1, 500.0);
    EXPECT_EQ(sched.thresholdFor(0), 2u);
    EXPECT_EQ(sched.thresholdFor(1), 2u);
}

TEST(FlownTest, SlowWorkerGetsLargerAllowance)
{
    FlownScheduler sched(2, FlownConfig{});
    sched.reportThroughput(0, 1000.0);
    sched.reportThroughput(1, 100.0); // 10x slower.
    EXPECT_GT(sched.thresholdFor(1), sched.thresholdFor(0));
    EXPECT_EQ(sched.thresholdFor(1), FlownConfig{}.max_threshold);
}

TEST(FlownTest, FastWorkerClampedToMin)
{
    FlownScheduler sched(2, FlownConfig{});
    sched.reportThroughput(0, 10000.0);
    sched.reportThroughput(1, 100.0);
    EXPECT_EQ(sched.thresholdFor(0), FlownConfig{}.min_threshold);
}

TEST(FlownTest, EstimatedRateUsesEwma)
{
    FlownConfig cfg;
    cfg.ewma_alpha = 0.5;
    FlownScheduler sched(1, cfg);
    EXPECT_DOUBLE_EQ(sched.estimatedRate(0), 0.0);
    sched.reportThroughput(0, 100.0);
    sched.reportThroughput(0, 300.0);
    EXPECT_DOUBLE_EQ(sched.estimatedRate(0), 200.0);
}

TEST(FlownTest, EstimateLagsSuddenChange)
{
    // The paper's point: EWMA estimates cannot follow sharp
    // fluctuation — a worker that suddenly fades keeps a stale (too
    // optimistic) estimate for several rounds.
    FlownConfig cfg;
    cfg.ewma_alpha = 0.3;
    FlownScheduler sched(2, cfg);
    for (int i = 0; i < 20; ++i) {
        sched.reportThroughput(0, 1000.0);
        sched.reportThroughput(1, 1000.0);
    }
    // Worker 1 collapses to 1% of its bandwidth.
    sched.reportThroughput(1, 10.0);
    // One observation later the estimate is still > 50% of the old
    // value, so the scheduler underestimates the straggler.
    EXPECT_GT(sched.estimatedRate(1), 500.0);
}

TEST(FlownTest, BadConfigDies)
{
    FlownConfig cfg;
    cfg.min_threshold = 5;
    cfg.max_threshold = 2;
    EXPECT_DEATH(FlownScheduler(2, cfg), "bounds");
}

} // namespace
} // namespace core
} // namespace rog
