/**
 * @file
 * Cross-validation of the engine's two independent accounting paths:
 * per-iteration records (compute/comm/stall durations) against the
 * energy meter's state timeline (which integrates the same states in
 * virtual time), plus calibration-constant checks.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.hpp"
#include "core/testbed_profile.hpp"
#include "core/workloads.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace core {
namespace {

CrudaWorkloadConfig
tinyCruda(std::size_t workers)
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = workers;
    cfg.pretrain_iters = 40;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    return cfg;
}

NetworkSetup
outdoorNetwork(std::size_t workers)
{
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 91 + i * 1000));
    return net;
}

/** Records and meter must agree per worker, for every system. */
class AccountingAgreement
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AccountingAgreement, RecordsMatchMeterTimeline)
{
    const std::string name = GetParam();
    SystemConfig sys;
    if (name == "BSP")
        sys = SystemConfig::bsp();
    else if (name == "SSP")
        sys = SystemConfig::ssp(4);
    else if (name == "FLOWN")
        sys = SystemConfig::flownSystem();
    else
        sys = SystemConfig::rog(4);

    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = sys;
    cfg.iterations = 20;
    cfg.eval_every = 100;
    const auto res = runDistributedTraining(workload, cfg,
                                            outdoorNetwork(3));

    for (std::size_t w = 0; w < 3; ++w) {
        double compute = 0.0, comm = 0.0, stall = 0.0;
        for (const auto &r : res.iterations) {
            if (r.worker != w)
                continue;
            compute += r.compute_s;
            comm += r.comm_s;
            stall += r.stall_s;
        }
        // The meter runs to teardown (its final Compute segment after
        // the last iteration is empty since time stops), so the two
        // paths must agree tightly.
        EXPECT_NEAR(res.worker_compute_s[w], compute,
                    0.01 * compute + 0.1)
            << name << " worker " << w;
        EXPECT_NEAR(res.worker_comm_s[w], comm, 0.01 * comm + 0.1)
            << name << " worker " << w;
        EXPECT_NEAR(res.worker_stall_s[w], stall, 0.01 * stall + 0.1)
            << name << " worker " << w;
        // And the states tile the worker's lifetime: their sum is its
        // last-iteration end time.
        double last_end = 0.0;
        for (const auto &r : res.iterations)
            if (r.worker == w)
                last_end = std::max(last_end, r.end_time_s);
        EXPECT_NEAR(res.worker_compute_s[w] + res.worker_comm_s[w] +
                        res.worker_stall_s[w],
                    last_end, 0.01 * last_end + 0.1)
            << name << " worker " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Systems, AccountingAgreement,
                         ::testing::Values("BSP", "SSP", "FLOWN",
                                           "ROG"));

TEST(AccountingTest, BatchScaleScalesComputeOnly)
{
    CrudaWorkload workload(tinyCruda(2));
    auto run = [&](double scale) {
        EngineConfig cfg;
        cfg.system = SystemConfig::ssp(4);
        cfg.iterations = 5;
        cfg.eval_every = 100;
        cfg.profile.batch_scale = scale;
        NetworkSetup net;
        for (int i = 0; i < 2; ++i)
            net.link_traces.push_back(
                net::BandwidthTrace::constant(50e3));
        return runDistributedTraining(workload, cfg, net);
    };
    const auto x1 = run(1.0);
    const auto x2 = run(2.0);
    double c1, m1, s1, c2, m2, s2;
    x1.meanTimeComposition(c1, m1, s1);
    x2.meanTimeComposition(c2, m2, s2);
    const TestbedProfile profile;
    EXPECT_NEAR(c1, profile.compute_seconds + profile.compress_seconds,
                1e-9);
    EXPECT_NEAR(c2, 2.0 * profile.compute_seconds +
                        profile.compress_seconds,
                1e-9);
    EXPECT_NEAR(m1, m2, 1e-6); // same bytes, same network.
}

TEST(AccountingTest, CalibratedBandwidthFormula)
{
    // 8 transfers of X bytes at the calibrated rate take the target.
    const double bw = calibratedMeanBandwidth(1000.0, 4, 2.0);
    EXPECT_NEAR(8.0 * 1000.0 / bw, 2.0, 1e-12);
    const double default_bw = calibratedMeanBandwidth(1000.0, 4);
    EXPECT_NEAR(8.0 * 1000.0 / default_bw, 1.47, 1e-12);
}

TEST(AccountingTest, TotalBytesMatchesPerIterationSums)
{
    CrudaWorkload workload(tinyCruda(2));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 15;
    cfg.eval_every = 100;
    const auto res = runDistributedTraining(workload, cfg,
                                            outdoorNetwork(2));
    double sum = 0.0;
    for (const auto &r : res.iterations)
        sum += r.bytes_pushed + r.bytes_pulled;
    EXPECT_NEAR(res.total_bytes, sum, 0.01 * sum + 1.0);
}

} // namespace
} // namespace core
} // namespace rog
