/**
 * @file
 * The "ROGS" server-checkpoint format: exact round-trip of every
 * field, atomic file replacement, and — the robustness contract —
 * rejection of every malformed input: truncation at every byte
 * boundary, a bit flip in every byte (CRC), bad magic, unsupported
 * version, implausible sizes, and trailing garbage. A parser that
 * crashes or silently accepts any of these would turn one torn file
 * into corrupted training state.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/server_checkpoint.hpp"

namespace rog {
namespace core {
namespace {

ServerCheckpoint
sampleCheckpoint()
{
    constexpr std::size_t kWorkers = 3;
    constexpr std::size_t kUnits = 4;
    ServerCheckpoint c;
    c.iteration = 17;
    c.msg_seq = 0xDEADBEEFull;
    c.versions.versions.assign(kWorkers,
                               std::vector<std::int64_t>(kUnits, 0));
    c.versions.retired.assign(kWorkers, 0);
    c.versions.retired[2] = 1;
    c.server.outbox.resize(kWorkers);
    c.server.has_pending.assign(
        kWorkers, std::vector<std::uint8_t>(kUnits, 0));
    c.server.last_update.assign(kUnits, 0);
    c.tracker.rate.assign(kWorkers, 0.0);
    c.tracker.seeded.assign(kWorkers, 0);
    c.tracker.mta_bytes.assign(kWorkers, 0.0);
    for (std::size_t w = 0; w < kWorkers; ++w) {
        c.server.outbox[w].resize(kUnits);
        for (std::size_t u = 0; u < kUnits; ++u) {
            c.versions.versions[w][u] =
                static_cast<std::int64_t>(w * 10 + u);
            if ((w + u) % 2 == 0) {
                c.server.has_pending[w][u] = 1;
                // Ragged widths on purpose: unit payloads differ.
                c.server.outbox[w][u].assign(
                    3 + u, 0.25f * static_cast<float>(w + u));
            }
        }
        c.tracker.rate[w] = 1e3 * static_cast<double>(w + 1);
        c.tracker.seeded[w] = w != 1;
        c.tracker.mta_bytes[w] = 512.0 + static_cast<double>(w);
    }
    for (std::size_t u = 0; u < kUnits; ++u)
        c.server.last_update[u] = static_cast<std::int64_t>(5 + u);
    return c;
}

std::string
encode(const ServerCheckpoint &c)
{
    std::ostringstream os(std::ios::binary);
    writeServerCheckpoint(os, c);
    return os.str();
}

ServerCheckpoint
decode(const std::string &bytes)
{
    std::istringstream is(bytes, std::ios::binary);
    return readServerCheckpoint(is);
}

void
expectEqual(const ServerCheckpoint &a, const ServerCheckpoint &b)
{
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.msg_seq, b.msg_seq);
    EXPECT_EQ(a.versions.versions, b.versions.versions);
    EXPECT_EQ(a.versions.retired, b.versions.retired);
    EXPECT_EQ(a.server.outbox, b.server.outbox);
    EXPECT_EQ(a.server.has_pending, b.server.has_pending);
    EXPECT_EQ(a.server.last_update, b.server.last_update);
    EXPECT_EQ(a.tracker.rate, b.tracker.rate);
    EXPECT_EQ(a.tracker.seeded, b.tracker.seeded);
    EXPECT_EQ(a.tracker.mta_bytes, b.tracker.mta_bytes);
}

TEST(ServerCheckpoint, RoundTripsEveryField)
{
    const auto c = sampleCheckpoint();
    expectEqual(c, decode(encode(c)));
}

TEST(ServerCheckpoint, EncodingIsDeterministic)
{
    const auto c = sampleCheckpoint();
    EXPECT_EQ(encode(c), encode(c));
}

TEST(ServerCheckpoint, FileRoundTripIsAtomic)
{
    const std::string path =
        testing::TempDir() + "rog_ckpt_test.rogs";
    std::remove(path.c_str());
    const auto c = sampleCheckpoint();
    writeServerCheckpointFile(path, c);
    // The temp file was renamed away, not left behind.
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
    expectEqual(c, readServerCheckpointFile(path));

    // Overwriting with a newer checkpoint replaces, never appends.
    auto c2 = sampleCheckpoint();
    c2.iteration = 99;
    writeServerCheckpointFile(path, c2);
    EXPECT_EQ(readServerCheckpointFile(path).iteration, 99);
    std::remove(path.c_str());
}

TEST(ServerCheckpoint, MissingFileThrows)
{
    EXPECT_THROW(
        readServerCheckpointFile(testing::TempDir() +
                                 "rog_ckpt_does_not_exist.rogs"),
        std::runtime_error);
}

TEST(ServerCheckpoint, RejectsTruncationAtEveryByte)
{
    const std::string bytes = encode(sampleCheckpoint());
    // Every proper prefix must be rejected — header cuts, payload
    // cuts, and the empty file alike.
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_THROW(decode(bytes.substr(0, n)), std::runtime_error)
            << "prefix of " << n << " bytes accepted";
}

TEST(ServerCheckpoint, RejectsBitFlipInEveryByte)
{
    const std::string bytes = encode(sampleCheckpoint());
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        try {
            decode(bad);
        } catch (const std::runtime_error &) {
            ++rejected;
        }
    }
    // Magic/version/size flips die on the header checks; every
    // payload flip must die on the CRC. All of them, no exception.
    EXPECT_EQ(rejected, bytes.size());
}

TEST(ServerCheckpoint, RejectsTrailingGarbage)
{
    std::string bytes = encode(sampleCheckpoint());
    bytes += "extra";
    // The declared payload size bounds the read; extra bytes after the
    // payload are ignored by the stream reader (a file may hold more),
    // but garbage *inside* the declared payload is not.
    EXPECT_NO_THROW(decode(bytes));
}

TEST(ServerCheckpoint, RejectsImplausiblePayloadSize)
{
    std::string bytes = encode(sampleCheckpoint());
    // Overwrite the u64 size field (offset 8: magic + version) with
    // an absurd value.
    const std::uint64_t huge = 1ull << 40;
    bytes.replace(8, sizeof(huge),
                  reinterpret_cast<const char *>(&huge), sizeof(huge));
    EXPECT_THROW(decode(bytes), std::runtime_error);
}

TEST(ServerCheckpoint, RejectsWrongMagicAndVersion)
{
    std::string bad_magic = encode(sampleCheckpoint());
    bad_magic[0] = 'X';
    EXPECT_THROW(decode(bad_magic), std::runtime_error);

    std::string bad_version = encode(sampleCheckpoint());
    bad_version[4] = 9; // version lives right after the magic.
    EXPECT_THROW(decode(bad_version), std::runtime_error);
}

} // namespace
} // namespace core
} // namespace rog
