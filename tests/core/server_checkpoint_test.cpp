/**
 * @file
 * The "ROGS" server-checkpoint format: exact round-trip of every
 * field, atomic file replacement, and — the robustness contract —
 * rejection of every malformed input: truncation at every byte
 * boundary, a bit flip in every byte (CRC), bad magic, unsupported
 * version, implausible sizes, and trailing garbage. A parser that
 * crashes or silently accepts any of these would turn one torn file
 * into corrupted training state.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32c.hpp"
#include "core/server_checkpoint.hpp"

namespace rog {
namespace core {
namespace {

ServerCheckpoint
sampleCheckpoint()
{
    constexpr std::size_t kWorkers = 3;
    constexpr std::size_t kUnits = 4;
    ServerCheckpoint c;
    c.iteration = 17;
    c.msg_seq = 0xDEADBEEFull;
    c.versions.versions.assign(kWorkers,
                               std::vector<std::int64_t>(kUnits, 0));
    c.versions.retired.assign(kWorkers, 0);
    c.versions.retired[2] = 1;
    c.server.outbox.resize(kWorkers);
    c.server.has_pending.assign(
        kWorkers, std::vector<std::uint8_t>(kUnits, 0));
    c.server.last_update.assign(kUnits, 0);
    c.tracker.rate.assign(kWorkers, 0.0);
    c.tracker.seeded.assign(kWorkers, 0);
    c.tracker.mta_bytes.assign(kWorkers, 0.0);
    for (std::size_t w = 0; w < kWorkers; ++w) {
        c.server.outbox[w].resize(kUnits);
        for (std::size_t u = 0; u < kUnits; ++u) {
            c.versions.versions[w][u] =
                static_cast<std::int64_t>(w * 10 + u);
            if ((w + u) % 2 == 0) {
                c.server.has_pending[w][u] = 1;
                // Ragged widths on purpose: unit payloads differ.
                c.server.outbox[w][u].assign(
                    3 + u, 0.25f * static_cast<float>(w + u));
            }
        }
        c.tracker.rate[w] = 1e3 * static_cast<double>(w + 1);
        c.tracker.seeded[w] = w != 1;
        c.tracker.mta_bytes[w] = 512.0 + static_cast<double>(w);
    }
    for (std::size_t u = 0; u < kUnits; ++u)
        c.server.last_update[u] = static_cast<std::int64_t>(5 + u);
    // v2 session-recovery section: epoch, resume tokens, done flags,
    // and a model blob — what a restarted socket server restores.
    c.epoch = 7;
    c.sessions.entries.resize(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
        auto &e = c.sessions.entries[w];
        e.token = 0x1111111111111111ull * (w + 1);
        e.incarnation = static_cast<std::uint32_t>(w);
        e.last_done_iter = static_cast<std::int64_t>(3 + w);
        e.last_response_iter = static_cast<std::int64_t>(4 + w);
        e.admitted_once = w != 1;
    }
    c.sessions.next_session = 9;
    c.sessions.admissions = 5;
    c.worker_done = {0, 1, 0};
    c.model = {0xAB, 0xCD, 0x00, 0x12, 0x34, 0x56};
    return c;
}

std::string
encode(const ServerCheckpoint &c)
{
    std::ostringstream os(std::ios::binary);
    writeServerCheckpoint(os, c);
    return os.str();
}

ServerCheckpoint
decode(const std::string &bytes)
{
    std::istringstream is(bytes, std::ios::binary);
    return readServerCheckpoint(is);
}

void
expectEqual(const ServerCheckpoint &a, const ServerCheckpoint &b)
{
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.msg_seq, b.msg_seq);
    EXPECT_EQ(a.versions.versions, b.versions.versions);
    EXPECT_EQ(a.versions.retired, b.versions.retired);
    EXPECT_EQ(a.server.outbox, b.server.outbox);
    EXPECT_EQ(a.server.has_pending, b.server.has_pending);
    EXPECT_EQ(a.server.last_update, b.server.last_update);
    EXPECT_EQ(a.tracker.rate, b.tracker.rate);
    EXPECT_EQ(a.tracker.seeded, b.tracker.seeded);
    EXPECT_EQ(a.tracker.mta_bytes, b.tracker.mta_bytes);
    EXPECT_EQ(a.epoch, b.epoch);
    ASSERT_EQ(a.sessions.entries.size(), b.sessions.entries.size());
    for (std::size_t w = 0; w < a.sessions.entries.size(); ++w) {
        EXPECT_EQ(a.sessions.entries[w].token,
                  b.sessions.entries[w].token);
        EXPECT_EQ(a.sessions.entries[w].incarnation,
                  b.sessions.entries[w].incarnation);
        EXPECT_EQ(a.sessions.entries[w].last_done_iter,
                  b.sessions.entries[w].last_done_iter);
        EXPECT_EQ(a.sessions.entries[w].last_response_iter,
                  b.sessions.entries[w].last_response_iter);
        EXPECT_EQ(a.sessions.entries[w].admitted_once,
                  b.sessions.entries[w].admitted_once);
    }
    EXPECT_EQ(a.sessions.next_session, b.sessions.next_session);
    EXPECT_EQ(a.sessions.admissions, b.sessions.admissions);
    EXPECT_EQ(a.worker_done, b.worker_done);
    EXPECT_EQ(a.model, b.model);
}

// Header is magic(4) + version(4) + size(8) + crc(4).
constexpr std::size_t kHeaderSize = 20;
constexpr std::size_t kSessionEntryBytes = 8 + 4 + 8 + 8 + 1;

/** Byte offset (within the payload) of the session-entry count.
 *  Computed from the payload *tail*, which has fixed layout, so the
 *  ragged outbox section up front doesn't matter. */
std::size_t
sessionCountOffset(const ServerCheckpoint &c, std::size_t payload_size)
{
    const std::size_t tail_after_count =
        c.sessions.entries.size() * kSessionEntryBytes + 4 /*next*/ +
        8 /*admissions*/ + 4 /*done count*/ + c.worker_done.size() +
        8 /*model len*/ + c.model.size();
    return payload_size - tail_after_count - 4 /*the count itself*/;
}

/** Overwrite payload bytes and re-seal the CRC so corruption reaches
 *  the structural validators instead of dying at the checksum. */
std::string
patchPayload(std::string bytes, std::size_t payload_off,
             const void *data, std::size_t n)
{
    bytes.replace(kHeaderSize + payload_off, n,
                  static_cast<const char *>(data), n);
    const std::uint32_t crc = crc32c(
        {reinterpret_cast<const std::uint8_t *>(bytes.data()) +
             kHeaderSize,
         bytes.size() - kHeaderSize});
    bytes.replace(16, sizeof(crc),
                  reinterpret_cast<const char *>(&crc), sizeof(crc));
    return bytes;
}

TEST(ServerCheckpoint, RoundTripsEveryField)
{
    const auto c = sampleCheckpoint();
    expectEqual(c, decode(encode(c)));
}

TEST(ServerCheckpoint, EncodingIsDeterministic)
{
    const auto c = sampleCheckpoint();
    EXPECT_EQ(encode(c), encode(c));
}

TEST(ServerCheckpoint, FileRoundTripIsAtomic)
{
    const std::string path =
        testing::TempDir() + "rog_ckpt_test.rogs";
    std::remove(path.c_str());
    const auto c = sampleCheckpoint();
    writeServerCheckpointFile(path, c);
    // The temp file was renamed away, not left behind.
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
    expectEqual(c, readServerCheckpointFile(path));

    // Overwriting with a newer checkpoint replaces, never appends.
    auto c2 = sampleCheckpoint();
    c2.iteration = 99;
    writeServerCheckpointFile(path, c2);
    EXPECT_EQ(readServerCheckpointFile(path).iteration, 99);
    std::remove(path.c_str());
}

TEST(ServerCheckpoint, MissingFileThrows)
{
    EXPECT_THROW(
        readServerCheckpointFile(testing::TempDir() +
                                 "rog_ckpt_does_not_exist.rogs"),
        std::runtime_error);
}

TEST(ServerCheckpoint, RejectsTruncationAtEveryByte)
{
    const std::string bytes = encode(sampleCheckpoint());
    // Every proper prefix must be rejected — header cuts, payload
    // cuts, and the empty file alike.
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_THROW(decode(bytes.substr(0, n)), std::runtime_error)
            << "prefix of " << n << " bytes accepted";
}

TEST(ServerCheckpoint, RejectsBitFlipInEveryByte)
{
    const std::string bytes = encode(sampleCheckpoint());
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        try {
            decode(bad);
        } catch (const std::runtime_error &) {
            ++rejected;
        }
    }
    // Magic/version/size flips die on the header checks; every
    // payload flip must die on the CRC. All of them, no exception.
    EXPECT_EQ(rejected, bytes.size());
}

TEST(ServerCheckpoint, RejectsTrailingGarbage)
{
    std::string bytes = encode(sampleCheckpoint());
    bytes += "extra";
    // The declared payload size bounds the read; extra bytes after the
    // payload are ignored by the stream reader (a file may hold more),
    // but garbage *inside* the declared payload is not.
    EXPECT_NO_THROW(decode(bytes));
}

TEST(ServerCheckpoint, RejectsImplausiblePayloadSize)
{
    std::string bytes = encode(sampleCheckpoint());
    // Overwrite the u64 size field (offset 8: magic + version) with
    // an absurd value.
    const std::uint64_t huge = 1ull << 40;
    bytes.replace(8, sizeof(huge),
                  reinterpret_cast<const char *>(&huge), sizeof(huge));
    EXPECT_THROW(decode(bytes), std::runtime_error);
}

TEST(ServerCheckpoint, RoundTripsEmptyRecoverySections)
{
    // The in-process DES engine checkpoints without a session table,
    // done flags, or model blob; all three stay optional in v2.
    auto c = sampleCheckpoint();
    c.sessions = net::session::SessionSnapshot{};
    c.worker_done.clear();
    c.model.clear();
    expectEqual(c, decode(encode(c)));
}

TEST(ServerCheckpoint, RejectsSessionCountMismatch)
{
    const auto c = sampleCheckpoint();
    const std::string bytes = encode(c);
    const std::size_t off =
        sessionCountOffset(c, bytes.size() - kHeaderSize);
    // 2 entries for a 3-worker fleet: a half-written session table
    // must never be adopted by a restarted server.
    const std::uint32_t bad_count = 2;
    EXPECT_THROW(
        decode(patchPayload(bytes, off, &bad_count, sizeof(bad_count))),
        std::runtime_error);
}

TEST(ServerCheckpoint, RejectsBadAdmittedFlag)
{
    const auto c = sampleCheckpoint();
    const std::string bytes = encode(c);
    // The admitted_once byte of entry 0 sits at the end of the first
    // session entry.
    const std::size_t off =
        sessionCountOffset(c, bytes.size() - kHeaderSize) + 4 +
        kSessionEntryBytes - 1;
    const std::uint8_t bad_flag = 2;
    EXPECT_THROW(
        decode(patchPayload(bytes, off, &bad_flag, sizeof(bad_flag))),
        std::runtime_error);
}

TEST(ServerCheckpoint, RejectsBadWorkerDoneFlag)
{
    const auto c = sampleCheckpoint();
    const std::string bytes = encode(c);
    const std::size_t off = bytes.size() - kHeaderSize -
                            c.model.size() - 8 /*model len*/ -
                            c.worker_done.size();
    const std::uint8_t bad_flag = 7;
    EXPECT_THROW(
        decode(patchPayload(bytes, off, &bad_flag, sizeof(bad_flag))),
        std::runtime_error);
}

TEST(ServerCheckpoint, RejectsImplausibleModelSize)
{
    const auto c = sampleCheckpoint();
    const std::string bytes = encode(c);
    const std::size_t off =
        bytes.size() - kHeaderSize - c.model.size() - 8;
    const std::uint64_t huge = 1ull << 40;
    EXPECT_THROW(decode(patchPayload(bytes, off, &huge, sizeof(huge))),
                 std::runtime_error);
}

TEST(ServerCheckpoint, RejectsTruncatedModelBlob)
{
    const auto c = sampleCheckpoint();
    const std::string bytes = encode(c);
    // Claim one more model byte than the payload holds.
    const std::size_t off =
        bytes.size() - kHeaderSize - c.model.size() - 8;
    const std::uint64_t over = c.model.size() + 1;
    EXPECT_THROW(decode(patchPayload(bytes, off, &over, sizeof(over))),
                 std::runtime_error);
}

TEST(ServerCheckpointDeathTest, WriterRejectsRaggedSessionTable)
{
    auto c = sampleCheckpoint();
    c.sessions.entries.resize(2); // 3-worker fleet.
    std::ostringstream os(std::ios::binary);
    EXPECT_DEATH(writeServerCheckpoint(os, c),
                 "session snapshot fleet-size mismatch");
}

TEST(ServerCheckpoint, RejectsWrongMagicAndVersion)
{
    std::string bad_magic = encode(sampleCheckpoint());
    bad_magic[0] = 'X';
    EXPECT_THROW(decode(bad_magic), std::runtime_error);

    std::string bad_version = encode(sampleCheckpoint());
    bad_version[4] = 9; // version lives right after the magic.
    EXPECT_THROW(decode(bad_version), std::runtime_error);
}

} // namespace
} // namespace core
} // namespace rog
