/**
 * @file
 * Unit tests for the flattened model view.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/flat_model.hpp"
#include "nn/model.hpp"

namespace rog {
namespace core {
namespace {

nn::Model
testModel()
{
    Rng rng(2);
    nn::ClassifierConfig cfg;
    cfg.input_dim = 4;
    cfg.hidden = {5};
    cfg.classes = 3;
    return nn::makeClassifier(cfg, rng);
}

TEST(FlatModelTest, SizesMatchModel)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    EXPECT_EQ(flat.flatSize(), m.parameterCount());
    EXPECT_EQ(flat.rowCount(), m.rowCount());
}

TEST(FlatModelTest, RowInfoIsContiguous)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    std::size_t expect = 0;
    for (std::size_t r = 0; r < flat.rowCount(); ++r) {
        const RowInfo &info = flat.rowInfo(r);
        EXPECT_EQ(info.flat_begin, expect);
        expect += info.width;
    }
    EXPECT_EQ(expect, flat.flatSize());
}

TEST(FlatModelTest, RowOfOffsetInvertsRowInfo)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    for (std::size_t r = 0; r < flat.rowCount(); ++r) {
        const RowInfo &info = flat.rowInfo(r);
        EXPECT_EQ(flat.rowOfOffset(info.flat_begin), r);
        EXPECT_EQ(flat.rowOfOffset(info.flat_begin + info.width - 1), r);
    }
}

TEST(FlatModelTest, RowValuesAliasParameters)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    auto params = m.parameters();
    flat.rowValues(0)[0] = 123.0f;
    EXPECT_EQ(params[0]->value.at(0, 0), 123.0f);
}

TEST(FlatModelTest, GatherGradReadsGradients)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    auto params = m.parameters();
    // Mark every gradient element with its flat index.
    std::size_t flat_idx = 0;
    for (auto *p : params)
        for (std::size_t i = 0; i < p->grad.size(); ++i)
            p->grad[i] = static_cast<float>(flat_idx++);
    std::vector<float> out(10);
    flat.gatherGrad(3, out);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<float>(3 + i));
}

TEST(FlatModelTest, ForEachRowChunkTilesRange)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    // A range spanning several rows.
    const std::size_t begin = 2;
    const std::size_t length = flat.flatSize() - 5;
    std::size_t covered = 0;
    std::size_t last_off = 0;
    flat.forEachRowChunk(begin, length,
                         [&](std::size_t row, std::size_t col,
                             std::size_t count, std::size_t off) {
                             const RowInfo &info = flat.rowInfo(row);
                             EXPECT_EQ(info.flat_begin + col,
                                       begin + off);
                             EXPECT_LE(col + count, info.width);
                             EXPECT_EQ(off, last_off);
                             last_off = off + count;
                             covered += count;
                         });
    EXPECT_EQ(covered, length);
}

TEST(FlatModelTest, ForEachRowChunkSingleElement)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    int calls = 0;
    flat.forEachRowChunk(7, 1,
                         [&](std::size_t, std::size_t, std::size_t count,
                             std::size_t) {
                             EXPECT_EQ(count, 1u);
                             ++calls;
                         });
    EXPECT_EQ(calls, 1);
}

TEST(FlatModelTest, OutOfBoundsDies)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    EXPECT_DEATH(flat.rowOfOffset(flat.flatSize()), "range");
    std::vector<float> big(flat.flatSize() + 1);
    EXPECT_DEATH(flat.gatherGrad(0, big), "bounds");
}

} // namespace
} // namespace core
} // namespace rog
