/**
 * @file
 * Unit tests for synchronization-unit partitioning and the Sec. III-A
 * granularity trade-off.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/row_partition.hpp"
#include "nn/model.hpp"

namespace rog {
namespace core {
namespace {

nn::Model
testModel()
{
    Rng rng(1);
    nn::ClassifierConfig cfg;
    cfg.input_dim = 6;
    cfg.hidden = {8};
    cfg.classes = 3;
    return nn::makeClassifier(cfg, rng);
}

TEST(RowPartitionTest, UnitCountsPerGranularity)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    // Parameters: W1 (6x8), b1 (1x8), W2 (8x3), b2 (1x3).
    EXPECT_EQ(RowPartition(flat, Granularity::WholeModel).unitCount(),
              1u);
    EXPECT_EQ(RowPartition(flat, Granularity::Layer).unitCount(), 4u);
    EXPECT_EQ(RowPartition(flat, Granularity::Row).unitCount(),
              6u + 1 + 8 + 1);
    EXPECT_EQ(RowPartition(flat, Granularity::Element).unitCount(),
              flat.flatSize());
}

/** Property: every granularity exactly tiles the flat element space. */
class PartitionCoverage : public ::testing::TestWithParam<Granularity>
{
};

TEST_P(PartitionCoverage, UnitsTileFlatSpace)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    RowPartition p(flat, GetParam());
    std::size_t expect_begin = 0;
    for (const Unit &u : p.units()) {
        EXPECT_EQ(u.begin, expect_begin);
        EXPECT_GT(u.width, 0u);
        expect_begin += u.width;
    }
    EXPECT_EQ(expect_begin, flat.flatSize());
    EXPECT_EQ(p.totalElements(), flat.flatSize());
}

INSTANTIATE_TEST_SUITE_P(AllGranularities, PartitionCoverage,
                         ::testing::Values(Granularity::Element,
                                           Granularity::Row,
                                           Granularity::Layer,
                                           Granularity::WholeModel));

TEST(RowPartitionTest, RowUnitsMatchMatrixRows)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    RowPartition p(flat, Granularity::Row);
    for (std::size_t u = 0; u < p.unitCount(); ++u) {
        const RowInfo &info = flat.rowInfo(u);
        EXPECT_EQ(p.unit(u).begin, info.flat_begin);
        EXPECT_EQ(p.unit(u).width, info.width);
    }
}

TEST(RowPartitionTest, IndexOverheadOrderingMatchesSecIIIA)
{
    // Element >> Row > Layer > WholeModel in management cost.
    nn::Model m = testModel();
    FlatModel flat(m);
    const double elem =
        RowPartition(flat, Granularity::Element).indexOverheadFraction();
    const double row =
        RowPartition(flat, Granularity::Row).indexOverheadFraction();
    const double layer =
        RowPartition(flat, Granularity::Layer).indexOverheadFraction();
    const double whole =
        RowPartition(flat, Granularity::WholeModel)
            .indexOverheadFraction();
    EXPECT_GT(elem, row);
    EXPECT_GT(row, layer);
    EXPECT_GT(layer, whole);
    // Element indexing costs about as much as the model itself
    // ("the transmission data volume will be doubled", Sec. III-A).
    EXPECT_NEAR(elem, 1.0, 0.05);
}

TEST(RowPartitionTest, GranularityNames)
{
    EXPECT_EQ(granularityName(Granularity::Element), "element");
    EXPECT_EQ(granularityName(Granularity::Row), "row");
    EXPECT_EQ(granularityName(Granularity::Layer), "layer");
    EXPECT_EQ(granularityName(Granularity::WholeModel), "whole-model");
}

TEST(RowPartitionTest, CustomOverheadBytes)
{
    nn::Model m = testModel();
    FlatModel flat(m);
    RowPartition p(flat, Granularity::Row, 16.0);
    EXPECT_DOUBLE_EQ(p.perUnitOverheadBytes(), 16.0);
}

} // namespace
} // namespace core
} // namespace rog
