/**
 * @file
 * Unit tests for the CRUDA / CRIMP workloads.
 */
#include <gtest/gtest.h>

#include "core/workloads.hpp"

namespace rog {
namespace core {
namespace {

CrudaWorkloadConfig
smallCruda()
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 1200;
    cfg.data.test_samples = 400;
    cfg.model.hidden = {24, 16};
    cfg.workers = 3;
    cfg.pretrain_iters = 150;
    cfg.eval_subset = 400;
    return cfg;
}

TEST(CrudaWorkloadTest, PretrainingRecoversCleanAccuracy)
{
    CrudaWorkload wl(smallCruda());
    // Pretrained model: strong on clean data, degraded on shifted.
    EXPECT_GT(wl.cleanAccuracy(), 70.0);
    EXPECT_LT(wl.initialAccuracy(), wl.cleanAccuracy() - 10.0);
    EXPECT_GT(wl.initialAccuracy(), 10.0);
}

TEST(CrudaWorkloadTest, ReplicasShareInitialWeights)
{
    CrudaWorkload wl(smallCruda());
    auto a = wl.buildReplica();
    auto b = wl.buildReplica();
    auto pa = a->parameters();
    auto pb = b->parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    // And evaluate identically.
    EXPECT_DOUBLE_EQ(wl.evaluate(*a), wl.evaluate(*b));
}

TEST(CrudaWorkloadTest, MetricConventions)
{
    CrudaWorkload wl(smallCruda());
    EXPECT_EQ(wl.metricName(), "accuracy_pct");
    EXPECT_FALSE(wl.lowerIsBetter());
    EXPECT_EQ(wl.workers(), 3u);
    EXPECT_EQ(wl.batchSize(), smallCruda().batch_size);
}

TEST(CrudaWorkloadTest, SamplersDrawFromDistinctShards)
{
    CrudaWorkload wl(smallCruda());
    auto s0 = wl.makeSampler(0);
    auto s1 = wl.makeSampler(1);
    EXPECT_GT(s0.shardSize(), 0u);
    EXPECT_GT(s1.shardSize(), 0u);
    auto b = s0.sample(8);
    EXPECT_EQ(b.features.rows(), 8u);
    EXPECT_EQ(b.labels.size(), 8u);
}

TEST(CrudaWorkloadTest, OutOfRangeWorkerDies)
{
    CrudaWorkload wl(smallCruda());
    EXPECT_DEATH(wl.makeSampler(99), "range");
}

CrimpWorkloadConfig
smallCrimp()
{
    CrimpWorkloadConfig cfg;
    cfg.data.trajectory_poses = 80;
    cfg.data.samples_per_pose = 6;
    cfg.data.eval_probes = 200;
    cfg.model.hidden = {24};
    cfg.workers = 4;
    return cfg;
}

TEST(CrimpWorkloadTest, ErrorMetricConventions)
{
    CrimpWorkload wl(smallCrimp());
    EXPECT_EQ(wl.metricName(), "trajectory_error");
    EXPECT_TRUE(wl.lowerIsBetter());
}

TEST(CrimpWorkloadTest, UntrainedModelHasLargeError)
{
    CrimpWorkload wl(smallCrimp());
    auto m = wl.buildReplica();
    EXPECT_GT(wl.evaluate(*m), 0.2);
}

TEST(CrimpWorkloadTest, SamplersProduceRegressionBatches)
{
    CrimpWorkload wl(smallCrimp());
    auto s = wl.makeSampler(2);
    auto b = s.sample(5);
    EXPECT_EQ(b.features.rows(), 5u);
    EXPECT_EQ(b.features.cols(), 3u);
    EXPECT_EQ(b.targets.rows(), 5u);
    EXPECT_TRUE(b.labels.empty());
}

} // namespace
} // namespace core
} // namespace rog
