/**
 * @file
 * Integration tests for the engine extensions: heterogeneous compute
 * with dynamic batching, and pipelined pulls (Sec. VI-D future work).
 */
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "net/bandwidth_trace.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace core {
namespace {

CrudaWorkloadConfig
tinyCruda(std::size_t workers)
{
    CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = workers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

NetworkSetup
stableNetwork(std::size_t workers, double rate = 50e3)
{
    NetworkSetup net;
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(rate));
    return net;
}

TEST(HeterogeneityTest, DynamicBatchingEqualizesComputeTimes)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::bsp();
    cfg.iterations = 8;
    cfg.eval_every = 100;
    cfg.heterogeneous_seconds_per_sample = {0.09, 0.09, 0.18};
    cfg.dynamic_batching = true;
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(3));
    // Per-worker compute times must be near-equal.
    double lo = 1e300, hi = 0.0;
    for (const auto &r : res.iterations) {
        lo = std::min(lo, r.compute_s);
        hi = std::max(hi, r.compute_s);
    }
    EXPECT_LT(hi / lo, 1.2);
}

TEST(HeterogeneityTest, UniformBatchingCreatesComputeStragglers)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::bsp();
    cfg.iterations = 8;
    cfg.eval_every = 100;
    cfg.heterogeneous_seconds_per_sample = {0.09, 0.09, 0.27};
    cfg.dynamic_batching = false;
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(3));
    double lo = 1e300, hi = 0.0;
    double fast_stall = 0.0;
    for (const auto &r : res.iterations) {
        lo = std::min(lo, r.compute_s);
        hi = std::max(hi, r.compute_s);
        if (r.worker != 2)
            fast_stall += r.stall_s;
    }
    EXPECT_GT(hi / lo, 1.5);     // slow device computes ~3x longer.
    EXPECT_GT(fast_stall, 1.0);  // fast devices stall at the barrier.
}

TEST(HeterogeneityTest, DynamicBatchingReducesBspStall)
{
    const std::vector<double> speeds = {0.09, 0.09, 0.22};
    auto run = [&](bool dynamic) {
        CrudaWorkload workload(tinyCruda(3));
        EngineConfig cfg;
        cfg.system = SystemConfig::bsp();
        cfg.iterations = 10;
        cfg.eval_every = 100;
        cfg.heterogeneous_seconds_per_sample = speeds;
        cfg.dynamic_batching = dynamic;
        return runDistributedTraining(workload, cfg, stableNetwork(3));
    };
    const auto with = run(true);
    const auto without = run(false);
    double c, m, stall_with, stall_without;
    with.meanTimeComposition(c, m, stall_with);
    without.meanTimeComposition(c, m, stall_without);
    EXPECT_LT(stall_with, stall_without);
    EXPECT_LT(with.sim_seconds, without.sim_seconds);
}

TEST(HeterogeneityTest, WrongSpeedCountDies)
{
    CrudaWorkload workload(tinyCruda(2));
    EngineConfig cfg;
    cfg.system = SystemConfig::bsp();
    cfg.heterogeneous_seconds_per_sample = {0.1, 0.1, 0.1};
    EXPECT_DEATH(runDistributedTraining(workload, cfg,
                                        stableNetwork(2)),
                 "speed");
}

NetworkSetup
unstableNetwork(std::size_t workers)
{
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 31 + i * 1000));
    return net;
}

TEST(PipelineTest, CompletesAndKeepsInvariants)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 30;
    cfg.eval_every = 10;
    cfg.pipeline_pull = true;
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3));
    EXPECT_EQ(res.completed_iterations, 30u);
    EXPECT_EQ(res.iterations.size(), 90u);
    // Pull bytes are still delivered and accounted somewhere.
    double pulled = 0.0;
    for (const auto &r : res.iterations)
        pulled += r.bytes_pulled;
    EXPECT_GT(pulled, 0.0);
}

TEST(PipelineTest, HidesPullLatency)
{
    auto run = [&](bool pipeline) {
        CrudaWorkload workload(tinyCruda(3));
        EngineConfig cfg;
        cfg.system = SystemConfig::ssp(4);
        cfg.iterations = 30;
        cfg.eval_every = 100;
        cfg.pipeline_pull = pipeline;
        return runDistributedTraining(workload, cfg,
                                      unstableNetwork(3));
    };
    const auto piped = run(true);
    const auto plain = run(false);
    // Overlapping the pull with compute shortens the run.
    EXPECT_LT(piped.sim_seconds, plain.sim_seconds);
}

TEST(ChurnTest, DepartedWorkerDoesNotStallSurvivors)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::bsp(); // tightest gate: worst case.
    cfg.iterations = 40;
    cfg.eval_every = 100;
    // Worker 2's battery dies ~5 iterations in.
    cfg.worker_departure_times = {1e9, 1e9, 25.0};
    const auto res = runDistributedTraining(workload, cfg,
                                            stableNetwork(3));
    ASSERT_EQ(res.worker_iterations.size(), 3u);
    EXPECT_EQ(res.worker_iterations[0], 40u);
    EXPECT_EQ(res.worker_iterations[1], 40u);
    EXPECT_LT(res.worker_iterations[2], 15u);
    EXPECT_GT(res.worker_iterations[2], 0u);
    // Survivors finish in bounded time: no deadlock on the departed
    // worker's frozen versions.
    EXPECT_LT(res.sim_seconds, 40 * 10.0);
}

TEST(ChurnTest, RogSurvivesChurnUnderInstability)
{
    CrudaWorkload workload(tinyCruda(4));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 120;
    cfg.eval_every = 40;
    cfg.worker_departure_times = {1e9, 60.0, 1e9, 120.0};
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < 4; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 51 + i * 1000));
    const auto res = runDistributedTraining(workload, cfg, net);
    EXPECT_EQ(res.worker_iterations[0], 120u);
    EXPECT_EQ(res.worker_iterations[2], 120u);
    EXPECT_LT(res.worker_iterations[1], 120u);
    // Training still improves despite losing half the team (the
    // survivors' contributions stay diluted by 1/num_workers, so
    // progress is slower — robustness, not speed, is under test).
    double first = 0.0, best = 0.0;
    for (const auto &c : res.checkpoints) {
        if (c.iteration == 0)
            first = c.metric;
        best = std::max(best, c.metric);
    }
    EXPECT_GT(best, first + 2.0);
}

TEST(ChurnTest, WrongDepartureCountDies)
{
    CrudaWorkload workload(tinyCruda(2));
    EngineConfig cfg;
    cfg.system = SystemConfig::bsp();
    cfg.worker_departure_times = {1.0};
    EXPECT_DEATH(runDistributedTraining(workload, cfg,
                                        stableNetwork(2)),
                 "departure");
}

TEST(AutoThresholdEngineTest, CompletesAndBoundsStaleness)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 60;
    cfg.eval_every = 30;
    cfg.auto_threshold = true;
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3));
    EXPECT_EQ(res.completed_iterations, 60u);
    // The controller never exceeds its configured ceiling (40).
    for (const auto &r : res.iterations)
        EXPECT_LE(r.staleness_behind, 40);
}

TEST(AutoThresholdEngineTest, AdaptsTransmissionUnderPressure)
{
    // On a very tight network the controller should end up shipping
    // smaller fractions than the fixed ROG-4 floor (32%) would.
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 80;
    cfg.eval_every = 100;
    cfg.auto_threshold = true;
    NetworkSetup net;
    const auto model = net::TraceModel::outdoor(6e3);
    for (std::size_t i = 0; i < 3; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 71 + i * 1000));
    const auto res = runDistributedTraining(workload, cfg, net);
    double min_fraction = 1.0;
    for (const auto &r : res.iterations)
        min_fraction = std::min(min_fraction, r.push_fraction);
    EXPECT_LT(min_fraction, 0.32);
}

TEST(PipelineTest, StillTrains)
{
    CrudaWorkload workload(tinyCruda(3));
    EngineConfig cfg;
    cfg.system = SystemConfig::rog(4);
    cfg.iterations = 100;
    cfg.eval_every = 50;
    cfg.pipeline_pull = true;
    const auto res = runDistributedTraining(workload, cfg,
                                            unstableNetwork(3));
    double first = 0.0, last = 0.0;
    for (const auto &c : res.checkpoints) {
        if (c.iteration == 0)
            first = c.metric;
        if (c.iteration == 100)
            last = c.metric;
    }
    EXPECT_GT(last, first + 5.0);
}

} // namespace
} // namespace core
} // namespace rog
