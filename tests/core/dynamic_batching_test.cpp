/**
 * @file
 * Unit tests for dynamic batching across heterogeneous devices.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "core/dynamic_batching.hpp"

namespace rog {
namespace core {
namespace {

std::size_t
total(const BatchAssignment &a)
{
    return std::accumulate(a.batch_sizes.begin(), a.batch_sizes.end(),
                           std::size_t{0});
}

TEST(DynamicBatchingTest, HomogeneousSplitsEvenly)
{
    const auto a = assignDynamicBatches({0.1, 0.1, 0.1, 0.1}, 80);
    EXPECT_EQ(total(a), 80u);
    for (auto b : a.batch_sizes)
        EXPECT_EQ(b, 20u);
    EXPECT_NEAR(a.imbalance, 1.0, 1e-9);
}

TEST(DynamicBatchingTest, FasterDeviceGetsMoreSamples)
{
    // Device 1 is twice as fast.
    const auto a = assignDynamicBatches({0.2, 0.1}, 30);
    EXPECT_EQ(total(a), 30u);
    EXPECT_EQ(a.batch_sizes[0], 10u);
    EXPECT_EQ(a.batch_sizes[1], 20u);
    EXPECT_NEAR(a.imbalance, 1.0, 1e-9);
}

TEST(DynamicBatchingTest, EqualizesComputeTimes)
{
    // Jetson vs laptop-style mix (paper: batch 24 vs 16).
    const auto a = assignDynamicBatches({0.09, 0.09, 0.09, 0.135}, 88);
    EXPECT_EQ(total(a), 88u);
    // Times within ~1 sample of each other.
    EXPECT_LT(a.imbalance, 1.15);
}

TEST(DynamicBatchingTest, EveryDeviceGetsAtLeastOneSample)
{
    const auto a = assignDynamicBatches({0.001, 10.0, 10.0}, 10);
    EXPECT_EQ(total(a), 10u);
    for (auto b : a.batch_sizes)
        EXPECT_GE(b, 1u);
}

TEST(DynamicBatchingTest, UniformSplitIgnoresSpeed)
{
    const auto a = assignUniformBatches({0.1, 0.4}, 20);
    EXPECT_EQ(a.batch_sizes[0], 10u);
    EXPECT_EQ(a.batch_sizes[1], 10u);
    // 4x-slower device makes the iteration 4x imbalanced.
    EXPECT_NEAR(a.imbalance, 4.0, 1e-9);
    EXPECT_NEAR(a.iteration_seconds, 4.0, 1e-9);
}

TEST(DynamicBatchingTest, DynamicBeatsUniformOnIterationTime)
{
    const std::vector<double> speeds = {0.05, 0.08, 0.08, 0.2};
    const auto dynamic = assignDynamicBatches(speeds, 96);
    const auto uniform = assignUniformBatches(speeds, 96);
    EXPECT_LT(dynamic.iteration_seconds, uniform.iteration_seconds);
    EXPECT_LT(dynamic.imbalance, uniform.imbalance);
}

TEST(DynamicBatchingTest, RemainderIsDistributed)
{
    const auto a = assignDynamicBatches({0.1, 0.1, 0.1}, 100);
    EXPECT_EQ(total(a), 100u);
}

TEST(DynamicBatchingTest, InvalidInputsDie)
{
    EXPECT_DEATH(assignDynamicBatches({}, 10), "device");
    EXPECT_DEATH(assignDynamicBatches({0.1, 0.1}, 1), "batch");
    EXPECT_DEATH(assignDynamicBatches({0.1, -0.1}, 10), "positive");
}

} // namespace
} // namespace core
} // namespace rog
