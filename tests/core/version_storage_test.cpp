/**
 * @file
 * Unit tests for RSP version storage.
 */
#include <gtest/gtest.h>

#include "core/version_storage.hpp"

namespace rog {
namespace core {
namespace {

TEST(VersionStorageTest, StartsAtZero)
{
    VersionStorage v(3, 5);
    EXPECT_EQ(v.workers(), 3u);
    EXPECT_EQ(v.units(), 5u);
    EXPECT_EQ(v.minVersion(), 0);
    EXPECT_EQ(v.get(2, 4), 0);
}

TEST(VersionStorageTest, UpdateAndGet)
{
    VersionStorage v(2, 3);
    v.update(1, 2, 7);
    EXPECT_EQ(v.get(1, 2), 7);
    EXPECT_EQ(v.get(0, 2), 0);
}

TEST(VersionStorageTest, MinVersionTracksGlobalMin)
{
    VersionStorage v(2, 2);
    v.update(0, 0, 5);
    v.update(0, 1, 5);
    v.update(1, 0, 3);
    EXPECT_EQ(v.minVersion(), 0); // (1, 1) still 0.
    v.update(1, 1, 2);
    EXPECT_EQ(v.minVersion(), 2);
}

TEST(VersionStorageTest, MinAcrossWorkersIsPerUnit)
{
    VersionStorage v(3, 2);
    v.update(0, 0, 10);
    v.update(1, 0, 4);
    v.update(2, 0, 8);
    v.update(0, 1, 1);
    v.update(1, 1, 9);
    v.update(2, 1, 9);
    EXPECT_EQ(v.minAcrossWorkers(0), 4);
    EXPECT_EQ(v.minAcrossWorkers(1), 1);
}

TEST(VersionStorageTest, RetiredWorkerExcludedFromMins)
{
    VersionStorage v(2, 2);
    v.update(0, 0, 10);
    v.update(0, 1, 10);
    // Worker 1 never pushed; retiring it must unblock the mins.
    EXPECT_EQ(v.minVersion(), 0);
    v.retireWorker(1);
    EXPECT_TRUE(v.retired(1));
    EXPECT_FALSE(v.retired(0));
    EXPECT_EQ(v.minVersion(), 10);
    EXPECT_EQ(v.minAcrossWorkers(0), 10);
}

TEST(VersionStorageTest, PerWorkerExtremes)
{
    VersionStorage v(2, 3);
    v.update(0, 0, 4);
    v.update(0, 1, 9);
    EXPECT_EQ(v.minVersionOfWorker(0), 0); // unit 2 untouched.
    EXPECT_EQ(v.maxVersionOfWorker(0), 9);
}

TEST(VersionStorageTest, MinWorkerIterationTracksSlowestWorker)
{
    VersionStorage v(3, 2);
    v.update(0, 0, 10);
    v.update(1, 0, 6);
    v.update(2, 1, 8);
    // Last pushed iterations: 10, 6, 8 -> min is 6.
    EXPECT_EQ(v.minWorkerIteration(), 6);
    v.retireWorker(1);
    EXPECT_EQ(v.minWorkerIteration(), 8);
}

TEST(VersionStorageTest, VersionsMustBeMonotone)
{
    VersionStorage v(1, 1);
    v.update(0, 0, 5);
    EXPECT_DEATH(v.update(0, 0, 3), "monotone");
}

TEST(VersionStorageTest, MinVersionCacheInvalidatedByUpdates)
{
    VersionStorage v(1, 2);
    EXPECT_EQ(v.minVersion(), 0);
    v.update(0, 0, 3);
    v.update(0, 1, 4);
    EXPECT_EQ(v.minVersion(), 3);
    v.update(0, 0, 8);
    EXPECT_EQ(v.minVersion(), 4);
}

TEST(VersionStorageTest, OutOfRangeDies)
{
    VersionStorage v(2, 2);
    EXPECT_DEATH(v.get(2, 0), "range");
    EXPECT_DEATH(v.update(0, 5, 1), "range");
}

} // namespace
} // namespace core
} // namespace rog
