/**
 * @file
 * Unit tests for ATP's importance metric (Algo 3).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "core/importance.hpp"

namespace rog {
namespace core {
namespace {

TEST(ImportanceTest, WorkerModePrioritizesStaleRows)
{
    // Equal magnitudes: oldest push wins on a worker.
    ImportanceConfig cfg;
    Rng rng(1);
    std::vector<double> mags = {1.0, 1.0, 1.0};
    std::vector<std::int64_t> iters = {5, 1, 3}; // last pushed iter.
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ImportanceTest, ServerModePrioritizesFreshRows)
{
    ImportanceConfig cfg;
    Rng rng(2);
    std::vector<double> mags = {1.0, 1.0, 1.0};
    std::vector<std::int64_t> iters = {5, 1, 3}; // last updated iter.
    const auto order =
        rankUnits(ImportanceMode::Server, cfg, mags, iters, rng);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(ImportanceTest, MagnitudeBreaksTiesAmongEquallyStale)
{
    ImportanceConfig cfg;
    Rng rng(3);
    std::vector<double> mags = {0.1, 0.9, 0.5};
    std::vector<std::int64_t> iters = {2, 2, 2};
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ImportanceTest, F2ZeroIgnoresStaleness)
{
    ImportanceConfig cfg;
    cfg.f2 = 0.0;
    Rng rng(4);
    std::vector<double> mags = {0.1, 0.9};
    std::vector<std::int64_t> iters = {0, 100};
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    EXPECT_EQ(order.front(), 1u);
}

TEST(ImportanceTest, F1ZeroIgnoresMagnitude)
{
    ImportanceConfig cfg;
    cfg.f1 = 0.0;
    Rng rng(5);
    std::vector<double> mags = {100.0, 0.001};
    std::vector<std::int64_t> iters = {10, 0};
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    EXPECT_EQ(order.front(), 1u); // the stale one.
}

TEST(ImportanceTest, StalenessTermDominatesLargeAges)
{
    // Magnitude is mean-normalized, so a row 5 iterations stale beats
    // a 3x-average-magnitude fresh row with default coefficients.
    ImportanceConfig cfg;
    Rng rng(6);
    std::vector<double> mags = {3.0, 1.0, 1.0};
    std::vector<std::int64_t> iters = {10, 5, 10};
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    EXPECT_EQ(order.front(), 1u);
}

TEST(ImportanceTest, ResultIsAlwaysAPermutation)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> mags(50);
        std::vector<std::int64_t> iters(50);
        for (std::size_t i = 0; i < 50; ++i) {
            mags[i] = rng.uniform();
            iters[i] = static_cast<std::int64_t>(rng.uniformInt(20));
        }
        ImportanceConfig cfg;
        const auto order =
            rankUnits(trial % 2 ? ImportanceMode::Worker
                                : ImportanceMode::Server,
                      cfg, mags, iters, rng);
        std::set<std::size_t> seen(order.begin(), order.end());
        EXPECT_EQ(seen.size(), 50u);
    }
}

TEST(ImportanceTest, RandomModeShuffles)
{
    ImportanceConfig cfg;
    cfg.random = true;
    Rng rng(8);
    std::vector<double> mags(100, 1.0);
    std::vector<std::int64_t> iters(100, 0);
    const auto order =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng);
    std::set<std::size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 100u);
    int displaced = 0;
    for (std::size_t i = 0; i < 100; ++i)
        if (order[i] != i)
            ++displaced;
    EXPECT_GT(displaced, 50);
}

TEST(ImportanceTest, DeterministicTieBreaking)
{
    ImportanceConfig cfg;
    Rng rng_a(9), rng_b(10);
    std::vector<double> mags(10, 1.0);
    std::vector<std::int64_t> iters(10, 3);
    const auto a =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng_a);
    const auto b =
        rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng_b);
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(a[i], i); // ties resolve to ascending index.
}

TEST(ImportanceTest, SizeMismatchDies)
{
    ImportanceConfig cfg;
    Rng rng(11);
    std::vector<double> mags(3);
    std::vector<std::int64_t> iters(4);
    EXPECT_DEATH(rankUnits(ImportanceMode::Worker, cfg, mags, iters, rng),
                 "size");
}

} // namespace
} // namespace core
} // namespace rog
