/**
 * @file
 * Thread pool and deterministic parallel-loop tests.
 *
 * The load-bearing property is the determinism contract of
 * parallel/parallel_for.hpp: every parallelFor/parallelReduce result
 * is a pure function of (inputs, grain) — bitwise independent of how
 * many threads execute the chunks.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace rog;
using parallel::chunkCount;
using parallel::parallelFor;
using parallel::parallelReduce;
using parallel::ThreadPool;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t kTasks = 257;
        std::vector<std::atomic<int>> hits(kTasks);
        pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kTasks; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPoolTest, ZeroTasksIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.run(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 100; ++round)
        pool.run(16, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 1600u);
}

TEST(ThreadPoolTest, NestedRegionsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(8 * 8);
    pool.run(8, [&](std::size_t outer) {
        // A nested region on a pool thread must not deadlock; it runs
        // the inner tasks inline on the calling thread.
        parallelFor(
            0, 8, 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t inner = lo; inner < hi; ++inner)
                    hits[outer * 8 + inner].fetch_add(1);
            },
            pool);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResolveThreadsDefaultsToOne)
{
    // The test runner does not set ROG_THREADS for this binary, and
    // setThreads has not been called, so the resolved count is 1.
    if (std::getenv("ROG_THREADS") == nullptr)
        EXPECT_EQ(ThreadPool::resolveThreads(), 1u);
}

TEST(ParallelForTest, ChunkCountMatchesCeilDiv)
{
    EXPECT_EQ(chunkCount(0, 8), 0u);
    EXPECT_EQ(chunkCount(1, 8), 1u);
    EXPECT_EQ(chunkCount(8, 8), 1u);
    EXPECT_EQ(chunkCount(9, 8), 2u);
    EXPECT_EQ(chunkCount(64, 8), 8u);
    EXPECT_EQ(chunkCount(5, 0), 5u); // grain 0 clamps to 1.
}

TEST(ParallelForTest, CoversRangeExactlyOnceForAnyThreadCount)
{
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t kN = 1003; // not a multiple of the grain.
        std::vector<int> hits(kN, 0);
        parallelFor(
            0, kN, 64,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    ++hits[i]; // disjoint chunks: no synchronization.
            },
            pool);
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i], 1) << "element " << i;
    }
}

TEST(ParallelForTest, EmptyRangeDoesNothing)
{
    ThreadPool pool(4);
    bool ran = false;
    parallelFor(
        5, 5, 8, [&](std::size_t, std::size_t) { ran = true; }, pool);
    EXPECT_FALSE(ran);
}

/**
 * The headline property: a float sum over fixed chunks plus the
 * ordered pairwise combine tree yields the *bitwise identical* result
 * for 1, 2, 4 and 8 threads, on sizes that are and are not multiples
 * of the grain.
 */
TEST(ParallelReduceTest, BitwiseIdenticalAcrossThreadCounts)
{
    Rng rng(99);
    for (std::size_t n : {1000u, 8192u, 100001u}) {
        std::vector<float> v(n);
        for (auto &x : v)
            x = static_cast<float>(rng.gaussian());

        auto reduceWith = [&](std::size_t threads) {
            ThreadPool pool(threads);
            return parallelReduce(
                0, n, 4096, 0.0f,
                [&](std::size_t lo, std::size_t hi) {
                    float s = 0.0f;
                    for (std::size_t i = lo; i < hi; ++i)
                        s += v[i];
                    return s;
                },
                [](float a, float b) { return a + b; }, pool);
        };

        const float base = reduceWith(1);
        for (std::size_t threads : {2u, 4u, 8u}) {
            const float got = reduceWith(threads);
            std::uint32_t base_bits, got_bits;
            std::memcpy(&base_bits, &base, sizeof base_bits);
            std::memcpy(&got_bits, &got, sizeof got_bits);
            EXPECT_EQ(base_bits, got_bits)
                << "n=" << n << " threads=" << threads;
        }
    }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity)
{
    ThreadPool pool(2);
    const double r = parallelReduce(
        3, 3, 8, -1.5, [](std::size_t, std::size_t) { return 0.0; },
        [](double a, double b) { return a + b; }, pool);
    EXPECT_EQ(r, -1.5);
}

TEST(ParallelReduceTest, SingleChunkMatchesSequential)
{
    ThreadPool pool(8);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    const long r = parallelReduce(
        0, v.size(), 1000, 0L,
        [&](std::size_t lo, std::size_t hi) {
            long s = 0;
            for (std::size_t i = lo; i < hi; ++i)
                s += v[i];
            return s;
        },
        [](long a, long b) { return a + b; }, pool);
    EXPECT_EQ(r, 4950);
}

/** The combine tree must see partials in chunk order, not completion
 *  order: reduce with a non-commutative combine and check the exact
 *  sequence-dependent result is stable across thread counts. */
TEST(ParallelReduceTest, CombineTreeOrderIsFixed)
{
    const std::size_t n = 64;
    auto reduceWith = [&](std::size_t threads) {
        ThreadPool pool(threads);
        // Partial per chunk = first index of the chunk; combine is
        // string-like mixing that is order sensitive.
        return parallelReduce(
            0, n, 4, 0.0,
            [](std::size_t lo, std::size_t) {
                return static_cast<double>(lo);
            },
            [](double a, double b) { return a * 1.01 + b * 0.99; },
            pool);
    };
    const double base = reduceWith(1);
    for (std::size_t threads : {2u, 4u, 8u})
        EXPECT_EQ(base, reduceWith(threads)) << "threads=" << threads;
}

} // namespace
