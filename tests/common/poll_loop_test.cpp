/**
 * @file
 * PollLoop hardening tests: timer cancellation (including from inside
 * a firing timer), fd churn (handlers watching/unwatching fds mid-
 * dispatch), EINTR tolerance under a signal storm, POLLHUP delivery,
 * POLLNVAL auto-unwatch, and the error-only strike backstop that keeps
 * a buggy handler from spinning the daemon hot.
 */
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#include <array>
#include <vector>

#include "common/poll_loop.hpp"

namespace rog {
namespace {

TEST(PollLoop, CancelledTimerNeverFires)
{
    PollLoop loop;
    int fired_a = 0;
    int fired_b = 0;
    const auto a = loop.after(0.005, [&] { ++fired_a; });
    loop.after(0.010, [&] { ++fired_b; });
    loop.cancel(a);
    loop.runUntil([&] { return fired_b > 0; }, 2.0);
    EXPECT_EQ(fired_a, 0);
    EXPECT_EQ(fired_b, 1);
}

TEST(PollLoop, TimerMayCancelAnotherDueTimer)
{
    PollLoop loop;
    int fired_victim = 0;
    int fired_late = 0;
    // Both due at effectively the same instant: the first to fire
    // cancels the second; a later one proves the loop kept going.
    PollLoop::TimerHandle victim = 0;
    loop.after(0.0, [&] { loop.cancel(victim); });
    victim = loop.after(0.0, [&] { ++fired_victim; });
    loop.after(0.01, [&] { ++fired_late; });
    loop.runUntil([&] { return fired_late > 0; }, 2.0);
    EXPECT_EQ(fired_victim, 0);
    EXPECT_EQ(fired_late, 1);
}

TEST(PollLoop, CancelAfterFireIsANoOp)
{
    PollLoop loop;
    int fired = 0;
    const auto id = loop.after(0.0, [&] { ++fired; });
    loop.runUntil([&] { return fired > 0; }, 2.0);
    loop.cancel(id); // already fired: must not throw or corrupt.
    EXPECT_EQ(fired, 1);
}

TEST(PollLoop, FdChurnHandlersMayRewireTheLoop)
{
    PollLoop loop;
    int p1[2];
    int p2[2];
    ASSERT_EQ(::pipe(p1), 0);
    ASSERT_EQ(::pipe(p2), 0);

    int got1 = 0;
    int got2 = 0;
    // Handler 1 unwatches itself and starts watching pipe 2 — fd churn
    // inside a dispatch cycle.
    loop.watch(p1[0], POLLIN, [&](short) {
        char c;
        ASSERT_EQ(::read(p1[0], &c, 1), 1);
        ++got1;
        loop.unwatch(p1[0]);
        loop.watch(p2[0], POLLIN, [&](short) {
            char d;
            ASSERT_EQ(::read(p2[0], &d, 1), 1);
            ++got2;
            loop.unwatch(p2[0]);
        });
    });
    ASSERT_EQ(::write(p1[1], "x", 1), 1);
    ASSERT_EQ(::write(p2[1], "y", 1), 1);
    loop.runUntil([&] { return got2 > 0; }, 2.0);
    EXPECT_EQ(got1, 1);
    EXPECT_EQ(got2, 1);
    EXPECT_FALSE(loop.watching(p1[0]));
    EXPECT_FALSE(loop.watching(p2[0]));

    ::close(p1[0]);
    ::close(p1[1]);
    ::close(p2[0]);
    ::close(p2[1]);
}

TEST(PollLoop, SelfUnwatchWithHeapAllocatedHandlerIsSafe)
{
    PollLoop loop;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);

    // A capture too large for std::function's small-buffer storage:
    // the callable lives on the heap, so erasing the map slot from
    // inside the call would free it mid-execution if the loop invoked
    // the stored handler in place (ASan catches the use-after-free).
    std::array<char, 256> big{};
    big[0] = 1;
    int got = 0;
    loop.watch(p[0], POLLIN, [&loop, &got, p, big](short) {
        char c;
        ASSERT_EQ(::read(p[0], &c, 1), 1);
        loop.unwatch(p[0]);
        got += big[0]; // touches the (possibly freed) capture.
    });
    ASSERT_EQ(::write(p[1], "x", 1), 1);
    loop.runUntil([&] { return got > 0; }, 2.0);
    EXPECT_EQ(got, 1);
    EXPECT_FALSE(loop.watching(p[0]));

    ::close(p[0]);
    ::close(p[1]);
}

TEST(PollLoop, PollHupIsDeliveredToTheHandler)
{
    PollLoop loop;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    ::close(p[1]); // writer gone: the read end reports POLLHUP.

    short seen = 0;
    loop.watch(p[0], POLLIN, [&](short revents) {
        seen = revents;
        loop.unwatch(p[0]); // drain-and-close, like a real handler.
    });
    loop.runUntil([&] { return seen != 0; }, 2.0);
    EXPECT_NE(seen & POLLHUP, 0);
    ::close(p[0]);
}

TEST(PollLoop, PollNvalFdIsDroppedImmediately)
{
    PollLoop loop;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    // Close the fd while it is still registered: the next poll round
    // reports POLLNVAL and the loop must drop the registration rather
    // than spin on it forever.
    loop.watch(p[0], POLLIN, [](short) {});
    ::close(p[0]);
    ::close(p[1]);
    for (int i = 0; i < 3 && loop.watching(p[0]); ++i)
        loop.step(0.01);
    EXPECT_FALSE(loop.watching(p[0]));
    // With nothing left to wait for, step() reports it is done.
    EXPECT_FALSE(loop.step(0.0));
}

TEST(PollLoop, ErrorOnlyStrikesForceUnwatchABuggyHandler)
{
    PollLoop loop;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    ::close(p[0]); // reader gone: the write end reports POLLERR.

    // Registered with no requested events, so every wakeup is
    // error-only; the handler deliberately ignores the condition.
    int wakes = 0;
    loop.watch(p[1], 0, [&](short revents) {
        EXPECT_NE(revents & POLLERR, 0);
        ++wakes;
    });
    for (int i = 0; i < PollLoop::kMaxErrorStrikes + 4 &&
                    loop.watching(p[1]);
         ++i)
        loop.step(0.0);
    EXPECT_FALSE(loop.watching(p[1]))
        << "error-only fd was never force-unwatched";
    EXPECT_LE(wakes, PollLoop::kMaxErrorStrikes);
    ::close(p[1]);
}

TEST(PollLoop, HandlerThatReactsIsNeverStruckOut)
{
    PollLoop loop;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    ::close(p[0]);

    // Re-registering (even identically) counts as reacting: strikes
    // reset, so a handler mid-reconnect keeps its registration.
    int wakes = 0;
    std::function<void(short)> handler = [&](short) {
        ++wakes;
        loop.watch(p[1], 0, [&](short r) { handler(r); });
    };
    loop.watch(p[1], 0, [&](short r) { handler(r); });
    for (int i = 0; i < PollLoop::kMaxErrorStrikes * 3; ++i)
        loop.step(0.0);
    EXPECT_TRUE(loop.watching(p[1]));
    EXPECT_GE(wakes, PollLoop::kMaxErrorStrikes);
    loop.unwatch(p[1]);
    ::close(p[1]);
}

TEST(PollLoop, StepSurvivesEintrSignalStorm)
{
    // A 2 ms interval timer interrupts every poll sleep; the loop must
    // treat EINTR as a timeout and still fire its own timers on time.
    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: poll really returns EINTR.
    ASSERT_EQ(::sigaction(SIGALRM, &sa, &old), 0);
    itimerval storm{};
    storm.it_interval.tv_usec = 2000;
    storm.it_value.tv_usec = 2000;
    itimerval none{};
    ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

    PollLoop loop;
    int fired = 0;
    loop.after(0.05, [&] { ++fired; });
    const bool done = loop.runUntil([&] { return fired > 0; }, 5.0);

    ::setitimer(ITIMER_REAL, &none, nullptr);
    ::sigaction(SIGALRM, &old, nullptr);
    EXPECT_TRUE(done);
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace rog
