/**
 * @file
 * BufferPool lease/recycle behaviour: reuse after return, occupancy
 * stats, the capacity caps, and steady-state zero allocation.
 */
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"

namespace rog {
namespace {

TEST(BufferPoolTest, LeaseHasRequestedSize)
{
    BufferPool pool;
    auto a = pool.leaseBytes(100);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_FALSE(a.empty());
    auto f = pool.leaseFloats(7);
    EXPECT_EQ(f.size(), 7u);
    auto ix = pool.leaseIndices(3);
    EXPECT_EQ(ix.size(), 3u);
}

TEST(BufferPoolTest, ReturnedBufferIsReused)
{
    BufferPool pool;
    {
        auto a = pool.leaseBytes(512);
        a[0] = 42; // write so the capacity really exists.
    }
    auto b = pool.leaseBytes(256); // smaller fits the recycled buffer.
    const auto st = pool.stats();
    EXPECT_EQ(st.leases, 2u);
    EXPECT_EQ(st.reuses, 1u);
    EXPECT_EQ(st.allocations, 1u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.5);
}

TEST(BufferPoolTest, OutstandingAndPeakTrackLiveLeases)
{
    BufferPool pool;
    {
        auto a = pool.leaseBytes(8);
        auto b = pool.leaseBytes(8);
        auto c = pool.leaseFloats(8);
        EXPECT_EQ(pool.stats().outstanding, 3u);
    }
    const auto st = pool.stats();
    EXPECT_EQ(st.outstanding, 0u);
    EXPECT_EQ(st.peak_outstanding, 3u);
    EXPECT_GT(st.resident_bytes, 0u);
}

TEST(BufferPoolTest, MoveTransfersOwnership)
{
    BufferPool pool;
    auto a = pool.leaseBytes(16);
    auto *ptr = a.data();
    BufferPool::Lease<std::uint8_t> b = std::move(a);
    EXPECT_EQ(b.data(), ptr);
    EXPECT_EQ(b.size(), 16u);
    EXPECT_EQ(pool.stats().outstanding, 1u);
    b.release();
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPoolTest, OversizedBuffersAreDroppedNotPooled)
{
    BufferPool pool;
    { auto big = pool.leaseBytes(BufferPool::kMaxPooledCapacity + 1); }
    const auto st = pool.stats();
    EXPECT_EQ(st.dropped, 1u);
    EXPECT_EQ(st.resident_bytes, 0u);
}

TEST(BufferPoolTest, FreeListDepthIsCapped)
{
    BufferPool pool;
    // Hold more leases than the free list keeps, then drop them all.
    std::vector<BufferPool::Lease<std::uint8_t>> live;
    for (std::size_t i = 0; i < BufferPool::kMaxFreeBuffers + 8; ++i)
        live.push_back(pool.leaseBytes(64));
    live.clear();
    const auto st = pool.stats();
    EXPECT_EQ(st.dropped, 8u);
    // Vectors may round capacity up, so resident bytes is a floor.
    EXPECT_GE(st.resident_bytes, BufferPool::kMaxFreeBuffers * 64u);
}

TEST(BufferPoolTest, SteadyStateAllocatesNothing)
{
    BufferPool pool;
    // Warm-up: one lease of the working-set shape per sub-pool.
    {
        auto a = pool.leaseBytes(4096);
        auto f = pool.leaseFloats(1024);
        auto ix = pool.leaseIndices(1024);
    }
    const auto warm = pool.stats();
    for (int round = 0; round < 100; ++round) {
        auto a = pool.leaseBytes(4096);
        auto f = pool.leaseFloats(512 + (round % 512));
        auto ix = pool.leaseIndices(1024);
        a[0] = static_cast<std::uint8_t>(round);
        f[0] = static_cast<float>(round);
        ix[0] = static_cast<std::size_t>(round);
    }
    const auto st = pool.stats();
    EXPECT_EQ(st.allocations, warm.allocations)
        << "steady-state leases allocated";
    EXPECT_EQ(st.reuses - warm.reuses, 300u);
}

TEST(BufferPoolTest, SetCapsReconfiguresDropBounds)
{
    BufferPool pool;
    pool.setCaps(256, 2);
    EXPECT_EQ(pool.maxPooledCapacity(), 256u);
    EXPECT_EQ(pool.maxFreeBuffers(), 2u);

    // Oversized for the new byte cap: freed on return, not pooled.
    { auto big = pool.leaseBytes(4096); }
    EXPECT_EQ(pool.stats().dropped, 1u);
    EXPECT_EQ(pool.stats().resident_bytes, 0u);

    // Free-list depth capped at 2: the third concurrent return drops.
    {
        auto a = pool.leaseBytes(64);
        auto b = pool.leaseBytes(64);
        auto c = pool.leaseBytes(64);
    }
    const auto st = pool.stats();
    EXPECT_EQ(st.dropped, 2u);

    // A zero buffer cap disables pooling entirely.
    pool.setCaps(256, 0);
    const auto before = pool.stats();
    { auto d = pool.leaseBytes(64); }
    EXPECT_EQ(pool.stats().dropped, before.dropped + 1);
}

TEST(BufferPoolTest, GlobalPoolHonorsEnvCapsOnce)
{
    // The env vars are read at first use of global(); by this point in
    // the process they were either unset (defaults) or applied. Either
    // way the caps must be consistent with what the env says now only
    // if global() has not been constructed yet — so here we just
    // verify the caps are sane and the setter still works on the
    // shared instance.
    BufferPool &g = BufferPool::global();
    const std::size_t bytes = g.maxPooledCapacity();
    const std::size_t bufs = g.maxFreeBuffers();
    EXPECT_GT(bytes, 0u);
    g.setCaps(bytes, bufs); // idempotent round-trip.
    EXPECT_EQ(g.maxPooledCapacity(), bytes);
    EXPECT_EQ(g.maxFreeBuffers(), bufs);
}

TEST(BufferPoolTest, GlobalPoolIsSingleInstance)
{
    BufferPool &a = BufferPool::global();
    BufferPool &b = BufferPool::global();
    EXPECT_EQ(&a, &b);
    // Smoke: the shared pool serves leases like any other.
    auto lease = a.leaseBytes(32);
    EXPECT_EQ(lease.size(), 32u);
}

} // namespace
} // namespace rog
