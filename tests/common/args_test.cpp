/**
 * @file
 * Unit tests for the command-line parser.
 */
#include <gtest/gtest.h>

#include "common/args.hpp"

namespace rog {
namespace {

const std::set<std::string> kKnown = {"alpha", "beta", "flag"};

Args
parse(std::initializer_list<const char *> argv_list)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), argv_list.begin(), argv_list.end());
    return Args(static_cast<int>(argv.size()), argv.data(), kKnown);
}

TEST(ArgsTest, PositionalAndOptions)
{
    const auto args = parse({"run", "--alpha", "3", "--flag"});
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "run");
    EXPECT_EQ(args.get("alpha"), "3");
    EXPECT_TRUE(args.has("flag"));
    EXPECT_FALSE(args.has("beta"));
}

TEST(ArgsTest, EqualsSyntax)
{
    const auto args = parse({"--alpha=hello"});
    EXPECT_EQ(args.get("alpha"), "hello");
}

TEST(ArgsTest, NumericAccessors)
{
    const auto args = parse({"--alpha", "2.5", "--beta", "7"});
    EXPECT_DOUBLE_EQ(args.getDouble("alpha", 0.0), 2.5);
    EXPECT_EQ(args.getSize("beta", 0), 7u);
    EXPECT_EQ(args.getSize("flag", 42), 42u); // fallback.
}

TEST(ArgsTest, UnknownOptionThrows)
{
    EXPECT_THROW(parse({"--gamma", "1"}), std::runtime_error);
}

TEST(ArgsTest, NonNumericValueThrows)
{
    const auto args = parse({"--alpha", "xyz"});
    EXPECT_THROW(args.getDouble("alpha", 0.0), std::runtime_error);
}

TEST(ArgsTest, PositionalAfterOptionsThrows)
{
    // After an option with an explicit value, a bare token cannot be
    // swallowed as a value, so it is a misplaced positional.
    EXPECT_THROW(parse({"--alpha=1", "oops"}), std::runtime_error);
}

TEST(ArgsTest, FlagBeforeNextOptionTakesNoValue)
{
    const auto args = parse({"--flag", "--alpha", "1"});
    EXPECT_TRUE(args.has("flag"));
    EXPECT_EQ(args.get("flag"), "");
    EXPECT_EQ(args.get("alpha"), "1");
}

TEST(SplitCommaListTest, Basics)
{
    EXPECT_EQ(splitCommaList("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitCommaList("single"),
              (std::vector<std::string>{"single"}));
    EXPECT_TRUE(splitCommaList("").empty());
    EXPECT_EQ(splitCommaList("a,,b"),
              (std::vector<std::string>{"a", "b"}));
}

} // namespace
} // namespace rog
