/**
 * @file
 * Unit tests for the small numeric helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"

namespace rog {
namespace {

TEST(MathUtilTest, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(MathUtilTest, MeanOfKnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(MathUtilTest, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
}

TEST(MathUtilTest, StddevOfKnownValues)
{
    // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(MathUtilTest, LerpEndpointsAndMidpoint)
{
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(lerp(1.0, 3.0, 0.5), 2.0);
}

TEST(MathUtilTest, ClampWithinAndOutside)
{
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, BisectFindsSqrtTwo)
{
    const double root =
        bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(MathUtilTest, BisectFindsLinearRoot)
{
    const double root =
        bisect([](double x) { return 3.0 * x - 6.0; }, -10.0, 10.0);
    EXPECT_NEAR(root, 2.0, 1e-9);
}

TEST(MathUtilTest, BisectDiesWithoutSignChange)
{
    EXPECT_DEATH(bisect([](double) { return 1.0; }, 0.0, 1.0), "sign");
}

TEST(MathUtilTest, EwmaFirstObservationSeeds)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.seeded());
    e.observe(10.0);
    EXPECT_TRUE(e.seeded());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(MathUtilTest, EwmaBlendsObservations)
{
    Ewma e(0.25);
    e.observe(0.0);
    e.observe(8.0);
    EXPECT_DOUBLE_EQ(e.value(), 2.0);
    e.observe(2.0);
    EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(MathUtilTest, EwmaConvergesToConstantStream)
{
    Ewma e(0.3, 100.0);
    for (int i = 0; i < 100; ++i)
        e.observe(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

} // namespace
} // namespace rog
