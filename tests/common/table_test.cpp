/**
 * @file
 * Unit tests for table / series rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace rog {
namespace {

TEST(TableTest, TextContainsTitleHeaderAndCells)
{
    Table t("demo", {"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.printText(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("| a"), std::string::npos);
    EXPECT_NE(s.find("| x"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvFormat)
{
    Table t("csvdemo", {"col1", "col2"});
    t.addRow({"7", "8"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "# csvdemo\ncol1,col2\n7,8\n");
}

TEST(TableTest, RowWidthMismatchDies)
{
    Table t("bad", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(SeriesSetTest, CsvLongForm)
{
    SeriesSet s("curves", "x", "y");
    s.add("A", 0.0, 1.0);
    s.add("A", 1.0, 2.0);
    s.add("B", 0.0, 5.0);
    std::ostringstream os;
    s.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("series,x,y"), std::string::npos);
    EXPECT_NE(out.find("A,0,1"), std::string::npos);
    EXPECT_NE(out.find("B,0,5"), std::string::npos);
}

TEST(SeriesSetTest, FinalValue)
{
    SeriesSet s("f", "x", "y");
    s.add("A", 0.0, 1.0);
    s.add("A", 1.0, 42.0);
    EXPECT_DOUBLE_EQ(s.finalValue("A"), 42.0);
    EXPECT_TRUE(std::isnan(s.finalValue("missing")));
}

TEST(SeriesSetTest, SummaryListsEverySeries)
{
    SeriesSet s("sum", "x", "y");
    for (int i = 0; i < 10; ++i) {
        s.add("one", i, i * 2.0);
        s.add("two", i, i * 3.0);
    }
    std::ostringstream os;
    s.printSummary(os);
    EXPECT_NE(os.str().find("one"), std::string::npos);
    EXPECT_NE(os.str().find("two"), std::string::npos);
}

} // namespace
} // namespace rog
