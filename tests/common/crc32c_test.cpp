/**
 * @file
 * CRC32C tier equivalence: the dispatched checksum, the slicing-by-8
 * software tier, and (where the CPU has one) the hardware tier must
 * all be bitwise identical to the seed's byte-at-a-time reference —
 * including seed chaining and incremental (split) computation, since
 * the transport checksums chunks and serialize checksums streams.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/crc32c.hpp"
#include "common/rng.hpp"

namespace rog {
namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Crc32cTest, StandardCheckValue)
{
    // The iSCSI/RFC 3720 check value for "123456789".
    const auto data = bytesOf("123456789");
    EXPECT_EQ(crc32cRef(data), 0xE3069283u);
    EXPECT_EQ(crc32cSlice8(data), 0xE3069283u);
    EXPECT_EQ(crc32c(data), 0xE3069283u);
    if (crc32cHwAvailable())
        EXPECT_EQ(crc32cHw(data), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsSeed)
{
    EXPECT_EQ(crc32c({}), 0u);
    EXPECT_EQ(crc32c({}, 0xDEADBEEFu), 0xDEADBEEFu);
    EXPECT_EQ(crc32cRef({}, 0xDEADBEEFu), 0xDEADBEEFu);
    EXPECT_EQ(crc32cSlice8({}, 0xDEADBEEFu), 0xDEADBEEFu);
    if (crc32cHwAvailable())
        EXPECT_EQ(crc32cHw({}, 0xDEADBEEFu), 0xDEADBEEFu);
}

TEST(Crc32cTest, DispatchTierIsConsistent)
{
    // The dispatch decision, the feature probe, and the reported tier
    // name must agree with each other.
    const std::string tier = crc32cActiveTier();
    if (cpu::hasCrc32c()) {
        EXPECT_TRUE(crc32cHwAvailable());
        EXPECT_EQ(tier, "hw");
        EXPECT_STRNE(cpu::crc32cIsa(), "none");
    } else {
        EXPECT_FALSE(crc32cHwAvailable());
        EXPECT_EQ(tier, "slice8");
        EXPECT_STREQ(cpu::crc32cIsa(), "none");
    }
}

TEST(Crc32cTest, IncrementalSplitsMatchOneShot)
{
    Rng rng(401);
    std::vector<std::uint8_t> data(1033);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint32_t whole = crc32cRef(data);
    // Every split point, including 0 and n: crc(head) chained into
    // crc(tail) must equal the one-shot value, on every tier.
    for (std::size_t cut : {std::size_t{0}, std::size_t{1},
                            std::size_t{7}, std::size_t{8},
                            std::size_t{9}, std::size_t{512},
                            std::size_t{1032}, data.size()}) {
        const std::span<const std::uint8_t> head(data.data(), cut);
        const std::span<const std::uint8_t> tail(data.data() + cut,
                                                 data.size() - cut);
        EXPECT_EQ(crc32cRef(tail, crc32cRef(head)), whole) << cut;
        EXPECT_EQ(crc32cSlice8(tail, crc32cSlice8(head)), whole) << cut;
        EXPECT_EQ(crc32c(tail, crc32c(head)), whole) << cut;
        if (crc32cHwAvailable())
            EXPECT_EQ(crc32cHw(tail, crc32cHw(head)), whole) << cut;
    }
}

/**
 * 1000-case fuzz: random lengths (biased toward the 8-byte stride
 * boundaries every fast tier cares about), random bytes, random
 * seeds — every tier must agree with the reference bit for bit.
 */
TEST(Crc32cTest, TiersAgreeUnderFuzz)
{
    Rng rng(977);
    const bool hw = crc32cHwAvailable();
    for (int round = 0; round < 1000; ++round) {
        std::size_t n = static_cast<std::size_t>(rng.next() % 257);
        if (round % 3 == 0) // exercise stride edges hard.
            n = (n / 8) * 8 + (rng.next() % 3);
        std::vector<std::uint8_t> data(n);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        const auto seed = static_cast<std::uint32_t>(rng.next());
        const std::uint32_t want = crc32cRef(data, seed);
        ASSERT_EQ(crc32cSlice8(data, seed), want) << "round " << round;
        ASSERT_EQ(crc32c(data, seed), want) << "round " << round;
        if (hw)
            ASSERT_EQ(crc32cHw(data, seed), want) << "round " << round;
    }
}

TEST(Crc32cTest, DistinctInputsDistinctCrcs)
{
    // Sanity (not a collision test): flipping any single bit of a
    // small message changes the checksum.
    const auto base = bytesOf("rog gradient row");
    const std::uint32_t want = crc32c(base);
    for (std::size_t i = 0; i < base.size() * 8; ++i) {
        auto mod = base;
        mod[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
        EXPECT_NE(crc32c(mod), want) << i;
    }
}

} // namespace
} // namespace rog
