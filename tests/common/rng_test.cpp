/**
 * @file
 * Unit tests for the deterministic random number generator.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace rog {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias)
{
    Rng rng(13);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[rng.uniformInt(10)]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(17);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianShiftScale)
{
    Rng rng(19);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(23);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(0.5);
    EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, DirichletSumsToOne)
{
    Rng rng(29);
    for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
        const auto v = rng.dirichlet(8, alpha);
        ASSERT_EQ(v.size(), 8u);
        double sum = 0.0;
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(RngTest, DirichletSmallAlphaIsSkewed)
{
    Rng rng(31);
    // With alpha = 0.05 most mass concentrates on few coordinates;
    // with alpha = 50 the draw is near-uniform.
    double max_small = 0.0, max_large = 0.0;
    for (int i = 0; i < 50; ++i) {
        auto s = rng.dirichlet(10, 0.05);
        auto l = rng.dirichlet(10, 50.0);
        max_small += *std::max_element(s.begin(), s.end());
        max_large += *std::max_element(l.begin(), l.end());
    }
    EXPECT_GT(max_small / 50, 0.6);
    EXPECT_LT(max_large / 50, 0.25);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<std::size_t> v(100);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = i;
    rng.shuffle(v);
    std::set<std::size_t> seen(v.begin(), v.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ShuffleActuallyMoves)
{
    Rng rng(41);
    std::vector<std::size_t> v(100);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = i;
    rng.shuffle(v);
    int moved = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
        if (v[i] != i)
            ++moved;
    EXPECT_GT(moved, 80);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng parent1(99);
    Rng parent2(99);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child1.next(), child2.next());
    // Parent and child do not track each other.
    Rng parent3(99);
    Rng child3 = parent3.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent3.next() == child3.next())
            ++same;
    EXPECT_LT(same, 2);
}

/** Property sweep: uniformInt(n) stays in range for many n. */
class UniformIntRange : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UniformIntRange, AlwaysBelowBound)
{
    Rng rng(GetParam());
    const std::uint64_t n = GetParam() % 97 + 1;
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.uniformInt(n), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformIntRange,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144));

} // namespace
} // namespace rog
