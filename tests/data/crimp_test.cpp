/**
 * @file
 * Unit tests for the CRIMP synthetic implicit-mapping task.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "data/crimp.hpp"

namespace rog {
namespace data {
namespace {

CrimpConfig
smallConfig()
{
    CrimpConfig cfg;
    cfg.trajectory_poses = 60;
    cfg.samples_per_pose = 4;
    cfg.eval_probes = 100;
    return cfg;
}

TEST(CrimpTest, SceneSdfSigns)
{
    CrimpConfig cfg;
    Rng rng(1);
    Scene scene(cfg, rng);
    // Outside the room the wall SDF is negative.
    EXPECT_LT(scene.sdf(5.0f, 5.0f, 5.0f), 0.0f);
    // Near a wall, |sdf| is small; at room center it depends on
    // spheres but must be finite.
    const float center = scene.sdf(0.0f, 0.0f, 0.0f);
    EXPECT_TRUE(std::isfinite(center));
    EXPECT_LT(std::fabs(center), 2.0f * cfg.room_half_extent);
}

TEST(CrimpTest, TaskShapes)
{
    const auto task = makeCrimpTask(smallConfig());
    EXPECT_EQ(task.train.size(), 60u * 4u);
    EXPECT_EQ(task.train.features.cols(), 3u);
    EXPECT_EQ(task.train.targets.cols(), 1u);
    EXPECT_FALSE(task.train.isClassification());
    EXPECT_EQ(task.eval_probes.size(), 100u);
    EXPECT_EQ(task.pose_of_sample.size(), task.train.size());
}

TEST(CrimpTest, TargetsMatchAnalyticScene)
{
    // Targets are finite and bounded by the room scale.
    const auto task = makeCrimpTask(smallConfig());
    for (std::size_t i = 0; i < task.train.size(); ++i) {
        const float t = task.train.targets.at(i, 0);
        EXPECT_TRUE(std::isfinite(t));
        EXPECT_LT(std::fabs(t), 4.0f);
    }
}

TEST(CrimpTest, DeterministicForSameSeed)
{
    const auto a = makeCrimpTask(smallConfig());
    const auto b = makeCrimpTask(smallConfig());
    for (std::size_t i = 0; i < a.train.features.size(); ++i)
        EXPECT_EQ(a.train.features[i], b.train.features[i]);
}

TEST(CrimpTest, SplitCoversEverySampleOnce)
{
    const auto task = makeCrimpTask(smallConfig());
    const auto shards = splitTrajectory(task, 4);
    ASSERT_EQ(shards.size(), 4u);
    std::vector<int> seen(task.train.size(), 0);
    for (const auto &shard : shards)
        for (auto idx : shard)
            seen[idx]++;
    // Every sample appears at least once; pose-0 samples are shared
    // by every worker (the common starting frame).
    for (std::size_t i = 0; i < seen.size(); ++i) {
        if (task.pose_of_sample[i] == 0)
            EXPECT_EQ(seen[i], 4) << i;
        else
            EXPECT_EQ(seen[i], 1) << i;
    }
}

TEST(CrimpTest, SplitIsContiguousByPose)
{
    const auto task = makeCrimpTask(smallConfig());
    const auto shards = splitTrajectory(task, 3);
    for (const auto &shard : shards) {
        std::set<std::size_t> poses;
        for (auto idx : shard)
            poses.insert(task.pose_of_sample[idx]);
        // Ignoring the shared pose 0, poses form a contiguous range.
        poses.erase(0);
        if (poses.empty())
            continue;
        const std::size_t lo = *poses.begin();
        const std::size_t hi = *poses.rbegin();
        EXPECT_EQ(poses.size(), hi - lo + 1);
    }
}

TEST(CrimpTest, SplitSingleWorkerGetsEverything)
{
    const auto task = makeCrimpTask(smallConfig());
    const auto shards = splitTrajectory(task, 1);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].size(), task.train.size());
}

} // namespace
} // namespace data
} // namespace rog
