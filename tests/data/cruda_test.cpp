/**
 * @file
 * Unit tests for the CRUDA synthetic domain-adaptation task.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/cruda.hpp"

namespace rog {
namespace data {
namespace {

CrudaConfig
smallConfig()
{
    CrudaConfig cfg;
    cfg.input_dim = 16;
    cfg.classes = 5;
    cfg.train_samples = 500;
    cfg.test_samples = 200;
    return cfg;
}

TEST(CrudaTest, ShapesAndLabelRanges)
{
    const auto task = makeCrudaTask(smallConfig());
    EXPECT_EQ(task.clean_train.size(), 500u);
    EXPECT_EQ(task.shifted_train.size(), 500u);
    EXPECT_EQ(task.shifted_test.size(), 200u);
    EXPECT_EQ(task.clean_train.features.cols(), 16u);
    EXPECT_TRUE(task.clean_train.isClassification());
    for (auto y : task.shifted_train.labels)
        EXPECT_LT(y, 5u);
}

TEST(CrudaTest, DeterministicForSameSeed)
{
    const auto a = makeCrudaTask(smallConfig());
    const auto b = makeCrudaTask(smallConfig());
    ASSERT_EQ(a.clean_train.size(), b.clean_train.size());
    for (std::size_t i = 0; i < a.clean_train.features.size(); ++i)
        EXPECT_EQ(a.clean_train.features[i], b.clean_train.features[i]);
    for (std::size_t i = 0; i < a.shifted_test.features.size(); ++i)
        EXPECT_EQ(a.shifted_test.features[i], b.shifted_test.features[i]);
}

TEST(CrudaTest, DifferentSeedsDiffer)
{
    auto cfg = smallConfig();
    const auto a = makeCrudaTask(cfg);
    cfg.seed = 777;
    const auto b = makeCrudaTask(cfg);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.clean_train.features.size(); ++i)
        diff += std::fabs(a.clean_train.features[i] -
                          b.clean_train.features[i]);
    EXPECT_GT(diff, 1.0);
}

/** Class centroids of a dataset. */
std::vector<std::vector<double>>
centroids(const Dataset &d, std::size_t classes)
{
    const std::size_t dim = d.features.cols();
    std::vector<std::vector<double>> centroid(
        classes, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> count(classes, 0);
    for (std::size_t i = 0; i < d.size(); ++i) {
        auto row = d.features.row(i);
        for (std::size_t j = 0; j < dim; ++j)
            centroid[d.labels[i]][j] += row[j];
        ++count[d.labels[i]];
    }
    for (std::size_t c = 0; c < classes; ++c)
        for (std::size_t j = 0; j < dim; ++j)
            centroid[c][j] /= std::max<double>(1.0, count[c]);
    return centroid;
}

/** Nearest-centroid accuracy of @p d against given class centroids. */
double
centroidAccuracy(const Dataset &d,
                 const std::vector<std::vector<double>> &centroid)
{
    const std::size_t dim = d.features.cols();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        auto row = d.features.row(i);
        double best = 1e18;
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < centroid.size(); ++c) {
            double dist = 0.0;
            for (std::size_t j = 0; j < dim; ++j) {
                const double v = row[j] - centroid[c][j];
                dist += v * v;
            }
            if (dist < best) {
                best = dist;
                best_c = c;
            }
        }
        if (best_c == d.labels[i])
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(d.size());
}

TEST(CrudaTest, BothDomainsAreLearnableAndCentroidsMove)
{
    // Data-level guarantees: each domain is separable with its own
    // decision rule (so training can succeed on either side), and the
    // fog moves the class centroids substantially (so a model fit on
    // clean features faces a genuinely shifted input distribution —
    // the NN-level accuracy drop is asserted in workloads_test).
    const auto cfg = smallConfig();
    const auto task = makeCrudaTask(cfg);
    const auto clean_rule = centroids(task.clean_train, cfg.classes);
    const auto shifted_rule = centroids(task.shifted_train, cfg.classes);

    EXPECT_GT(centroidAccuracy(task.clean_train, clean_rule), 0.7);
    EXPECT_GT(centroidAccuracy(task.shifted_train, shifted_rule), 0.6);

    double moved = 0.0;
    for (std::size_t c = 0; c < clean_rule.size(); ++c) {
        double d = 0.0;
        for (std::size_t j = 0; j < clean_rule[c].size(); ++j) {
            const double v = clean_rule[c][j] - shifted_rule[c][j];
            d += v * v;
        }
        moved += std::sqrt(d);
    }
    moved /= static_cast<double>(clean_rule.size());
    EXPECT_GT(moved, 1.0); // centroids displaced by > 1 unit on avg.
}

TEST(CrudaTest, ShiftedDomainIsBiased)
{
    // The fog component shifts the feature mean away from zero.
    const auto task = makeCrudaTask(smallConfig());
    auto mean_norm = [](const Dataset &d) {
        std::vector<double> m(d.features.cols(), 0.0);
        for (std::size_t i = 0; i < d.size(); ++i) {
            auto row = d.features.row(i);
            for (std::size_t j = 0; j < row.size(); ++j)
                m[j] += row[j];
        }
        double norm = 0.0;
        for (double v : m) {
            v /= static_cast<double>(d.size());
            norm += v * v;
        }
        return std::sqrt(norm);
    };
    EXPECT_GT(mean_norm(task.shifted_train),
              mean_norm(task.clean_train) + 0.3);
}

TEST(CrudaTest, InvalidConfigDies)
{
    CrudaConfig cfg = smallConfig();
    cfg.classes = 1;
    EXPECT_DEATH(makeCrudaTask(cfg), "invalid");
}

} // namespace
} // namespace data
} // namespace rog
