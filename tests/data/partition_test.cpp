/**
 * @file
 * Unit tests for dataset partitioning, including the property that the
 * Dirichlet concentration controls non-IID skew.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/partition.hpp"

namespace rog {
namespace data {
namespace {

Dataset
labeledDataset(std::size_t n, std::uint32_t classes, std::uint64_t seed)
{
    Dataset d;
    d.features = tensor::Tensor(n, 2);
    d.labels.resize(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        d.labels[i] = static_cast<std::uint32_t>(rng.uniformInt(classes));
    return d;
}

TEST(PartitionTest, DirichletCoversEverySampleExactlyOnce)
{
    const auto d = labeledDataset(1000, 10, 1);
    Rng rng(2);
    const auto shards = dirichletPartition(d, 4, 0.5, rng);
    ASSERT_EQ(shards.size(), 4u);
    std::vector<int> seen(1000, 0);
    for (const auto &s : shards)
        for (auto i : s)
            seen[i]++;
    for (int c : seen)
        EXPECT_EQ(c, 1);
}

TEST(PartitionTest, DirichletNoEmptyShards)
{
    const auto d = labeledDataset(200, 4, 3);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        const auto shards = dirichletPartition(d, 8, 0.05, rng);
        for (const auto &s : shards)
            EXPECT_FALSE(s.empty());
    }
}

/** Property: smaller alpha gives larger label skew. */
class DirichletSkew : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DirichletSkew, SmallAlphaMoreSkewedThanLarge)
{
    const auto d = labeledDataset(4000, 10, GetParam());
    Rng rng_small(GetParam() * 3 + 1);
    Rng rng_large(GetParam() * 3 + 2);
    const auto skew_small =
        partitionSkew(d, dirichletPartition(d, 4, 0.05, rng_small));
    const auto skew_large =
        partitionSkew(d, dirichletPartition(d, 4, 100.0, rng_large));
    EXPECT_GT(skew_small, skew_large);
    EXPECT_GT(skew_small, 0.3);
    EXPECT_LT(skew_large, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirichletSkew,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PartitionTest, IidPartitionIsBalanced)
{
    Rng rng(5);
    const auto shards = iidPartition(1001, 4, rng);
    ASSERT_EQ(shards.size(), 4u);
    std::size_t total = 0;
    for (const auto &s : shards) {
        EXPECT_GE(s.size(), 250u);
        EXPECT_LE(s.size(), 251u);
        total += s.size();
    }
    EXPECT_EQ(total, 1001u);
}

TEST(PartitionTest, IidPartitionNearZeroSkew)
{
    const auto d = labeledDataset(4000, 10, 9);
    Rng rng(6);
    const auto shards = iidPartition(4000, 4, rng);
    EXPECT_LT(partitionSkew(d, shards), 0.1);
}

TEST(PartitionTest, RegressionDatasetDies)
{
    Dataset d;
    d.features = tensor::Tensor(10, 2);
    d.targets = tensor::Tensor(10, 1);
    Rng rng(7);
    EXPECT_DEATH(dirichletPartition(d, 2, 1.0, rng), "labels");
}

} // namespace
} // namespace data
} // namespace rog
