/**
 * @file
 * Unit tests for the Tensor container.
 */
#include <gtest/gtest.h>
#include <cmath>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rog {
namespace tensor {
namespace {

TEST(TensorTest, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, ConstructionZeroInitializes)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillValueConstruction)
{
    Tensor t(2, 2, 7.5f);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 7.5f);
}

TEST(TensorTest, AtIsRowMajor)
{
    Tensor t(2, 3);
    t.at(1, 2) = 42.0f;
    EXPECT_EQ(t[1 * 3 + 2], 42.0f);
    EXPECT_EQ(t.at(1, 2), 42.0f);
}

TEST(TensorTest, RowSpanViewsUnderlyingData)
{
    Tensor t(3, 4);
    auto row = t.row(1);
    ASSERT_EQ(row.size(), 4u);
    row[0] = 9.0f;
    EXPECT_EQ(t.at(1, 0), 9.0f);
}

TEST(TensorTest, ConstRowSpan)
{
    Tensor t(2, 2, 3.0f);
    const Tensor &ct = t;
    auto row = ct.row(0);
    EXPECT_EQ(row[1], 3.0f);
}

TEST(TensorTest, FillAndZero)
{
    Tensor t(2, 2);
    t.fill(5.0f);
    EXPECT_EQ(t.at(1, 1), 5.0f);
    t.zero();
    EXPECT_EQ(t.at(1, 1), 0.0f);
}

TEST(TensorTest, SameShape)
{
    Tensor a(2, 3), b(2, 3), c(3, 2);
    EXPECT_TRUE(a.sameShape(b));
    EXPECT_FALSE(a.sameShape(c));
}

TEST(TensorTest, RandomNormalHasRequestedSpread)
{
    Rng rng(5);
    Tensor t(100, 100);
    t.randomNormal(rng, 2.0f);
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        sum += t[i];
        sq += static_cast<double>(t[i]) * t[i];
    }
    const double n = static_cast<double>(t.size());
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(TensorTest, RandomUniformRespectsBound)
{
    Rng rng(6);
    Tensor t(10, 10);
    t.randomUniform(rng, 0.5f);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -0.5f);
        EXPECT_LT(t[i], 0.5f);
    }
}

TEST(TensorTest, OutOfRangeAccessDies)
{
    Tensor t(2, 2);
    EXPECT_DEATH(t.at(2, 0), "out of range");
    EXPECT_DEATH(t.row(5), "out of range");
}

} // namespace
} // namespace tensor
} // namespace rog
