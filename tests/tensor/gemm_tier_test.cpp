/**
 * @file
 * Forced-tier dispatch sweep: exercises every compiled-in GEMM tier
 * through the packed engine, checks the introspection surface
 * (tierName / tierIsa / matmulActiveTier / matmulIsa), and pins the
 * structural invariants the driver relies on (MR divides the row
 * chunk, kernels exist iff the tier reports available).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rog;
using tensor::gemm::Tier;

const Tier kAllTiers[] = {Tier::Avx512, Tier::Avx2, Tier::Neon,
                          Tier::Packed};

TEST(GemmTierTest, PackedTierAlwaysAvailable)
{
    EXPECT_TRUE(tensor::gemm::tierAvailable(Tier::Packed));
    EXPECT_NE(tensor::gemm::kernel(Tier::Packed), nullptr);
}

TEST(GemmTierTest, KernelExistsIffAvailable)
{
    for (Tier t : kAllTiers)
        EXPECT_EQ(tensor::gemm::tierAvailable(t),
                  tensor::gemm::kernel(t) != nullptr)
            << tensor::gemm::tierName(t);
}

TEST(GemmTierTest, TileShapesDivideRowChunk)
{
    // The parallel driver hands out kRowChunk rows per chunk; every
    // tier's MR must divide it so chunk boundaries never split a tile
    // differently than a single-threaded run would.
    for (Tier t : kAllTiers) {
        const tensor::gemm::MicroKernel *uk = tensor::gemm::kernel(t);
        if (uk == nullptr)
            continue;
        EXPECT_GT(uk->mr, 0u);
        EXPECT_GT(uk->nr, 0u);
        EXPECT_LE(uk->mr, tensor::gemm::kMaxMr);
        EXPECT_LE(uk->nr, tensor::gemm::kMaxNr);
        EXPECT_EQ(tensor::gemm::kRowChunk % uk->mr, 0u)
            << tensor::gemm::tierName(t);
    }
}

TEST(GemmTierTest, NamesAndIsaStringsAreStable)
{
    EXPECT_STREQ(tensor::gemm::tierName(Tier::Avx512), "avx512");
    EXPECT_STREQ(tensor::gemm::tierName(Tier::Avx2), "avx2");
    EXPECT_STREQ(tensor::gemm::tierName(Tier::Neon), "neon");
    EXPECT_STREQ(tensor::gemm::tierName(Tier::Packed), "packed");
    EXPECT_STREQ(tensor::gemm::tierIsa(Tier::Packed), "portable");
}

TEST(GemmTierTest, ActiveTierIsAvailableAndIntrospectable)
{
    const Tier active = tensor::gemm::activeTier();
    EXPECT_TRUE(tensor::gemm::tierAvailable(active));
    EXPECT_STREQ(tensor::matmulActiveTier(),
                 tensor::gemm::tierName(active));
    EXPECT_STREQ(tensor::matmulIsa(), tensor::gemm::tierIsa(active));
}

TEST(GemmTierTest, EveryAvailableTierMatchesReference)
{
    Rng rng(11);
    // 61 x 67 x 53: prime everything, ragged against every tile shape.
    const std::size_t m = 61, k = 67, n = 53;
    tensor::Tensor a(m, k), b(k, n);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    tensor::Tensor want(m, n);
    tensor::ref::matmul(a, b, want);

    std::set<std::string> exercised;
    for (Tier t : kAllTiers) {
        if (!tensor::gemm::tierAvailable(t))
            continue;
        exercised.insert(tensor::gemm::tierName(t));
        tensor::Tensor got(m, n);
        tensor::gemm::run(t, {a.data(), k, 1}, {b.data(), n, 1},
                          got.data(), n, m, n, k);
        for (std::size_t i = 0; i < got.size(); ++i) {
            const float w = want.data()[i];
            const float tol =
                1e-5f * std::max(1.0f, std::fabs(w)) * 4.0f;
            ASSERT_NEAR(got.data()[i], w, tol)
                << tensor::gemm::tierName(t) << " element " << i;
        }
    }
    // The sweep is only meaningful if it ran something; packed always
    // exists, and CI's native job also covers the SIMD tiers.
    EXPECT_FALSE(exercised.empty());
    EXPECT_TRUE(exercised.count("packed"));
}

TEST(GemmTierTest, ZeroKZeroFillsOutput)
{
    // k == 0 contracts over nothing: out must be zero, not stale.
    tensor::Tensor out(5, 7);
    for (std::size_t i = 0; i < out.size(); ++i)
        out.data()[i] = 3.0f;
    for (Tier t : kAllTiers) {
        if (!tensor::gemm::tierAvailable(t))
            continue;
        tensor::gemm::run(t, {nullptr, 0, 1}, {nullptr, 7, 1},
                          out.data(), 7, 5, 7, 0);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out.data()[i], 0.0f);
    }
}

} // namespace
