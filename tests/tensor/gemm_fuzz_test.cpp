/**
 * @file
 * Packed-panel GEMM equivalence fuzz: every available dispatch tier vs
 * a double-precision oracle across odd/prime shapes (1..129), all
 * transpose variants, special values (NaN / ±0.0 / denormals / ±Inf),
 * and bitwise identity across thread counts.
 *
 * Error model: each output element is one k-ascending accumulator
 * chain (per K-block, merged in block order), so the float error is
 * bounded by a small multiple of eps times the absolute-value sum of
 * the products. FMA tiers round *less* (fused multiply-add), but the
 * same bound covers them; the bound scales with sqrt(k) for random
 * inputs with k-term worst case as cushion.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rog;
using tensor::gemm::Operand;
using tensor::gemm::Tier;

constexpr float kEps = 1.192092896e-7f; // 2^-23.

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers;
    for (Tier t :
         {Tier::Avx512, Tier::Avx2, Tier::Neon, Tier::Packed})
        if (tensor::gemm::tierAvailable(t))
            tiers.push_back(t);
    return tiers;
}

enum class Variant { Plain, TransA, TransB };

/** Run one GEMM variant through the packed engine with a forced tier.
 *  Operand tensors are shaped as the public entry points expect. */
void
runVariant(Tier tier, Variant v, const tensor::Tensor &a,
           const tensor::Tensor &b, tensor::Tensor &out)
{
    const std::size_t m = out.rows(), n = out.cols();
    Operand av{}, bv{};
    std::size_t k = 0;
    switch (v) {
    case Variant::Plain:
        k = a.cols();
        av = {a.data(), k, 1};
        bv = {b.data(), n, 1};
        break;
    case Variant::TransA:
        k = a.rows();
        av = {a.data(), 1, m};
        bv = {b.data(), n, 1};
        break;
    case Variant::TransB:
        k = a.cols();
        av = {a.data(), k, 1};
        bv = {b.data(), 1, k};
        break;
    }
    tensor::gemm::run(tier, av, bv, out.data(), n, m, n, k);
}

/** Double-precision oracle plus per-element |product| sums. */
void
oracle(Variant v, const tensor::Tensor &a, const tensor::Tensor &b,
       std::size_t m, std::size_t n, std::size_t k,
       std::vector<double> &want, std::vector<double> &absum)
{
    want.assign(m * n, 0.0);
    absum.assign(m * n, 0.0);
    auto aat = [&](std::size_t i, std::size_t p) {
        return v == Variant::TransA ? a.data()[p * m + i]
                                    : a.data()[i * k + p];
    };
    auto bat = [&](std::size_t p, std::size_t j) {
        return v == Variant::TransB ? b.data()[j * k + p]
                                    : b.data()[p * n + j];
    };
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0, as = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                const double prod = static_cast<double>(aat(i, p)) *
                                    static_cast<double>(bat(p, j));
                s += prod;
                as += std::fabs(prod);
            }
            want[i * n + j] = s;
            absum[i * n + j] = as;
        }
}

void
expectClose(const tensor::Tensor &got, const std::vector<double> &want,
            const std::vector<double> &absum, std::size_t k,
            const char *label)
{
    const double tol_scale = kEps * (4.0 + 2.0 * std::sqrt(
                                               static_cast<double>(k)));
    for (std::size_t i = 0; i < got.size(); ++i) {
        const double w = want[i];
        const float g = got.data()[i];
        if (!std::isfinite(w)) {
            EXPECT_FALSE(std::isfinite(g))
                << label << " element " << i;
            if (std::isnan(w)) {
                EXPECT_TRUE(std::isnan(g)) << label << " element " << i;
            }
            continue;
        }
        const double tol = tol_scale * absum[i] + 1e-30;
        EXPECT_NEAR(static_cast<double>(g), w, tol)
            << label << " element " << i;
    }
}

struct Shape
{
    std::size_t m, k, n;
};

// Odd/prime sizes spanning 1..129: below, at, and across every tier's
// MR (4/6/8/12) and NR (8/16/32), the 24-row parallel chunk, and the
// ragged edges of all of them.
const std::vector<Shape> kFuzzShapes = {
    {1, 1, 1},     {2, 3, 5},     {7, 11, 13},  {17, 19, 23},
    {29, 31, 37},  {41, 43, 47},  {53, 59, 61}, {67, 71, 73},
    {83, 89, 97},  {101, 103, 107}, {113, 127, 129},
    {129, 1, 129}, {1, 129, 1},   {25, 129, 3},
};

class GemmFuzzTest : public ::testing::TestWithParam<Variant>
{
};

TEST_P(GemmFuzzTest, AllTiersMatchDoubleOracle)
{
    const Variant v = GetParam();
    Rng rng(42 + static_cast<std::uint64_t>(v));
    for (const Shape &s : kFuzzShapes) {
        // Operand shapes per variant (matching the public API).
        tensor::Tensor a(v == Variant::TransA ? s.k : s.m,
                         v == Variant::TransA ? s.m : s.k);
        tensor::Tensor b(v == Variant::TransB ? s.n : s.k,
                         v == Variant::TransB ? s.k : s.n);
        a.randomNormal(rng, 1.0f);
        b.randomNormal(rng, 1.0f);
        std::vector<double> want, absum;
        oracle(v, a, b, s.m, s.n, s.k, want, absum);
        for (Tier tier : availableTiers()) {
            tensor::Tensor got(s.m, s.n);
            // Poison: the first K-block must overwrite, not add.
            for (std::size_t i = 0; i < got.size(); ++i)
                got.data()[i] = 1e6f;
            runVariant(tier, v, a, b, got);
            expectClose(got, want, absum, s.k,
                        tensor::gemm::tierName(tier));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, GemmFuzzTest,
                         ::testing::Values(Variant::Plain,
                                           Variant::TransA,
                                           Variant::TransB));

TEST(GemmSpecialValuesTest, DenormalsAndSignedZeros)
{
    Rng rng(7);
    const std::size_t m = 23, k = 29, n = 31;
    tensor::Tensor a(m, k), b(k, n);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    // Sprinkle denormals and signed zeros through both operands.
    for (std::size_t i = 0; i < a.size(); i += 5)
        a.data()[i] = (i % 10 == 0) ? -0.0f : 1.4e-42f;
    for (std::size_t i = 0; i < b.size(); i += 7)
        b.data()[i] = (i % 14 == 0) ? 0.0f : -2.8e-44f;
    std::vector<double> want, absum;
    oracle(Variant::Plain, a, b, m, n, k, want, absum);
    for (Tier tier : availableTiers()) {
        tensor::Tensor got(m, n);
        runVariant(tier, Variant::Plain, a, b, got);
        expectClose(got, want, absum, k, tensor::gemm::tierName(tier));
    }
}

TEST(GemmSpecialValuesTest, NanAndInfPropagate)
{
    Rng rng(8);
    const std::size_t m = 19, k = 17, n = 13;
    tensor::Tensor a(m, k), b(k, n);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    // NaN / Inf in A only: zero-padded panel lanes multiply B, so
    // specials in discarded pad lanes must never leak — and specials
    // in valid lanes must always propagate.
    a.data()[0 * k + 3] = std::numeric_limits<float>::quiet_NaN();
    a.data()[4 * k + 0] = std::numeric_limits<float>::infinity();
    a.data()[7 * k + 11] = -std::numeric_limits<float>::infinity();
    std::vector<double> want, absum;
    oracle(Variant::Plain, a, b, m, n, k, want, absum);
    for (Tier tier : availableTiers()) {
        tensor::Tensor got(m, n);
        runVariant(tier, Variant::Plain, a, b, got);
        expectClose(got, want, absum, k, tensor::gemm::tierName(tier));
        // Rows without specials stay fully finite.
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_TRUE(std::isfinite(got.data()[1 * n + j]));
    }
}

TEST(GemmThreadDeterminismTest, BitwiseIdenticalAcrossThreadCounts)
{
    Rng rng(9);
    // k = 700 crosses multiple K-blocks (kKc = 256), so the per-block
    // merge order is exercised too; 67 x 49 leaves ragged row chunks.
    const std::vector<Shape> shapes = {
        {67, 101, 49}, {129, 700, 33}, {24, 256, 64}};
    for (const Shape &s : shapes) {
        tensor::Tensor a(s.m, s.k), b(s.k, s.n);
        a.randomNormal(rng, 1.0f);
        b.randomNormal(rng, 1.0f);
        for (Tier tier : availableTiers()) {
            parallel::ThreadPool pool1(1);
            tensor::Tensor base(s.m, s.n);
            tensor::gemm::run(tier, {a.data(), s.k, 1},
                              {b.data(), s.n, 1}, base.data(), s.n,
                              s.m, s.n, s.k, pool1);
            for (std::size_t threads : {2u, 4u, 8u}) {
                parallel::ThreadPool pool(threads);
                tensor::Tensor got(s.m, s.n);
                tensor::gemm::run(tier, {a.data(), s.k, 1},
                                  {b.data(), s.n, 1}, got.data(), s.n,
                                  s.m, s.n, s.k, pool);
                EXPECT_EQ(0, std::memcmp(base.data(), got.data(),
                                         base.size() * sizeof(float)))
                    << tensor::gemm::tierName(tier) << " threads="
                    << threads << " shape " << s.m << "x" << s.k << "x"
                    << s.n;
            }
        }
    }
}

} // namespace
