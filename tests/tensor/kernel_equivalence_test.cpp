/**
 * @file
 * Blocked/parallel kernels vs the seed's scalar reference kernels.
 *
 * The register-tiled GEMMs in tensor/ops.cpp reassociate the k-loop
 * differently from the reference i-k-j loops, so results are compared
 * within a small tolerance (not bitwise). Shapes deliberately include
 * non-multiples of the microkernel tile (MR=4, NR=16) and of the row
 * grain, so every edge path is exercised.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rog;

struct Shape
{
    std::size_t m, k, n;
};

// Mixes multiples and non-multiples of MR=4, NR=16 and the 32-row
// parallel grain, plus degenerate single-row/col cases.
const std::vector<Shape> kShapes = {
    {1, 1, 1},   {1, 7, 1},    {3, 5, 7},    {4, 16, 16},
    {5, 17, 19}, {8, 32, 48},  {13, 29, 31}, {32, 64, 33},
    {33, 70, 65}, {64, 128, 96}, {67, 101, 49},
};

float
maxRelError(const tensor::Tensor &got, const tensor::Tensor &want)
{
    EXPECT_EQ(got.rows(), want.rows());
    EXPECT_EQ(got.cols(), want.cols());
    float worst = 0.0f;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const float g = got.data()[i];
        const float w = want.data()[i];
        const float scale = std::max(1.0f, std::fabs(w));
        worst = std::max(worst, std::fabs(g - w) / scale);
    }
    return worst;
}

TEST(KernelEquivalenceTest, MatmulMatchesReference)
{
    Rng rng(11);
    for (const Shape &s : kShapes) {
        tensor::Tensor a(s.m, s.k), b(s.k, s.n);
        a.randomNormal(rng, 1.0f);
        b.randomNormal(rng, 1.0f);
        tensor::Tensor got(s.m, s.n), want(s.m, s.n);
        tensor::matmul(a, b, got);
        tensor::ref::matmul(a, b, want);
        EXPECT_LT(maxRelError(got, want), 1e-5f)
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(KernelEquivalenceTest, MatmulTransAMatchesReference)
{
    Rng rng(12);
    for (const Shape &s : kShapes) {
        tensor::Tensor a(s.k, s.m), b(s.k, s.n); // out = a^T @ b.
        a.randomNormal(rng, 1.0f);
        b.randomNormal(rng, 1.0f);
        tensor::Tensor got(s.m, s.n), want(s.m, s.n);
        tensor::matmulTransA(a, b, got);
        tensor::ref::matmulTransA(a, b, want);
        EXPECT_LT(maxRelError(got, want), 1e-5f)
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(KernelEquivalenceTest, MatmulTransBMatchesReference)
{
    Rng rng(13);
    for (const Shape &s : kShapes) {
        tensor::Tensor a(s.m, s.k), b(s.n, s.k); // out = a @ b^T.
        a.randomNormal(rng, 1.0f);
        b.randomNormal(rng, 1.0f);
        tensor::Tensor got(s.m, s.n), want(s.m, s.n);
        tensor::matmulTransB(a, b, got);
        tensor::ref::matmulTransB(a, b, want);
        EXPECT_LT(maxRelError(got, want), 1e-5f)
            << s.m << "x" << s.k << "x" << s.n;
    }
}

TEST(KernelEquivalenceTest, MatmulOverwritesStaleOutput)
{
    // The blocked kernel writes (not accumulates) its first k-slice,
    // so a dirty output buffer must not leak into the result.
    Rng rng(14);
    tensor::Tensor a(9, 13), b(13, 21);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    tensor::Tensor got(9, 21), want(9, 21);
    for (std::size_t i = 0; i < got.size(); ++i)
        got.data()[i] = 1e6f; // poison.
    tensor::matmul(a, b, got);
    tensor::ref::matmul(a, b, want);
    EXPECT_LT(maxRelError(got, want), 1e-5f);
}

/** Zeros in A exercise the dropped `av == 0` fast path: the blocked
 *  kernel must produce the same values without the branch. */
TEST(KernelEquivalenceTest, SparseInputsMatchReference)
{
    Rng rng(15);
    tensor::Tensor a(33, 47), b(47, 29);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    for (std::size_t i = 0; i < a.size(); i += 3)
        a.data()[i] = 0.0f;
    tensor::Tensor got(33, 29), want(33, 29);
    tensor::matmul(a, b, got);
    tensor::ref::matmul(a, b, want);
    EXPECT_LT(maxRelError(got, want), 1e-5f);
}

} // namespace
