/**
 * @file
 * Unit tests for tensor operations, including matmul identities used
 * by backprop (A@B, A^T@B, A@B^T must agree with hand computation).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace tensor {
namespace {

Tensor
make(std::size_t r, std::size_t c, std::initializer_list<float> vals)
{
    Tensor t(r, c);
    std::size_t i = 0;
    for (float v : vals)
        t[i++] = v;
    return t;
}

TEST(OpsTest, MatmulKnownValues)
{
    const Tensor a = make(2, 3, {1, 2, 3, 4, 5, 6});
    const Tensor b = make(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor out(2, 2);
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(OpsTest, MatmulTransAMatchesExplicitTranspose)
{
    Rng rng(3);
    Tensor a(5, 4), b(5, 6);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);

    // Explicit transpose then multiply.
    Tensor at(4, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            at.at(j, i) = a.at(i, j);
    Tensor expect(4, 6), got(4, 6);
    matmul(at, b, expect);
    matmulTransA(a, b, got);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(OpsTest, MatmulTransBMatchesExplicitTranspose)
{
    Rng rng(4);
    Tensor a(3, 7), b(5, 7);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);

    Tensor bt(7, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 7; ++j)
            bt.at(j, i) = b.at(i, j);
    Tensor expect(3, 5), got(3, 5);
    matmul(a, bt, expect);
    matmulTransB(a, b, got);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(OpsTest, MatmulShapeMismatchDies)
{
    Tensor a(2, 3), b(4, 2), out(2, 2);
    EXPECT_DEATH(matmul(a, b, out), "shape");
}

TEST(OpsTest, AxpyAddsScaled)
{
    Tensor x = make(1, 3, {1, 2, 3});
    Tensor y = make(1, 3, {10, 20, 30});
    axpy(2.0f, x, y);
    EXPECT_FLOAT_EQ(y[0], 12.0f);
    EXPECT_FLOAT_EQ(y[1], 24.0f);
    EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(OpsTest, CopyAndScale)
{
    Tensor x = make(1, 2, {3, -4});
    Tensor y(1, 2);
    copy(x, y);
    EXPECT_FLOAT_EQ(y[1], -4.0f);
    scale(y, -0.5f);
    EXPECT_FLOAT_EQ(y[0], -1.5f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
}

TEST(OpsTest, AddRowBiasBroadcasts)
{
    Tensor x(2, 3, 1.0f);
    Tensor bias = make(1, 3, {1, 2, 3});
    addRowBias(x, bias);
    EXPECT_FLOAT_EQ(x.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(x.at(1, 2), 4.0f);
}

TEST(OpsTest, ReluForwardBackward)
{
    Tensor x = make(1, 4, {-1, 0, 2, -3});
    Tensor out(1, 4), dout(1, 4, 1.0f), din(1, 4);
    relu(x, out);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[2], 2.0f);
    reluBackward(x, dout, din);
    EXPECT_FLOAT_EQ(din[0], 0.0f);
    EXPECT_FLOAT_EQ(din[2], 1.0f);
    EXPECT_FLOAT_EQ(din[3], 0.0f);
}

TEST(OpsTest, TanhForwardBackward)
{
    Tensor x = make(1, 2, {0.0f, 1.0f});
    Tensor out(1, 2), dout(1, 2, 1.0f), din(1, 2);
    tanhForward(x, out);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_NEAR(out[1], std::tanh(1.0f), 1e-6f);
    tanhBackward(out, dout, din);
    EXPECT_FLOAT_EQ(din[0], 1.0f);
    EXPECT_NEAR(din[1], 1.0f - std::tanh(1.0f) * std::tanh(1.0f), 1e-6f);
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrder)
{
    Tensor x = make(2, 3, {1, 2, 3, 0, 0, 0});
    softmaxRows(x);
    for (std::size_t r = 0; r < 2; ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < 3; ++c)
            sum += x.at(r, c);
        EXPECT_NEAR(sum, 1.0f, 1e-6f);
    }
    EXPECT_GT(x.at(0, 2), x.at(0, 1));
    EXPECT_NEAR(x.at(1, 0), 1.0f / 3.0f, 1e-6f);
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable)
{
    Tensor x = make(1, 2, {1000.0f, 1001.0f});
    softmaxRows(x);
    EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6f);
    EXPECT_GT(x[1], x[0]);
}

TEST(OpsTest, Reductions)
{
    Tensor x = make(1, 4, {1, -2, 3, -4});
    EXPECT_FLOAT_EQ(meanAbs(x), 2.5f);
    EXPECT_FLOAT_EQ(maxAbs(x), 4.0f);
    EXPECT_NEAR(frobeniusNorm(x), std::sqrt(30.0f), 1e-5f);
    EXPECT_EQ(argmaxRow(x, 0), 2u);
}

TEST(OpsTest, MeanAbsOfEmptySpanIsZero)
{
    EXPECT_EQ(meanAbs(std::span<const float>{}), 0.0f);
}

/**
 * meanAbs accumulates in double (like frobeniusNorm): on a large
 * tensor whose exact mean is representable, a float accumulator would
 * drift visibly, a double one is exact. Pins the value so a revert to
 * float accumulation fails loudly.
 */
TEST(OpsTest, MeanAbsLargeTensorIsDoubleAccurate)
{
    // 1e6 elements alternating +/- around |v| = 0.1: exact mean(|v|)
    // is 0.1, but sum in float loses ~1e-3 relative accuracy here.
    const std::size_t n = 1'000'000;
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = (i % 2 == 0) ? 0.1f : -0.1f;
    const float m = meanAbs(std::span<const float>(v.data(), n));
    EXPECT_FLOAT_EQ(m, 0.1f);

    // And a harder mix: values spanning orders of magnitude.
    for (std::size_t i = 0; i < n; ++i)
        v[i] = (i % 4 == 0) ? 1000.0f : 0.001f;
    const double exact = (250000.0 * 1000.0 + 750000.0 * 0.001) / 1e6;
    const float got = meanAbs(std::span<const float>(v.data(), n));
    EXPECT_NEAR(got, static_cast<float>(exact), 1e-3f);
}

} // namespace
} // namespace tensor
} // namespace rog
