/**
 * @file
 * Unit tests for checkpoint merging and curve queries.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "stats/run_analysis.hpp"

namespace rog {
namespace stats {
namespace {

core::RunResult
sampleResult()
{
    core::RunResult r;
    r.workers = 2;
    // Worker 0 and 1 checkpoints at iters 0, 10, 20.
    auto add = [&](std::size_t w, std::size_t it, double t, double e,
                   double m) {
        core::CheckpointRecord c;
        c.worker = w;
        c.iteration = it;
        c.time_s = t;
        c.energy_j = e;
        c.metric = m;
        r.checkpoints.push_back(c);
    };
    add(0, 0, 0.0, 0.0, 50.0);
    add(1, 0, 0.0, 0.0, 50.0);
    add(0, 10, 100.0, 1000.0, 60.0);
    add(1, 10, 120.0, 1200.0, 64.0);
    add(0, 20, 200.0, 2000.0, 70.0);
    add(1, 20, 240.0, 2400.0, 74.0);
    // Iteration 30 reached by worker 0 only: must be dropped.
    add(0, 30, 300.0, 3000.0, 75.0);
    return r;
}

TEST(RunAnalysisTest, MergeAveragesAcrossWorkers)
{
    const auto curve = mergeCheckpoints(sampleResult());
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[0].iteration, 0u);
    EXPECT_EQ(curve[1].iteration, 10u);
    EXPECT_DOUBLE_EQ(curve[1].mean_time_s, 110.0);
    EXPECT_DOUBLE_EQ(curve[1].mean_energy_j, 1100.0);
    EXPECT_DOUBLE_EQ(curve[1].mean_metric, 62.0);
    EXPECT_EQ(curve[2].iteration, 20u);
}

TEST(RunAnalysisTest, MergeDropsPartialIterations)
{
    const auto curve = mergeCheckpoints(sampleResult());
    for (const auto &c : curve)
        EXPECT_NE(c.iteration, 30u);
}

TEST(RunAnalysisTest, TimeToReachInterpolates)
{
    const auto curve = mergeCheckpoints(sampleResult());
    // Metric 66 sits between 62 (t=110) and 72 (t=220): t = 154.
    EXPECT_NEAR(timeToReach(curve, 66.0, false), 154.0, 1e-9);
}

TEST(RunAnalysisTest, EnergyToReachInterpolates)
{
    const auto curve = mergeCheckpoints(sampleResult());
    EXPECT_NEAR(energyToReach(curve, 66.0, false), 1540.0, 1e-9);
}

TEST(RunAnalysisTest, UnreachableTargetIsNaN)
{
    const auto curve = mergeCheckpoints(sampleResult());
    EXPECT_TRUE(std::isnan(timeToReach(curve, 99.0, false)));
    EXPECT_TRUE(std::isnan(energyToReach(curve, 99.0, false)));
}

TEST(RunAnalysisTest, LowerIsBetterTargets)
{
    std::vector<MergedCheckpoint> curve = {
        {0, 0.0, 0.0, 2.0},
        {10, 100.0, 1000.0, 1.0},
        {20, 200.0, 2000.0, 0.5},
    };
    EXPECT_NEAR(timeToReach(curve, 1.0, true), 100.0, 1e-9);
    EXPECT_NEAR(timeToReach(curve, 0.75, true), 150.0, 1e-9);
    EXPECT_TRUE(std::isnan(timeToReach(curve, 0.1, true)));
}

TEST(RunAnalysisTest, MetricAtTimeClampsAndInterpolates)
{
    const auto curve = mergeCheckpoints(sampleResult());
    EXPECT_DOUBLE_EQ(metricAtTime(curve, -5.0), 50.0);
    EXPECT_DOUBLE_EQ(metricAtTime(curve, 1e9), 72.0);
    EXPECT_NEAR(metricAtTime(curve, 165.0), 67.0, 1e-9);
}

TEST(RunAnalysisTest, MetricAtIteration)
{
    const auto curve = mergeCheckpoints(sampleResult());
    EXPECT_DOUBLE_EQ(metricAtIteration(curve, 0), 50.0);
    EXPECT_NEAR(metricAtIteration(curve, 15), 67.0, 1e-9);
    EXPECT_DOUBLE_EQ(metricAtIteration(curve, 500), 72.0);
}

TEST(RunAnalysisTest, BestMetric)
{
    const auto curve = mergeCheckpoints(sampleResult());
    EXPECT_DOUBLE_EQ(bestMetric(curve, false), 72.0);
    EXPECT_DOUBLE_EQ(bestMetric(curve, true), 50.0);
    EXPECT_TRUE(std::isnan(bestMetric({}, false)));
}

TEST(RunAnalysisTest, EmptyResultYieldsEmptyCurve)
{
    core::RunResult r;
    r.workers = 2;
    EXPECT_TRUE(mergeCheckpoints(r).empty());
}

} // namespace
} // namespace stats
} // namespace rog
