/**
 * @file
 * Unit tests for timeline reconstruction and utilization summaries.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "stats/timeline.hpp"

namespace rog {
namespace stats {
namespace {

core::RunResult
sampleRun()
{
    core::RunResult r;
    r.system = "TEST";
    r.workers = 2;
    auto add = [&](std::size_t w, std::size_t it, double c, double m,
                   double s, double end) {
        core::IterationRecord rec;
        rec.worker = w;
        rec.iteration = it;
        rec.compute_s = c;
        rec.comm_s = m;
        rec.stall_s = s;
        rec.end_time_s = end;
        r.iterations.push_back(rec);
    };
    add(0, 1, 2.0, 1.0, 0.5, 3.5);
    add(0, 2, 2.0, 1.5, 0.0, 7.0);
    add(1, 1, 2.0, 0.5, 1.0, 3.5);
    r.worker_compute_s = {4.0, 2.0};
    r.worker_comm_s = {2.5, 0.5};
    r.worker_stall_s = {0.5, 1.0};
    return r;
}

TEST(TimelineTest, SegmentsCoverIterationExactly)
{
    const auto segs = buildTimeline(sampleRun());
    // Iteration (0,1): compute [0,2), comm [2,3), stall [3,3.5).
    ASSERT_GE(segs.size(), 3u);
    EXPECT_EQ(segs[0].phase, "compute");
    EXPECT_DOUBLE_EQ(segs[0].start_s, 0.0);
    EXPECT_DOUBLE_EQ(segs[0].duration_s, 2.0);
    EXPECT_EQ(segs[1].phase, "communicate");
    EXPECT_DOUBLE_EQ(segs[1].start_s, 2.0);
    EXPECT_EQ(segs[2].phase, "stall");
    EXPECT_DOUBLE_EQ(segs[2].start_s + segs[2].duration_s, 3.5);
}

TEST(TimelineTest, ZeroDurationPhasesAreSkipped)
{
    const auto segs = buildTimeline(sampleRun());
    for (const auto &s : segs)
        EXPECT_GT(s.duration_s, 0.0);
    // Iteration (0,2) has no stall segment: 2 phases only.
    int count = 0;
    for (const auto &s : segs)
        if (s.worker == 0 && s.iteration == 2)
            ++count;
    EXPECT_EQ(count, 2);
}

TEST(TimelineTest, CsvHasHeaderAndRows)
{
    std::ostringstream os;
    writeTimelineCsv(os, buildTimeline(sampleRun()));
    const std::string out = os.str();
    EXPECT_NE(out.find("worker,iteration,phase,start_s,duration_s"),
              std::string::npos);
    EXPECT_NE(out.find("0,1,compute,0,2"), std::string::npos);
}

TEST(TimelineTest, UtilizationShares)
{
    const auto run = sampleRun();
    Table t = utilizationTable("util", {run});
    std::ostringstream os;
    t.printText(os);
    // compute 6.0 / total 10.5 = 57.1%.
    EXPECT_NE(os.str().find("57.1"), std::string::npos);
    EXPECT_NE(os.str().find("TEST"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace rog
