/**
 * @file
 * Integration tests for the experiment harness.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/workloads.hpp"
#include "stats/experiment.hpp"

namespace rog {
namespace stats {
namespace {

core::CrudaWorkloadConfig
tinyCruda()
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = 2;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    return cfg;
}

ExperimentConfig
tinyExperiment()
{
    ExperimentConfig cfg;
    cfg.iterations = 12;
    cfg.eval_every = 6;
    cfg.trace_seconds = 60.0;
    return cfg;
}

TEST(ExperimentTest, MakeNetworkProducesOneTracePerWorker)
{
    core::CrudaWorkload workload(tinyCruda());
    const auto net = makeNetwork(workload, tinyExperiment());
    EXPECT_EQ(net.link_traces.size(), 2u);
    for (const auto &t : net.link_traces)
        EXPECT_GT(t.meanBytesPerSec(), 0.0);
}

TEST(ExperimentTest, NetworkIsCalibratedToCompressedModel)
{
    // A full BSP round (push+pull for `calibration_workers` devices)
    // at the mean rate should take roughly the paper's 1.47 s.
    core::CrudaWorkload workload(tinyCruda());
    auto cfg = tinyExperiment();
    cfg.env = Environment::Stable;
    const auto net = makeNetwork(workload, cfg);
    const double wire = core::modelWireBytes(
        workload, core::Granularity::WholeModel, "onebit");
    const double mean = net.link_traces[0].meanBytesPerSec();
    const double round =
        2.0 * static_cast<double>(cfg.calibration_workers) * wire / mean;
    EXPECT_NEAR(round, 1.47, 0.15);
}

TEST(ExperimentTest, SameSeedSameTraces)
{
    core::CrudaWorkload workload(tinyCruda());
    const auto a = makeNetwork(workload, tinyExperiment());
    const auto b = makeNetwork(workload, tinyExperiment());
    for (std::size_t i = 0; i < a.link_traces.size(); ++i)
        EXPECT_EQ(a.link_traces[i].samples(), b.link_traces[i].samples());
}

TEST(ExperimentTest, RunSystemsProducesComparableRuns)
{
    core::CrudaWorkload workload(tinyCruda());
    const auto runs = runSystems(
        workload,
        {core::SystemConfig::bsp(), core::SystemConfig::rog(4)},
        tinyExperiment());
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].result.system, "BSP");
    EXPECT_EQ(runs[1].result.system, "ROG-4");
    for (const auto &run : runs) {
        EXPECT_EQ(run.result.completed_iterations, 12u);
        EXPECT_FALSE(run.curve.empty());
    }
}

TEST(ExperimentTest, TablesAndSeriesRender)
{
    core::CrudaWorkload workload(tinyCruda());
    const auto runs =
        runSystems(workload, {core::SystemConfig::ssp(2)},
                   tinyExperiment());
    std::ostringstream os;
    printExperiment(os, "tiny", runs, 100.0, 50.0, false);
    const std::string out = os.str();
    EXPECT_NE(out.find("time composition"), std::string::npos);
    EXPECT_NE(out.find("SSP-2"), std::string::npos);
    EXPECT_NE(out.find("series,"), std::string::npos);
    EXPECT_NE(out.find("summary"), std::string::npos);
}

TEST(ExperimentTest, EnvironmentNames)
{
    EXPECT_EQ(environmentName(Environment::Indoor), "indoor");
    EXPECT_EQ(environmentName(Environment::Outdoor), "outdoor");
    EXPECT_EQ(environmentName(Environment::Stable), "stable");
}

} // namespace
} // namespace stats
} // namespace rog
