/**
 * @file
 * Process-level chaos against the *server*: a real 3-worker fleet
 * over loopback UDP where the parameter server itself is SIGKILLed
 * mid-run — after it has both applied a push past the kill bound and
 * written a durable checkpoint — and restarted against the same
 * checkpoint on the same port. The restarted incarnation must bump
 * its run epoch, re-admit every worker through the handshake gates,
 * and finish the run; chaos_check then proves no push was applied
 * twice across the restart boundary and the final model sits within
 * tolerance of a DES twin replaying the same crash plan.
 *
 * A second scenario partitions one worker's uplink for a window long
 * enough to trip the server's failure detector: the worker must be
 * evicted (or ride it out) and the run must still satisfy every
 * invariant once the partition heals.
 *
 * These are the `rog_chaos --kill-server-iter` / `--partition`
 * scenarios, pinned as tests.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/chaos_check.hpp"
#include "core/node_runner.hpp"

namespace rog {
namespace core {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Server log shows an apply at/past @p min_iter AND a durable
 *  checkpoint — killing earlier would test cold start, not recovery. */
bool
serverKillReady(const std::string &dir, std::int64_t min_iter)
{
    std::istringstream is(slurp(dir + "/server_run.log"));
    std::string line;
    bool applied = false;
    bool checkpointed = false;
    while (std::getline(is, line)) {
        long long iter = 0;
        if (std::sscanf(line.c_str(), "t=%*f apply w=%*u iter=%lld",
                        &iter) == 1) {
            if (iter >= min_iter)
                applied = true;
        } else if (std::sscanf(line.c_str(),
                               "t=%*f checkpoint iter=%lld",
                               &iter) == 1) {
            checkpointed = true;
        }
    }
    return applied && checkpointed;
}

pid_t
spawnServer(const NodeRunConfig &cfg, int port_fd)
{
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        const ServerRunResult res =
            runServerNode(cfg, [port_fd](std::uint16_t port) {
                if (port_fd >= 0) {
                    (void)!::write(port_fd, &port, sizeof port);
                    ::close(port_fd);
                }
            });
        _exit(res.done ? 0 : 1);
    }
    return pid;
}

pid_t
spawnWorker(const NodeRunConfig &cfg, std::size_t w,
            std::uint16_t port)
{
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        const WorkerRunResult res =
            runWorkerNode(cfg, w, "127.0.0.1", port);
        _exit(res.done ? 0 : 1);
    }
    return pid;
}

void
reportViolations(const ChaosCheckResult &res)
{
    std::ostringstream os;
    for (const auto &v : res.violations)
        os << "  " << v << '\n';
    EXPECT_TRUE(res.ok) << res.report << "violations:\n" << os.str();
}

TEST(SessionServerChaos, KilledAndRestartedServerKeepsTheRunCorrect)
{
    char dir_tmpl[] = "/tmp/rog_server_chaos_test_XXXXXX";
    char *dir = ::mkdtemp(dir_tmpl);
    ASSERT_NE(dir, nullptr);

    NodeRunConfig cfg = chaosRunDefaults();
    cfg.workers = 3;
    cfg.backend = "udp";
    cfg.artifact_dir = dir;
    cfg.train.worker_state_dir = dir;
    cfg.train.max_iters = 10;
    cfg.run_timeout_s = 60.0;
    // The DES twin replays the same crash plan (kill once a push at
    // iteration >= 3 applies, restart 0.5s later).
    cfg.server_crash_iter = 3;
    cfg.server_crash_restart_s = 0.5;

    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);
    pid_t server_pid = spawnServer(cfg, port_pipe[1]);
    ASSERT_GE(server_pid, 0);
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof port),
              static_cast<ssize_t>(sizeof port));
    ::close(port_pipe[0]);
    ASSERT_NE(port, 0);

    std::vector<pid_t> pids(cfg.workers, -1);
    std::vector<bool> exited(cfg.workers, false);
    std::vector<int> codes(cfg.workers, -1);
    for (std::size_t w = 0; w < cfg.workers; ++w)
        pids[w] = spawnWorker(cfg, w, port);

    // Supervise: SIGKILL the server once it has applied past the kill
    // bound with a checkpoint on disk, restart it 500ms later on the
    // same port against the same checkpoint, then reap everyone.
    bool server_killed = false;
    bool server_restarted = false;
    int restart_at = 0;
    const int max_polls = 60000; // 1ms cadence: 60s watchdog.
    for (int tick = 0; tick < max_polls; ++tick) {
        if (!server_killed && serverKillReady(dir, 3)) {
            ::kill(server_pid, SIGKILL);
            ::waitpid(server_pid, nullptr, 0);
            server_killed = true;
            restart_at = tick + 500;
        }
        if (server_killed && !server_restarted &&
            tick >= restart_at) {
            NodeRunConfig restart_cfg = cfg;
            restart_cfg.listen_port = port; // reclaim the old port.
            server_pid = spawnServer(restart_cfg, -1);
            ASSERT_GE(server_pid, 0);
            server_restarted = true;
        }
        bool all_done = server_killed == server_restarted;
        for (std::size_t w = 0; w < cfg.workers; ++w) {
            if (exited[w])
                continue;
            int status = 0;
            if (::waitpid(pids[w], &status, WNOHANG) == pids[w]) {
                exited[w] = true;
                codes[w] = WIFEXITED(status)
                               ? WEXITSTATUS(status)
                               : 128 + WTERMSIG(status);
            } else {
                all_done = false;
            }
        }
        if (all_done && server_killed)
            break;
        ::usleep(1000);
    }

    EXPECT_TRUE(server_killed) << "server never became kill-ready";
    ASSERT_TRUE(server_restarted);
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        EXPECT_TRUE(exited[w]) << "worker " << w << " never finished";
        if (!exited[w] && pids[w] > 0) {
            ::kill(pids[w], SIGKILL);
            ::waitpid(pids[w], nullptr, 0);
        }
        EXPECT_EQ(codes[w], 0) << "worker " << w << " exit code";
    }

    int status = 0;
    ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "restarted server exit code";

    const DesTwinResult twin = runDesTwin(cfg);
    EXPECT_TRUE(twin.done);

    ChaosCheckOptions opts;
    opts.server_restarts = 1;
    reportViolations(checkChaosRun(cfg, opts));
}

TEST(SessionServerChaos, PartitionedWorkerHealsAndRunStaysCorrect)
{
    char dir_tmpl[] = "/tmp/rog_partition_test_XXXXXX";
    char *dir = ::mkdtemp(dir_tmpl);
    ASSERT_NE(dir, nullptr);

    NodeRunConfig cfg = chaosRunDefaults();
    cfg.workers = 3;
    cfg.backend = "udp";
    cfg.artifact_dir = dir;
    cfg.train.worker_state_dir = dir;
    cfg.train.max_iters = 10;
    cfg.run_timeout_s = 60.0;

    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);
    const pid_t server_pid = spawnServer(cfg, port_pipe[1]);
    ASSERT_GE(server_pid, 0);
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof port),
              static_cast<ssize_t>(sizeof port));
    ::close(port_pipe[0]);
    ASSERT_NE(port, 0);

    // Worker 1's uplink goes dark from 20ms to 2.52s of its own
    // clock — long past the server's detection bound, so the server
    // must suspect and evict it, then cleanly re-admit it once the
    // window closes.
    std::vector<pid_t> pids(cfg.workers, -1);
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        NodeRunConfig wcfg = cfg;
        if (w == 1) {
            wcfg.fault_plan.part_begin_s = 0.02;
            wcfg.fault_plan.part_end_s = 2.52;
            wcfg.inject_faults = true;
        }
        pids[w] = spawnWorker(wcfg, w, port);
    }

    std::vector<int> codes(cfg.workers, -1);
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        int status = 0;
        ASSERT_EQ(::waitpid(pids[w], &status, 0), pids[w]);
        codes[w] = WIFEXITED(status) ? WEXITSTATUS(status)
                                     : 128 + WTERMSIG(status);
        EXPECT_EQ(codes[w], 0) << "worker " << w << " exit code";
    }
    int status = 0;
    ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "server exit code";

    const DesTwinResult twin = runDesTwin(cfg);
    EXPECT_TRUE(twin.done);

    reportViolations(checkChaosRun(cfg, ChaosCheckOptions{}));
}

} // namespace
} // namespace core
} // namespace rog
