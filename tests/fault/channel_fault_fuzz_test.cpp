/**
 * @file
 * Property/fuzz harness for the channel under fault injection: 1000
 * seeded random fault schedules (blackouts, bandwidth collapses,
 * truncations, forced timeouts) against random transfer workloads.
 * Under every schedule the channel must conserve bytes, never
 * over-deliver, fire every completion callback exactly once, and share
 * airtime fairly between symmetric flows.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "net/trace_generator.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace fault {
namespace {

constexpr std::size_t kLinks = 2;
constexpr std::size_t kTransfers = 12;

FaultPlanConfig
channelFaultConfig()
{
    FaultPlanConfig cfg;
    cfg.links = kLinks;
    cfg.workers = 0; // channel-level only: no churn.
    cfg.horizon_s = 40.0;
    return cfg;
}

struct FuzzOutcome
{
    std::vector<net::TransferResult> results;
    std::vector<int> callback_count;
    double total_delivered = 0.0;
    double final_time = 0.0;
    std::size_t rules_fired = 0;
    std::size_t rules_planned = 0;
    std::size_t channel_faulted = 0;
};

FuzzOutcome
runFaultFuzz(std::uint64_t seed)
{
    Rng rng(seed);
    const FaultPlan plan = FaultPlan::random(seed, channelFaultConfig());
    plan.validate();

    sim::Simulation sim;
    FaultInjector injector(sim, plan);
    std::vector<net::BandwidthTrace> traces;
    for (std::size_t l = 0; l < kLinks; ++l) {
        const auto base = net::generateTrace(
            net::TraceModel::outdoor(rng.uniform(5e3, 40e3)), 60.0,
            seed * 100 + l);
        traces.push_back(injector.perturbTrace(base, l, 80.0));
    }

    FuzzOutcome out;
    out.results.resize(kTransfers);
    out.callback_count.assign(kTransfers, 0);
    out.rules_planned = plan.transfer_faults.size();
    {
        net::Channel ch(sim, std::move(traces));
        injector.attach(ch);
        for (std::size_t i = 0; i < kTransfers; ++i) {
            const double start = rng.uniform(0.0, 30.0);
            const auto link = rng.uniformInt(kLinks);
            const double bytes = rng.uniform(10.0, 40e3);
            const bool timed = rng.uniform() < 0.3;
            const double timeout = timed ? rng.uniform(0.01, 2.0)
                                         : net::Channel::kNoTimeout;
            sim.after(start, [&ch, &out, i, link, bytes, timeout] {
                ch.startTransfer(link, bytes, timeout,
                                 [&out, i](net::TransferResult r) {
                                     out.results[i] = r;
                                     ++out.callback_count[i];
                                 });
            });
        }
        sim.run();
        out.total_delivered = ch.totalBytesDelivered();
        out.final_time = sim.now();
        out.rules_fired = injector.rulesFired();
        out.channel_faulted = ch.faultedTransfers();
    }
    return out;
}

class ChannelFaultFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

// 8 params x 125 seeds each = 1000 random fault schedules.
TEST_P(ChannelFaultFuzz, ConservationUnderRandomFaultSchedules)
{
    for (std::uint64_t k = 0; k < 125; ++k) {
        const std::uint64_t seed = GetParam() * 1000 + k;
        const auto out = runFaultFuzz(seed);

        double sum = 0.0;
        for (std::size_t i = 0; i < out.results.size(); ++i) {
            const auto &r = out.results[i];
            // Exactly one completion per transfer, fault or not.
            ASSERT_EQ(out.callback_count[i], 1)
                << "seed " << seed << " transfer " << i;
            EXPECT_GT(r.bytes_requested, 0.0) << "seed " << seed;
            EXPECT_GE(r.bytes_sent, 0.0) << "seed " << seed;
            // Never over-deliver, faulted or not.
            EXPECT_LE(r.bytes_sent, r.bytes_requested + 1e-6)
                << "seed " << seed;
            EXPECT_GE(r.elapsed, 0.0) << "seed " << seed;
            if (r.completed) {
                EXPECT_NEAR(r.bytes_sent, r.bytes_requested, 1e-6)
                    << "seed " << seed;
            }
            sum += r.bytes_sent;
        }
        // Byte conservation: the channel's delivery ledger equals the
        // per-transfer results.
        EXPECT_NEAR(out.total_delivered, sum, 1.0) << "seed " << seed;
        // A rule fires at most once, and only planned rules fire.
        EXPECT_LE(out.rules_fired, out.rules_planned)
            << "seed " << seed;
        EXPECT_EQ(out.channel_faulted, out.rules_fired)
            << "seed " << seed;
    }
}

TEST_P(ChannelFaultFuzz, SymmetricFlowsShareAirtimeFairly)
{
    // Two identical, simultaneous, untimed flows on the same faulty
    // link are indistinguishable, so airtime fairness must give them
    // byte-identical outcomes — under any link-fault schedule.
    for (std::uint64_t k = 0; k < 40; ++k) {
        const std::uint64_t seed = GetParam() * 5000 + k;
        FaultPlanConfig cfg;
        cfg.links = 1;
        cfg.horizon_s = 40.0;
        cfg.max_truncations_per_link = 0; // rules are one-shot, which
        cfg.max_timeouts_per_link = 0;    // would break the symmetry.
        const FaultPlan plan = FaultPlan::random(seed, cfg);

        sim::Simulation sim;
        FaultInjector injector(sim, plan);
        const auto base = net::BandwidthTrace::constant(20e3, 60.0);
        std::vector<net::BandwidthTrace> traces{
            injector.perturbTrace(base, 0, 80.0)};
        net::Channel ch(sim, std::move(traces));
        injector.attach(ch);

        std::vector<net::TransferResult> res(2);
        for (std::size_t i = 0; i < 2; ++i) {
            ch.startTransfer(0, 30e3, net::Channel::kNoTimeout,
                             [&res, i](net::TransferResult r) {
                                 res[i] = r;
                             });
        }
        sim.run();
        EXPECT_TRUE(res[0].completed) << "seed " << seed;
        EXPECT_TRUE(res[1].completed) << "seed " << seed;
        EXPECT_DOUBLE_EQ(res[0].elapsed, res[1].elapsed)
            << "seed " << seed;
        EXPECT_DOUBLE_EQ(res[0].bytes_sent, res[1].bytes_sent)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFaultFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace fault
} // namespace rog
