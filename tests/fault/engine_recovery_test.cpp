/**
 * @file
 * Crash-consistent server recovery, end to end: a `server_crash`
 * fault wipes the server's volatile state mid-run and the engine
 * restores it from the newest write-ahead checkpoint. The tentpole
 * assertion is byte-identity — a run whose server crashes exactly at
 * a checkpoint boundary must produce the *same bytes* (final model of
 * every replica, full timeline CSV) as the uninterrupted run at the
 * same seed — plus clean invariants when the crash is unaligned and
 * real state is rolled back.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/server_checkpoint.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"
#include "stats/timeline.hpp"

namespace rog {
namespace fault {
namespace {

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kIterations = 20;

core::CrudaWorkloadConfig
tinyCruda()
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = kWorkers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

core::NetworkSetup
unstableNetwork()
{
    core::NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 17 + i * 1000));
    return net;
}

std::string
ckptPath(const char *tag)
{
    return testing::TempDir() + "rog_recovery_" + tag + ".rogs";
}

struct RecoveryRun
{
    core::RunResult result;
    InvariantChecker checker;
    std::string timeline;
};

RecoveryRun
runOnce(const FaultPlan *plan, const std::string &checkpoint_path,
        std::size_t checkpoint_every)
{
    core::CrudaWorkload workload(tinyCruda());
    RecoveryRun out;
    core::EngineConfig cfg;
    cfg.system = core::SystemConfig::rog(4);
    cfg.iterations = kIterations;
    cfg.eval_every = 10;
    cfg.checkpoint_every = checkpoint_every;
    cfg.checkpoint_path = checkpoint_path;
    cfg.capture_final_model = true;
    cfg.fault_plan = plan;
    cfg.invariants = &out.checker;
    out.result =
        core::runDistributedTraining(workload, cfg, unstableNetwork());
    std::ostringstream os;
    stats::writeTimelineCsv(os, stats::buildTimeline(out.result));
    out.timeline = os.str();
    return out;
}

TEST(EngineRecovery, AlignedCrashIsByteIdenticalToUninterrupted)
{
    // Crash at iteration 15 with a checkpoint cadence of 5: the
    // write-ahead checkpoint of iteration 15 is cut immediately
    // before the crash fires, so recovery restores the exact present
    // state and the continuation must not differ in a single byte.
    const RecoveryRun base = runOnce(nullptr, ckptPath("base"), 5);
    EXPECT_TRUE(base.checker.clean()) << base.checker.report();
    EXPECT_TRUE(base.result.recoveries.empty());

    const FaultPlan plan = FaultPlan::parse("server_crash iter=15\n");
    const RecoveryRun crashed = runOnce(&plan, ckptPath("aligned"), 5);
    EXPECT_TRUE(crashed.checker.clean()) << crashed.checker.report();

    ASSERT_EQ(crashed.result.recoveries.size(), 1u);
    const auto &rr = crashed.result.recoveries[0];
    EXPECT_EQ(rr.crash_iter, 15);
    EXPECT_EQ(rr.checkpoint_iter, 15);
    EXPECT_FALSE(rr.rolled_back);

    // The tentpole: final model bytes and the full per-iteration
    // timeline compare equal as strings, not within tolerance.
    ASSERT_FALSE(base.result.final_model_bytes.empty());
    EXPECT_EQ(base.result.final_model_bytes,
              crashed.result.final_model_bytes);
    EXPECT_EQ(base.timeline, crashed.timeline);

    std::remove(ckptPath("base").c_str());
    std::remove(ckptPath("aligned").c_str());
}

TEST(EngineRecovery, AlignedCrashReplaysDeterministically)
{
    const FaultPlan plan = FaultPlan::parse("server_crash iter=15\n");
    const RecoveryRun a = runOnce(&plan, ckptPath("replay"), 5);
    const RecoveryRun b = runOnce(&plan, ckptPath("replay"), 5);
    EXPECT_EQ(a.timeline, b.timeline);
    EXPECT_EQ(a.result.final_model_bytes, b.result.final_model_bytes);
    std::remove(ckptPath("replay").c_str());
}

TEST(EngineRecovery, UnalignedCrashRollsBackAndStaysClean)
{
    // Crash at 13 against a cadence of 10: iterations 11..13 of
    // server state are lost and recovery really rolls back. The run
    // must absorb that — workers re-push forward, nothing is applied
    // twice, every invariant stays clean, the budget completes.
    const FaultPlan plan = FaultPlan::parse("server_crash iter=13\n");
    const RecoveryRun run = runOnce(&plan, ckptPath("unaligned"), 10);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();

    ASSERT_EQ(run.result.recoveries.size(), 1u);
    const auto &rr = run.result.recoveries[0];
    EXPECT_EQ(rr.crash_iter, 13);
    EXPECT_EQ(rr.checkpoint_iter, 10);
    EXPECT_TRUE(rr.rolled_back);
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);

    // The newest checkpoint on disk is from a post-recovery write.
    const auto ckpt =
        core::readServerCheckpointFile(ckptPath("unaligned"));
    EXPECT_GT(ckpt.iteration, 10);
    std::remove(ckptPath("unaligned").c_str());
}

TEST(EngineRecovery, GenesisCrashRecoversWithoutAnyCheckpoint)
{
    // No checkpoint path configured: a crash before any checkpoint
    // falls back to the genesis snapshot (iteration 0) and the run
    // still completes cleanly.
    const FaultPlan plan = FaultPlan::parse("server_crash iter=2\n");
    const RecoveryRun run = runOnce(&plan, "", 0);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();

    ASSERT_EQ(run.result.recoveries.size(), 1u);
    EXPECT_EQ(run.result.recoveries[0].checkpoint_iter, 0);
    EXPECT_TRUE(run.result.recoveries[0].rolled_back);
    EXPECT_EQ(run.result.checkpoints_written, 0u);
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);
}

TEST(EngineRecovery, RepeatedCrashesRecoverEveryTime)
{
    const FaultPlan plan =
        FaultPlan::parse("server_crash iter=6\n"
                         "server_crash iter=12\n"
                         "server_crash iter=18\n");
    const RecoveryRun run = runOnce(&plan, ckptPath("repeat"), 5);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    ASSERT_EQ(run.result.recoveries.size(), 3u);
    for (const auto &rr : run.result.recoveries) {
        EXPECT_LE(rr.checkpoint_iter, rr.crash_iter);
        EXPECT_TRUE(rr.rolled_back); // 6, 12, 18 all off-cadence.
    }
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);
    std::remove(ckptPath("repeat").c_str());
}

TEST(EngineRecovery, ServerCrashComposesWithWorkerChurn)
{
    // A worker crashes and is retired before the server itself
    // crashes: recovery must reconcile the checkpoint (which predates
    // the eviction) with the live membership truth instead of
    // resurrecting the ghost.
    const FaultPlan plan =
        FaultPlan::parse("crash worker=2 at=8 detect=3\n"
                         "server_crash iter=16\n");
    const RecoveryRun run = runOnce(&plan, ckptPath("churn"), 10);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    ASSERT_EQ(run.result.recoveries.size(), 1u);
    EXPECT_EQ(run.result.worker_iterations[0], kIterations);
    EXPECT_EQ(run.result.worker_iterations[1], kIterations);
    EXPECT_LT(run.result.worker_iterations[2], kIterations);
    std::remove(ckptPath("churn").c_str());
}

TEST(EngineRecovery, CheckpointCadenceSeparatesFromEvalCadence)
{
    // checkpoint_every=5 against eval_every=10: four server
    // checkpoints but still only the two metric evaluations.
    const RecoveryRun run = runOnce(nullptr, ckptPath("cadence"), 5);
    EXPECT_EQ(run.result.checkpoints_written, 4u); // 5, 10, 15, 20.
    std::size_t w0_evals = 0;
    for (const auto &c : run.result.checkpoints)
        if (c.worker == 0 && c.iteration > 0)
            ++w0_evals;
    EXPECT_EQ(w0_evals, 2u); // iterations 10 and 20.
    const auto ckpt =
        core::readServerCheckpointFile(ckptPath("cadence"));
    EXPECT_EQ(ckpt.iteration, kIterations);

    // Back-compat default: checkpoint_every=0 inherits eval_every.
    const RecoveryRun inherit = runOnce(nullptr, ckptPath("inherit"), 0);
    EXPECT_EQ(inherit.result.checkpoints_written, 2u);
    std::remove(ckptPath("cadence").c_str());
    std::remove(ckptPath("inherit").c_str());
}

} // namespace
} // namespace fault
} // namespace rog
