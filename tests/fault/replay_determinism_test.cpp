/**
 * @file
 * Replay determinism under fault injection: a FaultPlan is data, so the
 * same (engine config, fault seed) must reproduce a run byte for byte —
 * the stats::Timeline CSV of two runs is compared as a string — while
 * different fault seeds must actually diverge.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"
#include "stats/timeline.hpp"

namespace rog {
namespace fault {
namespace {

core::CrudaWorkloadConfig
tinyCruda(std::size_t workers)
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = workers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

core::NetworkSetup
unstableNetwork(std::size_t workers)
{
    core::NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < workers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 17 + i * 1000));
    return net;
}

FaultPlan
planForSeed(std::uint64_t fault_seed)
{
    FaultPlanConfig fcfg;
    fcfg.links = 3;
    fcfg.workers = 3;
    fcfg.horizon_s = 60.0;
    fcfg.crash_prob = 0.4;
    fcfg.leave_prob = 0.0; // keep every worker's iteration count up.
    fcfg.detect_s = 3.0;
    return FaultPlan::random(fault_seed, fcfg);
}

/** One full faulty run rendered as the timeline CSV. */
std::string
runTimeline(std::uint64_t fault_seed, std::size_t *violations = nullptr)
{
    core::CrudaWorkload workload(tinyCruda(3));
    const FaultPlan plan = planForSeed(fault_seed);
    InvariantChecker checker;

    core::EngineConfig cfg;
    cfg.system = core::SystemConfig::rog(4);
    cfg.iterations = 20;
    cfg.eval_every = 10;
    cfg.fault_plan = &plan;
    cfg.invariants = &checker;
    const auto res = core::runDistributedTraining(workload, cfg,
                                                  unstableNetwork(3));
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(checker.checksRun(), 0u);
    if (violations)
        *violations = checker.violationCount();

    std::ostringstream os;
    stats::writeTimelineCsv(os, stats::buildTimeline(res));
    return os.str();
}

TEST(ReplayDeterminism, SameSeedByteIdenticalTimeline)
{
    for (std::uint64_t seed : {3u, 11u, 29u}) {
        const std::string a = runTimeline(seed);
        const std::string b = runTimeline(seed);
        EXPECT_FALSE(a.empty());
        // Byte-identical replay: string equality, not numeric
        // tolerance.
        EXPECT_EQ(a, b) << "fault seed " << seed;
    }
}

TEST(ReplayDeterminism, DifferentSeedsDiverge)
{
    const std::string base = runTimeline(3);
    std::size_t distinct = 0;
    const std::uint64_t seeds[] = {4, 5, 6, 7, 8};
    for (std::uint64_t s : seeds)
        if (runTimeline(s) != base)
            ++distinct;
    // Random fault schedules must actually change the run; allow at
    // most one no-op plan among the five.
    EXPECT_GE(distinct, 4u);
}

TEST(ReplayDeterminism, PlanSpecRoundTripReproducesRun)
{
    // parse(toSpec(plan)) is the same plan, so running from the
    // re-parsed spec reproduces the run byte for byte.
    const FaultPlan plan = planForSeed(11);
    const FaultPlan reparsed = FaultPlan::parse(plan.toSpec());

    std::string csv[2];
    const FaultPlan *plans[2] = {&plan, &reparsed};
    for (int i = 0; i < 2; ++i) {
        core::CrudaWorkload workload(tinyCruda(3));
        core::EngineConfig cfg;
        cfg.system = core::SystemConfig::rog(4);
        cfg.iterations = 20;
        cfg.eval_every = 10;
        cfg.fault_plan = plans[i];
        const auto res = core::runDistributedTraining(
            workload, cfg, unstableNetwork(3));
        std::ostringstream os;
        stats::writeTimelineCsv(os, stats::buildTimeline(res));
        csv[i] = os.str();
    }
    EXPECT_EQ(csv[0], csv[1]);
}

} // namespace
} // namespace fault
} // namespace rog
