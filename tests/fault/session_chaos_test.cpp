/**
 * @file
 * Process-level chaos against the session layer: a real 4-worker
 * fleet over loopback UDP, each role its own forked process, two
 * workers SIGKILLed the moment their run log shows a push in flight
 * and restarted shortly after. The restarted processes resume from
 * their local checkpoints and re-enter through the session handshake;
 * the run must still satisfy every chaos invariant
 * (core/chaos_check.hpp): CRC-valid server checkpoint, finite final
 * model within tolerance of the fault-free DES twin, no exactly-once
 * violation at the application or transport level, and every killed
 * worker evicted-or-readmitted and finished.
 *
 * This is the tools/rog_chaos scenario, pinned as a test.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/chaos_check.hpp"
#include "core/node_runner.hpp"

namespace rog {
namespace core {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Worker w's log shows a push in flight at iteration >= bound. */
bool
pushInFlight(const std::string &dir, std::size_t w,
             std::int64_t min_iter)
{
    std::istringstream is(
        slurp(dir + "/worker" + std::to_string(w) + ".log"));
    std::string line;
    while (std::getline(is, line)) {
        long long iter = 0;
        if (std::sscanf(line.c_str(),
                        "t=%*f iter=%lld phase=push_begin",
                        &iter) == 1 &&
            iter >= min_iter)
            return true;
    }
    return false;
}

[[noreturn]] void
serverChild(const NodeRunConfig &cfg, int port_fd)
{
    const ServerRunResult res =
        runServerNode(cfg, [port_fd](std::uint16_t port) {
            (void)!::write(port_fd, &port, sizeof port);
            ::close(port_fd);
        });
    _exit(res.done ? 0 : 1);
}

pid_t
spawnWorker(const NodeRunConfig &cfg, std::size_t w,
            std::uint16_t port)
{
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        const WorkerRunResult res =
            runWorkerNode(cfg, w, "127.0.0.1", port);
        _exit(res.done ? 0 : 1);
    }
    return pid;
}

TEST(SessionChaos, KilledAndRestartedWorkersKeepTheRunCorrect)
{
    char dir_tmpl[] = "/tmp/rog_chaos_test_XXXXXX";
    char *dir = ::mkdtemp(dir_tmpl);
    ASSERT_NE(dir, nullptr);

    NodeRunConfig cfg = chaosRunDefaults();
    cfg.workers = 4;
    cfg.backend = "udp";
    cfg.artifact_dir = dir;
    cfg.train.worker_state_dir = dir;
    cfg.train.max_iters = 8;
    cfg.run_timeout_s = 60.0;

    const std::set<std::size_t> victims = {1, 2};
    const std::int64_t kill_iter = 2;

    // Server process; its ephemeral port comes back over a pipe.
    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);
    std::fflush(nullptr);
    const pid_t server_pid = ::fork();
    ASSERT_GE(server_pid, 0);
    if (server_pid == 0) {
        ::close(port_pipe[0]);
        serverChild(cfg, port_pipe[1]);
    }
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof port),
              static_cast<ssize_t>(sizeof port));
    ::close(port_pipe[0]);
    ASSERT_NE(port, 0);

    std::vector<pid_t> pids(cfg.workers, -1);
    std::vector<bool> exited(cfg.workers, false);
    std::vector<int> codes(cfg.workers, -1);
    std::vector<bool> killed(cfg.workers, false);
    std::vector<bool> restarted(cfg.workers, false);
    for (std::size_t w = 0; w < cfg.workers; ++w)
        pids[w] = spawnWorker(cfg, w, port);

    // Supervise: SIGKILL each victim at its first logged in-flight
    // push past kill_iter, restart it 200ms later, and reap everyone.
    const int max_polls = 60000; // 1ms cadence: 60s watchdog.
    int restart_at[16] = {0};
    for (int tick = 0; tick < max_polls; ++tick) {
        bool all_done = true;
        for (std::size_t w = 0; w < cfg.workers; ++w) {
            if (exited[w])
                continue;
            if (!killed[w] && victims.count(w) != 0 &&
                pushInFlight(dir, w, kill_iter)) {
                ::kill(pids[w], SIGKILL);
                ::waitpid(pids[w], nullptr, 0);
                killed[w] = true;
                restart_at[w] = tick + 200;
                all_done = false;
                continue;
            }
            if (killed[w] && !restarted[w]) {
                if (tick >= restart_at[w]) {
                    pids[w] = spawnWorker(cfg, w, port);
                    restarted[w] = true;
                }
                all_done = false;
                continue;
            }
            int status = 0;
            if (::waitpid(pids[w], &status, WNOHANG) == pids[w]) {
                exited[w] = true;
                codes[w] = WIFEXITED(status)
                               ? WEXITSTATUS(status)
                               : 128 + WTERMSIG(status);
            } else {
                all_done = false;
            }
        }
        if (all_done)
            break;
        ::usleep(1000);
    }

    for (std::size_t w = 0; w < cfg.workers; ++w) {
        EXPECT_TRUE(exited[w]) << "worker " << w << " never finished";
        if (!exited[w] && pids[w] > 0) {
            ::kill(pids[w], SIGKILL);
            ::waitpid(pids[w], nullptr, 0);
        }
        EXPECT_EQ(codes[w], 0) << "worker " << w << " exit code";
    }
    for (std::size_t w : victims) {
        EXPECT_TRUE(killed[w]) << "victim " << w << " was never "
                               << "caught with a push in flight";
    }

    int status = 0;
    ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "server exit code";

    // Fault-free DES twin of the same seed/plan (safe: all forks are
    // done), then the invariant gate over the on-disk artifacts.
    const DesTwinResult twin = runDesTwin(cfg);
    EXPECT_TRUE(twin.done);

    ChaosCheckOptions opts;
    for (std::size_t w = 0; w < cfg.workers; ++w)
        if (killed[w])
            opts.killed_workers.push_back(w);
    const ChaosCheckResult res = checkChaosRun(cfg, opts);
    EXPECT_TRUE(res.ok) << res.report << "violations:\n"
                        << [&] {
                               std::ostringstream os;
                               for (const auto &v : res.violations)
                                   os << "  " << v << '\n';
                               return os.str();
                           }();
}

} // namespace
} // namespace core
} // namespace rog
