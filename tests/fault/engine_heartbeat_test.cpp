/**
 * @file
 * The heartbeat failure detector wired into the engine: fault-free
 * runs never evict anyone (soundness), a silently crashed worker is
 * declared dead within the hard detection bound and its eviction
 * frees the survivors (completeness), the full lifecycle is recorded,
 * runs replay byte-identically, and the quorum policy either parks
 * the group until a crashed peer rejoins (Pause) or degrades to the
 * survivors (Continue).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"
#include "stats/timeline.hpp"

namespace rog {
namespace fault {
namespace {

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kIterations = 20;

core::CrudaWorkloadConfig
tinyCruda()
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = kWorkers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

core::NetworkSetup
stableNetwork(double rate = 50e3)
{
    core::NetworkSetup net;
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(rate));
    return net;
}

struct DetectorRun
{
    core::RunResult result;
    InvariantChecker checker;
    std::string timeline;
};

DetectorRun
runDetector(const FaultPlan *plan, std::size_t quorum = 0,
            core::QuorumPolicy policy = core::QuorumPolicy::Pause)
{
    core::CrudaWorkload workload(tinyCruda());
    DetectorRun out;
    core::EngineConfig cfg;
    cfg.system = core::SystemConfig::rog(4);
    cfg.iterations = kIterations;
    cfg.eval_every = 10;
    cfg.failure_detector = true;
    cfg.quorum = quorum;
    cfg.quorum_policy = policy;
    cfg.fault_plan = plan;
    cfg.invariants = &out.checker;
    out.result =
        core::runDistributedTraining(workload, cfg, stableNetwork());
    std::ostringstream os;
    stats::writeTimelineCsv(os, stats::buildTimeline(out.result));
    out.timeline = os.str();
    return out;
}

/** Crash of worker 2 at @p at_s; detector-driven (plan detection is
 *  parked far in the future so the heartbeat detector must win). */
FaultPlan
silentCrashPlan(double at_s, double rejoin_s = -1.0)
{
    FaultPlan plan;
    ChurnEvent e;
    e.worker = 2;
    e.at_s = at_s;
    if (rejoin_s >= 0.0)
        e.rejoin_s = rejoin_s;
    else
        e.detect_s = 10000.0; // validation needs one finite bound.
    plan.churn.push_back(e);
    plan.validate();
    return plan;
}

TEST(EngineHeartbeat, FaultFreeRunNeverEvictsAnyone)
{
    const DetectorRun run = runDetector(nullptr);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    EXPECT_EQ(run.result.evictions, 0u);
    EXPECT_EQ(run.result.false_evictions, 0u);
    for (const auto &e : run.result.membership_events)
        EXPECT_NE(e.to, core::MemberState::Dead)
            << "worker " << e.worker << " died in a fault-free run";
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);
}

TEST(EngineHeartbeat, DetectorRunReplaysByteIdentically)
{
    const DetectorRun a = runDetector(nullptr);
    const DetectorRun b = runDetector(nullptr);
    EXPECT_FALSE(a.timeline.empty());
    EXPECT_EQ(a.timeline, b.timeline);
}

TEST(EngineHeartbeat, SilentCrashIsDetectedWithinTheBound)
{
    const double crash_at = 15.0;
    const FaultPlan plan = silentCrashPlan(crash_at);
    const DetectorRun run = runDetector(&plan);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();

    // Exactly the ghost was evicted, and it was genuinely down.
    EXPECT_EQ(run.result.evictions, 1u);
    EXPECT_EQ(run.result.false_evictions, 0u);

    // The lifecycle was walked, not skipped: suspect precedes dead,
    // and death lands within the hard bound (+ one check period).
    const core::FailureDetectorConfig det; // engine ran the defaults.
    double suspect_at = -1.0, dead_at = -1.0;
    for (const auto &e : run.result.membership_events) {
        if (e.worker != 2)
            continue;
        if (e.to == core::MemberState::Suspect && suspect_at < 0.0)
            suspect_at = e.time;
        if (e.to == core::MemberState::Dead)
            dead_at = e.time;
    }
    ASSERT_GE(suspect_at, 0.0);
    ASSERT_GE(dead_at, 0.0);
    EXPECT_LE(suspect_at, dead_at);
    EXPECT_GT(dead_at, crash_at);
    EXPECT_LE(dead_at, crash_at + det.detection_bound_s +
                           det.check_interval_s + 1e-9);

    // Eviction freed the survivors: both complete the full budget,
    // the ghost does not.
    EXPECT_EQ(run.result.worker_iterations[0], kIterations);
    EXPECT_EQ(run.result.worker_iterations[1], kIterations);
    EXPECT_LT(run.result.worker_iterations[2], kIterations);
}

TEST(EngineHeartbeat, RejoiningWorkerWalksTheFullLifecycle)
{
    // Crash long enough for eviction, then a scheduled rejoin: the
    // membership history must read ... -> suspect -> dead ->
    // rejoining -> alive for the victim.
    const FaultPlan plan = silentCrashPlan(10.0, 40.0);
    const DetectorRun run = runDetector(&plan);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();

    std::vector<core::MemberState> w2;
    for (const auto &e : run.result.membership_events)
        if (e.worker == 2)
            w2.push_back(e.to);
    const auto find = [&](core::MemberState s) {
        return std::find(w2.begin(), w2.end(), s);
    };
    ASSERT_NE(find(core::MemberState::Dead), w2.end());
    ASSERT_NE(find(core::MemberState::Rejoining), w2.end());
    EXPECT_LT(find(core::MemberState::Dead),
              find(core::MemberState::Rejoining));
    // After rejoining it came back alive.
    EXPECT_EQ(w2.back(), core::MemberState::Alive);
    // And the rejoined worker still finishes the budget.
    EXPECT_EQ(run.result.worker_iterations[2], kIterations);
}

TEST(EngineHeartbeat, QuorumPauseParksUntilTheRejoin)
{
    // Quorum of 3 with one worker out from t=10 to t=40: the two
    // survivors must pause (recoverable shortfall — the peer has a
    // scheduled rejoin) instead of training below quorum, and resume
    // to the full budget once it is back.
    const FaultPlan plan = silentCrashPlan(10.0, 40.0);
    const DetectorRun run =
        runDetector(&plan, kWorkers, core::QuorumPolicy::Pause);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    EXPECT_GT(run.result.quorum_paused_s, 0.0);
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);
}

TEST(EngineHeartbeat, QuorumContinueDegradesGracefully)
{
    const FaultPlan plan = silentCrashPlan(10.0, 40.0);
    const DetectorRun run =
        runDetector(&plan, kWorkers, core::QuorumPolicy::Continue);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    EXPECT_EQ(run.result.quorum_paused_s, 0.0);
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations);
}

TEST(EngineHeartbeat, QuorumPauseBeatsContinueOnStallTime)
{
    // The paused group does not burn iterations below quorum: its
    // per-iteration records show no end times inside the outage
    // window once the group dropped below quorum, whereas Continue
    // keeps finishing iterations throughout.
    const FaultPlan plan = silentCrashPlan(10.0, 40.0);
    const DetectorRun pause =
        runDetector(&plan, kWorkers, core::QuorumPolicy::Pause);
    const DetectorRun cont =
        runDetector(&plan, kWorkers, core::QuorumPolicy::Continue);
    // Pausing stretches the run; continuing does not.
    EXPECT_GT(pause.result.sim_seconds, cont.result.sim_seconds);
}

} // namespace
} // namespace fault
} // namespace rog
