/**
 * @file
 * Engine behavior under injected churn: crashes discard in-flight rows
 * without corrupting server state, rejoins resume from the current
 * model version, detection frees stalled survivors, graceful leaves
 * finish their iteration, and ROG's staleness slack rides through an
 * outage that stalls BSP — all watched by the InvariantChecker.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace fault {
namespace {

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kIterations = 25;

core::CrudaWorkloadConfig
tinyCruda()
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = kWorkers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

core::NetworkSetup
unstableNetwork()
{
    core::NetworkSetup net;
    const auto model = net::TraceModel::outdoor(20e3);
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(
            net::generateTrace(model, 120.0, 17 + i * 1000));
    return net;
}

core::NetworkSetup
stableNetwork(double rate = 50e3)
{
    core::NetworkSetup net;
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(rate));
    return net;
}

core::EngineConfig
engineConfig(core::SystemConfig system)
{
    core::EngineConfig cfg;
    cfg.system = std::move(system);
    cfg.iterations = kIterations;
    cfg.eval_every = 10;
    return cfg;
}

struct FaultyRun
{
    core::RunResult result;
    InvariantChecker checker;
};

FaultyRun
runWithPlan(core::SystemConfig system, const core::NetworkSetup &net,
            const FaultPlan &plan)
{
    core::CrudaWorkload workload(tinyCruda());
    FaultyRun out;
    auto cfg = engineConfig(std::move(system));
    cfg.fault_plan = &plan;
    cfg.invariants = &out.checker;
    out.result = core::runDistributedTraining(workload, cfg, net);
    return out;
}

/** Virtual seconds of the fault-free run, for placing churn events. */
double
faultFreeSeconds(core::SystemConfig system, const core::NetworkSetup &net)
{
    core::CrudaWorkload workload(tinyCruda());
    const auto res = core::runDistributedTraining(
        workload, engineConfig(std::move(system)), net);
    return res.sim_seconds;
}

TEST(EngineFault, ChaosRunsKeepInvariantsClean)
{
    // Random everything-at-once plans: blackouts, degrades, transfer
    // truncations/timeouts, crashes with and without rejoin, leaves.
    const auto net = unstableNetwork();
    const double horizon =
        faultFreeSeconds(core::SystemConfig::rog(4), net);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        FaultPlanConfig fcfg;
        fcfg.links = kWorkers;
        fcfg.workers = kWorkers;
        fcfg.horizon_s = horizon;
        fcfg.crash_prob = 0.4;
        fcfg.leave_prob = 0.2;
        fcfg.detect_s = horizon / 10.0;
        const FaultPlan plan = FaultPlan::random(seed, fcfg);
        const auto run =
            runWithPlan(core::SystemConfig::rog(4), net, plan);
        EXPECT_TRUE(run.checker.clean())
            << "seed " << seed << "\n"
            << run.checker.report();
        EXPECT_GT(run.checker.checksRun(), 0u) << "seed " << seed;
        // The run must terminate with every worker accounted for
        // (asserted inside the engine) and virtual time advanced.
        EXPECT_GT(run.result.sim_seconds, 0.0) << "seed " << seed;
    }
}

TEST(EngineFault, CrashWithRejoinResumesFromCurrentVersion)
{
    const auto net = unstableNetwork();
    const double total =
        faultFreeSeconds(core::SystemConfig::rog(4), net);

    FaultPlan plan;
    ChurnEvent e;
    e.worker = 1;
    e.at_s = 0.3 * total;
    e.rejoin_s = 0.55 * total;
    e.detect_s = 2.0;
    plan.churn.push_back(e);
    plan.validate();

    const auto run = runWithPlan(core::SystemConfig::rog(4), net, plan);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();

    // The rejoined worker skips the missed iterations — it resumes at
    // the freshest peer's version, not where it crashed — and still
    // finishes the budget.
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations)
            << "worker " << w;
    std::size_t w1_records = 0;
    std::size_t w1_max_iter = 0;
    for (const auto &r : run.result.iterations) {
        if (r.worker != 1)
            continue;
        ++w1_records;
        // Iterations strictly increase across the resync jump.
        EXPECT_GT(r.iteration, w1_max_iter);
        w1_max_iter = r.iteration;
        // Nothing of worker 1 finishes inside the outage window.
        const bool in_outage =
            r.end_time_s > e.at_s && r.end_time_s < e.rejoin_s;
        EXPECT_FALSE(in_outage) << "iteration " << r.iteration;
    }
    EXPECT_EQ(w1_max_iter, kIterations);
    EXPECT_LT(w1_records, kIterations); // some iterations were skipped.
    EXPECT_GE(w1_records, 5u);
}

TEST(EngineFault, PermanentCrashDetectionFreesSurvivors)
{
    const auto net = unstableNetwork();
    const double total =
        faultFreeSeconds(core::SystemConfig::rog(4), net);

    FaultPlan plan;
    ChurnEvent e;
    e.worker = 2;
    e.at_s = 0.4 * total;
    e.rejoin_s = kNever;
    e.detect_s = 0.15 * total;
    plan.churn.push_back(e);
    plan.validate();

    const auto run = runWithPlan(core::SystemConfig::rog(4), net, plan);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    // Survivors complete the budget; the ghost does not.
    EXPECT_EQ(run.result.worker_iterations[0], kIterations);
    EXPECT_EQ(run.result.worker_iterations[1], kIterations);
    EXPECT_LT(run.result.worker_iterations[2], kIterations);
    EXPECT_GT(run.result.worker_iterations[2], 0u);
}

TEST(EngineFault, GracefulLeaveFinishesIterationThenRetires)
{
    const auto net = unstableNetwork();
    const double total =
        faultFreeSeconds(core::SystemConfig::rog(4), net);

    FaultPlan plan;
    ChurnEvent e;
    e.worker = 0;
    e.at_s = 0.37 * total;
    e.graceful = true;
    plan.churn.push_back(e);
    plan.validate();

    const auto run = runWithPlan(core::SystemConfig::rog(4), net, plan);
    EXPECT_TRUE(run.checker.clean()) << run.checker.report();
    EXPECT_LT(run.result.worker_iterations[0], kIterations);
    EXPECT_GT(run.result.worker_iterations[0], 0u);
    EXPECT_EQ(run.result.worker_iterations[1], kIterations);
    EXPECT_EQ(run.result.worker_iterations[2], kIterations);

    // Announced departure: the iteration in flight at the leave time
    // still completes (its record ends after the announcement).
    double w0_last_end = 0.0;
    for (const auto &r : run.result.iterations)
        if (r.worker == 0)
            w0_last_end = std::max(w0_last_end, r.end_time_s);
    EXPECT_GT(w0_last_end, e.at_s);
}

TEST(EngineFault, BspStallsThroughOutageWhileRogRides)
{
    const auto net = stableNetwork();

    const auto stallDuringOutage =
        [&](core::SystemConfig system) -> double {
        const double total = faultFreeSeconds(system, net);
        FaultPlan plan;
        ChurnEvent e;
        e.worker = 2;
        e.at_s = 0.4 * total;
        e.rejoin_s = kNever;
        e.detect_s = 0.2 * total; // the outage survivors live through.
        plan.churn.push_back(e);
        plan.validate();
        const auto run = runWithPlan(std::move(system), net, plan);
        EXPECT_TRUE(run.checker.clean()) << run.checker.report();
        EXPECT_EQ(run.result.worker_iterations[0], kIterations);
        EXPECT_EQ(run.result.worker_iterations[1], kIterations);
        return run.result.worker_stall_s[0] +
               run.result.worker_stall_s[1];
    };

    const double bsp_stall =
        stallDuringOutage(core::SystemConfig::bsp());
    const double rog_stall =
        stallDuringOutage(core::SystemConfig::rog(4));

    // BSP survivors freeze for essentially the whole detection window;
    // ROG's staleness slack lets them keep training through most of it.
    EXPECT_GT(bsp_stall, 0.0);
    EXPECT_LT(rog_stall, 0.6 * bsp_stall);
}

} // namespace
} // namespace fault
} // namespace rog
