/**
 * @file
 * Edge-case tests of the deterministic event queue, the substrate the
 * fault injector schedules on: cancelling already-fired events, drop
 * handlers on cancellation and on horizon cutoff, and FIFO order of
 * same-timestamp events (bit-reproducibility).
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace sim {
namespace {

TEST(EventQueueEdge, CancelAfterFireIsNoOp)
{
    EventQueue q;
    int fired = 0;
    int dropped = 0;
    const EventId id = q.schedule(1.0, [&] { ++fired; },
                                  [&] { ++dropped; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    q.cancel(id); // already fired: must not re-fire or drop.
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(dropped, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, CancelInvokesDropExactlyOnce)
{
    EventQueue q;
    int fired = 0;
    int dropped = 0;
    const EventId id = q.schedule(1.0, [&] { ++fired; },
                                  [&] { ++dropped; });
    q.cancel(id);
    EXPECT_EQ(dropped, 1);
    q.cancel(id); // double-cancel: no-op.
    EXPECT_EQ(dropped, 1);
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueEdge, CancelInvalidIdIsNoOp)
{
    EventQueue q;
    q.cancel(EventId{}); // default id never fires nor crashes.
    EXPECT_FALSE(EventId{}.valid());
}

TEST(EventQueueEdge, DestructionDropsUnfiredEvents)
{
    int fired = 0;
    int dropped = 0;
    {
        EventQueue q;
        q.schedule(1.0, [&] { ++fired; }, [&] { ++dropped; });
        q.schedule(2.0, [&] { ++fired; }, [&] { ++dropped; });
        q.step();
    }
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(dropped, 1);
}

TEST(EventQueueEdge, SameTimestampFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    // Interleave two timestamps; within each, insertion order rules.
    q.schedule(5.0, [&] { order.push_back(10); });
    q.schedule(1.0, [&] { order.push_back(0); });
    q.schedule(5.0, [&] { order.push_back(11); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(5.0, [&] { order.push_back(12); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 12}));
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueEdge, EventScheduledFromHandlerAtSameTimeRunsAfter)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] {
        order.push_back(0);
        q.schedule(1.0, [&] { order.push_back(2); });
    });
    q.schedule(1.0, [&] { order.push_back(1); });
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueEdge, RunUntilLeavesBeyondHorizonPendingThenDrops)
{
    int fired = 0;
    int dropped = 0;
    {
        Simulation sim;
        sim.after(1.0, [&] { ++fired; });
        sim.after(10.0, [&] { ++fired; }, [&] { ++dropped; });
        sim.runUntil(5.0);
        EXPECT_EQ(fired, 1);
        EXPECT_EQ(dropped, 0); // still pending, not dropped yet.
        EXPECT_EQ(sim.queue().size(), 1u);
        EXPECT_LE(sim.now(), 5.0);
    }
    // Destruction dropped the beyond-horizon event exactly once.
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(dropped, 1);
}

TEST(EventQueueEdge, RunUntilThenRunResumesCleanly)
{
    Simulation sim;
    std::vector<double> times;
    sim.after(1.0, [&] { times.push_back(sim.now()); });
    sim.after(10.0, [&] { times.push_back(sim.now()); });
    sim.runUntil(5.0);
    sim.run(); // picks up the beyond-horizon remainder.
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 10.0);
}

TEST(EventQueueEdge, CancelOneOfManySameTimestamp)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(0); });
    const EventId mid = q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(1.0, [&] { order.push_back(2); });
    q.cancel(mid);
    while (q.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

} // namespace
} // namespace sim
} // namespace rog
