/**
 * @file
 * Rejoin-resync edge cases: a crashed worker that comes back while the
 * freshest live replica is mid-push must resync without ever moving a
 * version backwards — the resume point is the max of the best live
 * replica's iteration and the rejoiner's own rows still standing at
 * the server (it may have pushed and crashed while stalling). Swept
 * over a grid of crash/rejoin times on a communication-bound network
 * so rejoins land in every phase of the survivors' iterations, on both
 * the legacy bulk path and the reliable transport.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/workloads.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"

namespace rog {
namespace fault {
namespace {

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kIterations = 15;

core::CrudaWorkloadConfig
tinyCruda()
{
    core::CrudaWorkloadConfig cfg;
    cfg.data.train_samples = 800;
    cfg.data.test_samples = 200;
    cfg.model.hidden = {16, 12};
    cfg.workers = kWorkers;
    cfg.pretrain_iters = 60;
    cfg.eval_subset = 200;
    cfg.batch_size = 8;
    cfg.opt.learning_rate = 0.01f;
    return cfg;
}

/** Slow links: workers spend most of each iteration mid-push. */
core::NetworkSetup
commBoundNetwork()
{
    core::NetworkSetup net;
    for (std::size_t i = 0; i < kWorkers; ++i)
        net.link_traces.push_back(net::BandwidthTrace::constant(8e3));
    return net;
}

struct RejoinRun
{
    core::RunResult result;
    InvariantChecker checker;
};

RejoinRun
runWithCrash(double at_frac, double outage_frac, bool transport)
{
    core::EngineConfig cfg;
    cfg.system = core::SystemConfig::rog(4);
    cfg.iterations = kIterations;
    cfg.eval_every = 100;
    cfg.reliable_transport = transport;
    cfg.transport.chunk_bytes = 4096.0;
    const auto net = commBoundNetwork();

    // Fault-free length to place the crash.
    double total = 0.0;
    {
        core::CrudaWorkload workload(tinyCruda());
        total = core::runDistributedTraining(workload, cfg, net)
                    .sim_seconds;
    }

    FaultPlan plan;
    ChurnEvent e;
    e.worker = 1;
    e.at_s = at_frac * total;
    e.rejoin_s = e.at_s + outage_frac * total;
    e.detect_s = 0.05 * total;
    plan.churn.push_back(e);
    plan.validate();

    RejoinRun out;
    core::CrudaWorkload workload(tinyCruda());
    cfg.fault_plan = &plan;
    cfg.invariants = &out.checker;
    out.result = core::runDistributedTraining(workload, cfg, net);
    return out;
}

void
checkRejoinRun(const RejoinRun &run, const char *label)
{
    EXPECT_TRUE(run.checker.clean())
        << label << "\n" << run.checker.report();
    EXPECT_GT(run.checker.checksRun(), 0u) << label;
    // Everybody — including the rejoiner — finishes the budget.
    for (std::size_t w = 0; w < kWorkers; ++w)
        EXPECT_EQ(run.result.worker_iterations[w], kIterations)
            << label << " worker " << w;
    // The rejoiner's iteration records never move backwards: the
    // resync resumes at or past the freshest live replica, even when
    // that replica was mid-push at the rejoin instant.
    std::size_t last = 0;
    for (const auto &r : run.result.iterations) {
        if (r.worker != 1)
            continue;
        EXPECT_GT(r.iteration, last) << label;
        last = std::max(last, r.iteration);
    }
    EXPECT_EQ(last, kIterations) << label;
}

TEST(EngineRejoinEdge, RejoinLandsInEveryPushPhaseLegacyPath)
{
    // Sweep the crash instant across one iteration's worth of phases
    // and use a short outage, so the rejoin fires while survivors are
    // in compute, mid-push, gate-stalled, or mid-pull.
    for (const double at : {0.30, 0.35, 0.40, 0.45, 0.50, 0.55}) {
        const auto run = runWithCrash(at, 0.08, false);
        checkRejoinRun(run, "legacy");
    }
}

TEST(EngineRejoinEdge, RejoinLandsInEveryPushPhaseReliableTransport)
{
    // Same sweep over the reliable transport: the rejoiner redoes
    // iterations it already pushed once, so message identity must not
    // collide in the transport's exactly-once accounting.
    for (const double at : {0.30, 0.40, 0.50}) {
        const auto run = runWithCrash(at, 0.08, true);
        checkRejoinRun(run, "transport");
    }
}

TEST(EngineRejoinEdge, InstantDetectionWithLateRejoin)
{
    // Detection retires the ghost before it returns: the rejoin must
    // re-admit it to the gate and the server must have cleared its
    // stale pending rows (no double-apply after resync).
    const auto run = runWithCrash(0.4, 0.3, false);
    checkRejoinRun(run, "late-rejoin");
}

} // namespace
} // namespace fault
} // namespace rog
