/**
 * @file
 * Unit tests of the declarative fault-plan layer: seeded generation is
 * deterministic, the text spec round-trips, validation catches broken
 * plans, and applyLinkFaults bakes blackouts/degrades into a trace
 * exactly over their windows.
 */
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "net/bandwidth_trace.hpp"

namespace rog {
namespace fault {
namespace {

FaultPlanConfig
busyConfig()
{
    FaultPlanConfig cfg;
    cfg.links = 3;
    cfg.workers = 4;
    cfg.horizon_s = 60.0;
    cfg.crash_prob = 0.5;
    cfg.leave_prob = 0.3;
    return cfg;
}

TEST(FaultPlan, SameSeedSamePlan)
{
    const auto cfg = busyConfig();
    const FaultPlan a = FaultPlan::random(7, cfg);
    const FaultPlan b = FaultPlan::random(7, cfg);
    EXPECT_EQ(a.toSpec(), b.toSpec());
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    const auto cfg = busyConfig();
    // Over many seeds at least most plans must differ from seed 1's.
    const std::string base = FaultPlan::random(1, cfg).toSpec();
    std::size_t distinct = 0;
    for (std::uint64_t s = 2; s < 12; ++s)
        if (FaultPlan::random(s, cfg).toSpec() != base)
            ++distinct;
    EXPECT_GE(distinct, 8u);
}

TEST(FaultPlan, RandomPlansValidate)
{
    const auto cfg = busyConfig();
    for (std::uint64_t s = 0; s < 50; ++s) {
        const FaultPlan p = FaultPlan::random(s, cfg);
        p.validate(); // dies on violation.
        for (const auto &f : p.link_faults) {
            EXPECT_LT(f.link, cfg.links);
            EXPECT_GE(f.factor, 0.0);
            EXPECT_LE(f.factor, 1.0);
            EXPECT_GT(f.duration_s, 0.0);
        }
        for (const auto &e : p.churn)
            EXPECT_LT(e.worker, cfg.workers);
    }
}

TEST(FaultPlan, SpecRoundTrips)
{
    const FaultPlan p = FaultPlan::random(42, busyConfig());
    const std::string spec = p.toSpec();
    const FaultPlan q = FaultPlan::parse(spec);
    EXPECT_EQ(spec, q.toSpec());
    EXPECT_EQ(p.link_faults.size(), q.link_faults.size());
    EXPECT_EQ(p.transfer_faults.size(), q.transfer_faults.size());
    EXPECT_EQ(p.churn.size(), q.churn.size());
}

TEST(FaultPlan, ParseReadsCommentsAndBlanks)
{
    const FaultPlan p = FaultPlan::parse(
        "# a curated scenario\n"
        "\n"
        "blackout link=1 start=10 dur=2.5\n"
        "degrade link=0 start=5 dur=10 factor=0.2\n"
        "truncate link=2 at=12 bytes=1000\n"
        "timeout link=0 at=30 after=0.5\n"
        "crash worker=3 at=600 rejoin=700 detect=30\n"
        "leave worker=2 at=400\n");
    ASSERT_EQ(p.link_faults.size(), 2u);
    EXPECT_EQ(p.link_faults[0].link, 1u);
    EXPECT_DOUBLE_EQ(p.link_faults[0].factor, 0.0);
    EXPECT_DOUBLE_EQ(p.link_faults[0].endS(), 12.5);
    EXPECT_DOUBLE_EQ(p.link_faults[1].factor, 0.2);
    ASSERT_EQ(p.transfer_faults.size(), 2u);
    EXPECT_DOUBLE_EQ(p.transfer_faults[0].truncate_bytes, 1000.0);
    EXPECT_DOUBLE_EQ(p.transfer_faults[1].force_timeout_s, 0.5);
    ASSERT_EQ(p.churn.size(), 2u);
    EXPECT_FALSE(p.churn[0].graceful);
    EXPECT_DOUBLE_EQ(p.churn[0].rejoin_s, 700.0);
    EXPECT_DOUBLE_EQ(p.churn[0].detect_s, 30.0);
    EXPECT_TRUE(p.churn[1].graceful);
    p.validate();
}

TEST(FaultPlanDeathTest, ValidateRejectsGhostCrash)
{
    // A silent crash with neither rejoin nor detection would stall the
    // survivors forever.
    FaultPlan p;
    ChurnEvent e;
    e.worker = 0;
    e.at_s = 10.0;
    p.churn.push_back(e);
    EXPECT_DEATH(p.validate(), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsBadFactor)
{
    FaultPlan p;
    LinkFault f;
    f.factor = 1.5;
    f.duration_s = 1.0;
    p.link_faults.push_back(f);
    EXPECT_DEATH(p.validate(), "");
}

TEST(ApplyLinkFaults, BlackoutZeroesWindow)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 0;
    f.start_s = 10.0;
    f.duration_s = 5.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(5.0), 1000.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(12.0), 0.0, 1e-9);
    EXPECT_NEAR(out.bytesPerSecAt(20.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, CoveringFactorsMultiply)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    std::vector<LinkFault> fs(2);
    fs[0] = {0, 10.0, 20.0, 0.5};
    fs[1] = {0, 15.0, 10.0, 0.5};
    const auto out = applyLinkFaults(base, fs, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(12.0), 500.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(20.0), 250.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(27.0), 500.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(40.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, OtherLinksUntouched)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 1;
    f.start_s = 0.0;
    f.duration_s = 60.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(30.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, ResultSpansHorizonSoFaultsDontRecur)
{
    // The base trace loops every 60 s; the perturbed trace must span
    // the horizon so a 10-15 s blackout does not come back at 70 s.
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 0;
    f.start_s = 10.0;
    f.duration_s = 5.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 200.0);
    EXPECT_GE(out.durationSeconds(), 200.0 - 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(72.0), 1000.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(132.0), 1000.0, 1e-6);
}

} // namespace
} // namespace fault
} // namespace rog
