/**
 * @file
 * Unit tests of the declarative fault-plan layer: seeded generation is
 * deterministic, the text spec round-trips, validation catches broken
 * plans, and applyLinkFaults bakes blackouts/degrades into a trace
 * exactly over their windows.
 */
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "net/bandwidth_trace.hpp"

namespace rog {
namespace fault {
namespace {

FaultPlanConfig
busyConfig()
{
    FaultPlanConfig cfg;
    cfg.links = 3;
    cfg.workers = 4;
    cfg.horizon_s = 60.0;
    cfg.crash_prob = 0.5;
    cfg.leave_prob = 0.3;
    return cfg;
}

TEST(FaultPlan, SameSeedSamePlan)
{
    const auto cfg = busyConfig();
    const FaultPlan a = FaultPlan::random(7, cfg);
    const FaultPlan b = FaultPlan::random(7, cfg);
    EXPECT_EQ(a.toSpec(), b.toSpec());
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    const auto cfg = busyConfig();
    // Over many seeds at least most plans must differ from seed 1's.
    const std::string base = FaultPlan::random(1, cfg).toSpec();
    std::size_t distinct = 0;
    for (std::uint64_t s = 2; s < 12; ++s)
        if (FaultPlan::random(s, cfg).toSpec() != base)
            ++distinct;
    EXPECT_GE(distinct, 8u);
}

TEST(FaultPlan, RandomPlansValidate)
{
    const auto cfg = busyConfig();
    for (std::uint64_t s = 0; s < 50; ++s) {
        const FaultPlan p = FaultPlan::random(s, cfg);
        p.validate(); // dies on violation.
        for (const auto &f : p.link_faults) {
            EXPECT_LT(f.link, cfg.links);
            EXPECT_GE(f.factor, 0.0);
            EXPECT_LE(f.factor, 1.0);
            EXPECT_GT(f.duration_s, 0.0);
        }
        for (const auto &e : p.churn)
            EXPECT_LT(e.worker, cfg.workers);
    }
}

TEST(FaultPlan, SpecRoundTrips)
{
    const FaultPlan p = FaultPlan::random(42, busyConfig());
    const std::string spec = p.toSpec();
    const FaultPlan q = FaultPlan::parse(spec);
    EXPECT_EQ(spec, q.toSpec());
    EXPECT_EQ(p.link_faults.size(), q.link_faults.size());
    EXPECT_EQ(p.transfer_faults.size(), q.transfer_faults.size());
    EXPECT_EQ(p.churn.size(), q.churn.size());
}

TEST(FaultPlan, ParseReadsCommentsAndBlanks)
{
    const FaultPlan p = FaultPlan::parse(
        "# a curated scenario\n"
        "\n"
        "blackout link=1 start=10 dur=2.5\n"
        "degrade link=0 start=5 dur=10 factor=0.2\n"
        "truncate link=2 at=12 bytes=1000\n"
        "timeout link=0 at=30 after=0.5\n"
        "crash worker=3 at=600 rejoin=700 detect=30\n"
        "leave worker=2 at=400\n");
    ASSERT_EQ(p.link_faults.size(), 2u);
    EXPECT_EQ(p.link_faults[0].link, 1u);
    EXPECT_DOUBLE_EQ(p.link_faults[0].factor, 0.0);
    EXPECT_DOUBLE_EQ(p.link_faults[0].endS(), 12.5);
    EXPECT_DOUBLE_EQ(p.link_faults[1].factor, 0.2);
    ASSERT_EQ(p.transfer_faults.size(), 2u);
    EXPECT_DOUBLE_EQ(p.transfer_faults[0].truncate_bytes, 1000.0);
    EXPECT_DOUBLE_EQ(p.transfer_faults[1].force_timeout_s, 0.5);
    ASSERT_EQ(p.churn.size(), 2u);
    EXPECT_FALSE(p.churn[0].graceful);
    EXPECT_DOUBLE_EQ(p.churn[0].rejoin_s, 700.0);
    EXPECT_DOUBLE_EQ(p.churn[0].detect_s, 30.0);
    EXPECT_TRUE(p.churn[1].graceful);
    p.validate();
}

TEST(FaultPlan, CorruptionClassSpecRoundTrips)
{
    const FaultPlan p = FaultPlan::parse(
        "corrupt   link=1 at=12\n"
        "duplicate link=0 at=3\n"
        "reorder   link=2 at=5\n");
    ASSERT_EQ(p.transfer_faults.size(), 3u);
    EXPECT_TRUE(p.transfer_faults[0].corrupt);
    EXPECT_EQ(p.transfer_faults[0].link, 1u);
    EXPECT_TRUE(p.transfer_faults[1].duplicate);
    EXPECT_TRUE(p.transfer_faults[2].reorder);
    EXPECT_DOUBLE_EQ(p.transfer_faults[2].at_s, 5.0);
    const FaultPlan q = FaultPlan::parse(p.toSpec());
    EXPECT_EQ(p.toSpec(), q.toSpec());
}

TEST(FaultPlan, RandomGeneratesCorruptionClassesWhenEnabled)
{
    FaultPlanConfig cfg;
    cfg.links = 2;
    cfg.horizon_s = 60.0;
    cfg.max_corruptions_per_link = 3;
    cfg.max_duplicates_per_link = 3;
    cfg.max_reorders_per_link = 3;
    std::size_t corrupt = 0, duplicate = 0, reorder = 0;
    for (std::uint64_t s = 0; s < 20; ++s) {
        const FaultPlan p = FaultPlan::random(s, cfg);
        p.validate();
        for (const auto &r : p.transfer_faults) {
            corrupt += r.corrupt;
            duplicate += r.duplicate;
            reorder += r.reorder;
        }
        // Enabling the knobs keeps the spec round-trip exact.
        EXPECT_EQ(FaultPlan::parse(p.toSpec()).toSpec(), p.toSpec());
    }
    EXPECT_GT(corrupt, 0u);
    EXPECT_GT(duplicate, 0u);
    EXPECT_GT(reorder, 0u);
}

TEST(FaultPlan, ZeroedCorruptionKnobsDrawNoRng)
{
    // The corruption-class knobs default to 0 and must consume no RNG
    // draws there, so plans from pre-transport seeds replay
    // byte-identically against the old generator behaviour.
    const auto cfg = busyConfig();
    auto with_knob_fields = cfg; // same values, knobs explicitly 0.
    with_knob_fields.max_corruptions_per_link = 0;
    with_knob_fields.max_duplicates_per_link = 0;
    with_knob_fields.max_reorders_per_link = 0;
    for (std::uint64_t s = 0; s < 10; ++s)
        EXPECT_EQ(FaultPlan::random(s, cfg).toSpec(),
                  FaultPlan::random(s, with_knob_fields).toSpec());
}

/** Expect tryParse to fail mentioning every fragment in @p needles. */
void
expectReject(const std::string &spec,
             std::initializer_list<const char *> needles)
{
    const auto res = FaultPlan::tryParse(spec);
    EXPECT_FALSE(res.ok()) << spec;
    EXPECT_TRUE(res.plan.empty()) << spec;
    for (const char *n : needles)
        EXPECT_NE(res.error.find(n), std::string::npos)
            << "error \"" << res.error << "\" lacks \"" << n << "\"";
}

TEST(FaultPlanParse, RejectsUnknownKeyword)
{
    expectReject("frobnicate link=0 at=1\n",
                 {"line 1", "unknown keyword 'frobnicate'"});
}

TEST(FaultPlanParse, RejectsUnknownKey)
{
    expectReject("blackout link=0 start=1 dur=2 factor=0.5\n",
                 {"unknown key 'factor'"}); // blackout has no factor.
    expectReject("corrupt link=0 at=1 bytes=10\n",
                 {"unknown key 'bytes'"});
}

TEST(FaultPlanParse, RejectsDuplicateKey)
{
    expectReject("truncate link=0 link=1 at=1 bytes=10\n",
                 {"duplicate key 'link'"});
}

TEST(FaultPlanParse, RejectsMissingKey)
{
    expectReject("blackout link=0 start=1\n", {"missing 'dur='"});
    expectReject("corrupt at=12\n", {"missing 'link='"});
    expectReject("leave worker=1\n", {"missing 'at='"});
}

TEST(FaultPlanParse, RejectsGarbageNumbers)
{
    expectReject("blackout link=0 start=1.2.3 dur=2\n",
                 {"bad number '1.2.3'"});
    expectReject("timeout link=0 at=abc after=1\n",
                 {"bad number 'abc'"});
    expectReject("blackout link=0 start=nan dur=2\n",
                 {"bad number 'nan'"});
    expectReject("truncate link=0 at=1 bytes=12kb\n",
                 {"bad number '12kb'"});
}

TEST(FaultPlanParse, RejectsMalformedTokens)
{
    expectReject("blackout link=0 =5 dur=2\n",
                 {"expected key=value", "'=5'"});
    expectReject("blackout link=0 start= dur=2\n",
                 {"expected key=value", "'start='"});
    expectReject("blackout link=0 start dur=2\n",
                 {"expected key=value", "'start'"});
}

TEST(FaultPlanParse, RejectsBadIndices)
{
    expectReject("blackout link=-1 start=1 dur=2\n",
                 {"'link' must be a non-negative integer"});
    expectReject("crash worker=1.5 at=1 detect=2\n",
                 {"'worker' must be a non-negative integer"});
    expectReject("leave worker=inf at=1\n",
                 {"'worker' must be a non-negative integer"});
}

TEST(FaultPlanParse, RejectsCrossFieldViolations)
{
    // Structurally fine lines whose values break plan invariants.
    expectReject("crash worker=0 at=10\n",
                 {"silent crash", "rejoin or detect"});
    expectReject("degrade link=0 start=1 dur=2 factor=1.5\n",
                 {"factor must be in [0, 1]"});
    expectReject("crash worker=0 at=10 rejoin=5\n",
                 {"rejoin", "must not precede the crash"});
    expectReject("timeout link=0 at=1 after=0\n",
                 {"forced timeout must be positive"});
}

TEST(FaultPlanParse, ReportsTheOffendingLineNumber)
{
    const auto res = FaultPlan::tryParse(
        "# header comment\n"
        "blackout link=0 start=1 dur=2\n"
        "\n"
        "bogus link=0\n");
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error.find("line 4"), std::string::npos)
        << res.error;
}

TEST(FaultPlanParse, TryParseSucceedsOnValidSpec)
{
    const auto res = FaultPlan::tryParse(
        "corrupt link=0 at=1 # mid-line comment\n"
        "crash worker=0 at=10 detect=2\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.error.empty());
    EXPECT_EQ(res.plan.transfer_faults.size(), 1u);
    EXPECT_EQ(res.plan.churn.size(), 1u);
}

TEST(FaultPlanParse, ParseThrowsFatalOnMalformedSpec)
{
    // ROG_FATAL throws so configuration errors are catchable.
    EXPECT_THROW(FaultPlan::parse("bogus link=0\n"),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("blackout link=0 start=x dur=1\n"),
                 std::runtime_error);
    try {
        FaultPlan::parse("bogus link=0\n");
        FAIL() << "parse did not throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unknown keyword"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultPlanDeathTest, ValidateRejectsGhostCrash)
{
    // A silent crash with neither rejoin nor detection would stall the
    // survivors forever.
    FaultPlan p;
    ChurnEvent e;
    e.worker = 0;
    e.at_s = 10.0;
    p.churn.push_back(e);
    EXPECT_DEATH(p.validate(), "");
}

TEST(FaultPlanDeathTest, ValidateRejectsBadFactor)
{
    FaultPlan p;
    LinkFault f;
    f.factor = 1.5;
    f.duration_s = 1.0;
    p.link_faults.push_back(f);
    EXPECT_DEATH(p.validate(), "");
}

TEST(ApplyLinkFaults, BlackoutZeroesWindow)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 0;
    f.start_s = 10.0;
    f.duration_s = 5.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(5.0), 1000.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(12.0), 0.0, 1e-9);
    EXPECT_NEAR(out.bytesPerSecAt(20.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, CoveringFactorsMultiply)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    std::vector<LinkFault> fs(2);
    fs[0] = {0, 10.0, 20.0, 0.5};
    fs[1] = {0, 15.0, 10.0, 0.5};
    const auto out = applyLinkFaults(base, fs, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(12.0), 500.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(20.0), 250.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(27.0), 500.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(40.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, OtherLinksUntouched)
{
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 1;
    f.start_s = 0.0;
    f.duration_s = 60.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 60.0);
    EXPECT_NEAR(out.bytesPerSecAt(30.0), 1000.0, 1e-6);
}

TEST(ApplyLinkFaults, ResultSpansHorizonSoFaultsDontRecur)
{
    // The base trace loops every 60 s; the perturbed trace must span
    // the horizon so a 10-15 s blackout does not come back at 70 s.
    const auto base = net::BandwidthTrace::constant(1000.0, 60.0);
    LinkFault f;
    f.link = 0;
    f.start_s = 10.0;
    f.duration_s = 5.0;
    f.factor = 0.0;
    const auto out = applyLinkFaults(base, {&f, 1}, 0, 200.0);
    EXPECT_GE(out.durationSeconds(), 200.0 - 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(72.0), 1000.0, 1e-6);
    EXPECT_NEAR(out.bytesPerSecAt(132.0), 1000.0, 1e-6);
}

TEST(FaultPlan, ServerCrashSpecRoundTrips)
{
    const FaultPlan p = FaultPlan::parse("server_crash iter=12\n"
                                         "server_crash iter=3\n");
    ASSERT_EQ(p.server_crashes.size(), 2u);
    EXPECT_EQ(p.server_crashes[0].at_iter, 12);
    EXPECT_EQ(p.server_crashes[1].at_iter, 3);
    EXPECT_FALSE(p.empty());
    const FaultPlan q = FaultPlan::parse(p.toSpec());
    EXPECT_EQ(p.toSpec(), q.toSpec());
}

TEST(FaultPlanParse, RejectsMalformedServerCrash)
{
    expectReject("server_crash iter=0\n",
                 {"server crash iteration"});
    expectReject("server_crash at=3\n", {"unknown key 'at'"});
    expectReject("server_crash iter=1 iter=2\n",
                 {"duplicate key 'iter'"});
    expectReject("server_crash iter=1.5\n",
                 {"'iter' must be a non-negative integer"});
    expectReject("server_crash iter=sometimes\n",
                 {"bad number 'sometimes'"});
    expectReject("server_crash\n", {"missing 'iter='"});
}

TEST(FaultPlan, RandomGeneratesServerCrashesWhenEnabled)
{
    FaultPlanConfig cfg;
    cfg.links = 2;
    cfg.horizon_s = 60.0;
    cfg.server_crash_prob = 0.8;
    cfg.server_crash_max_iter = 40;
    std::size_t crashes = 0;
    for (std::uint64_t s = 0; s < 20; ++s) {
        const FaultPlan p = FaultPlan::random(s, cfg);
        p.validate();
        for (const auto &e : p.server_crashes) {
            EXPECT_GE(e.at_iter, 1);
            EXPECT_LE(e.at_iter, cfg.server_crash_max_iter);
            ++crashes;
        }
        EXPECT_EQ(FaultPlan::parse(p.toSpec()).toSpec(), p.toSpec());
    }
    EXPECT_GT(crashes, 0u);
}

TEST(FaultPlan, ZeroedServerCrashKnobDrawsNoRng)
{
    // Like the corruption-class knobs: a disabled server_crash_prob
    // must consume no RNG draws, so pre-recovery seeds replay
    // byte-identically against the old generator behaviour.
    const auto cfg = busyConfig();
    auto with_knob = cfg;
    with_knob.server_crash_prob = 0.0;
    with_knob.server_crash_max_iter = 0;
    for (std::uint64_t s = 0; s < 10; ++s)
        EXPECT_EQ(FaultPlan::random(s, cfg).toSpec(),
                  FaultPlan::random(s, with_knob).toSpec());
}

} // namespace
} // namespace fault
} // namespace rog
