/**
 * @file
 * Soundness fuzz of the phi-accrual failure detector over 1000
 * randomized synthetic heartbeat schedules (pure tracker math — no
 * simulation — so the sweep stays fast):
 *
 *  - completeness-of-health: a fault-free schedule whose heartbeat
 *    gaps stay within a bounded jitter of the configured interval
 *    never sees a single worker evicted;
 *  - detection bound: a worker that falls silent at a random time is
 *    declared dead no later than the hard detection bound plus one
 *    evaluation period after its last beat — and is never declared
 *    dead while still beating.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/failure_detector.hpp"

namespace rog {
namespace core {
namespace {

constexpr std::size_t kSchedules = 1000;
constexpr std::size_t kWorkers = 4;
constexpr double kHorizon = 120.0;

FailureDetectorConfig
fuzzConfig()
{
    FailureDetectorConfig cfg;
    cfg.heartbeat_interval_s = 0.5;
    cfg.phi_suspect = 2.0;
    cfg.phi_evict = 4.0;
    cfg.detection_bound_s = 12.0;
    cfg.min_samples = 3;
    cfg.check_interval_s = 0.25;
    return cfg;
}

/** One worker's randomized heartbeat arrival times over the horizon. */
std::vector<double>
jitteredBeats(Rng &rng, double interval, double until)
{
    std::vector<double> beats;
    // Random start phase, then gaps jittered around the interval:
    // congested links stretch gaps, bunched arrivals compress them.
    double t = rng.uniform(0.0, interval);
    while (t < until) {
        beats.push_back(t);
        t += rng.uniform(0.5 * interval, 2.0 * interval);
    }
    return beats;
}

/**
 * Replay merged heartbeat schedules against a tracker, evaluating at
 * the configured cadence, and return the time each worker was declared
 * dead (infinity = never).
 */
std::vector<double>
replay(const std::vector<std::vector<double>> &beats,
       const FailureDetectorConfig &cfg, double horizon)
{
    MembershipTracker tracker(beats.size(), cfg);
    std::vector<double> dead_at(
        beats.size(), std::numeric_limits<double>::infinity());
    std::vector<std::size_t> next(beats.size(), 0);
    for (double now = 0.0; now <= horizon;
         now += cfg.check_interval_s) {
        for (std::size_t w = 0; w < beats.size(); ++w)
            while (next[w] < beats[w].size() &&
                   beats[w][next[w]] <= now)
                tracker.observeHeartbeat(w, beats[w][next[w]++]);
        for (const MembershipEvent &e : tracker.evaluate(now))
            if (e.to == MemberState::Dead)
                dead_at[e.worker] = std::min(dead_at[e.worker], e.time);
    }
    return dead_at;
}

TEST(FailureDetectorFuzz, FaultFreeSchedulesNeverEvict)
{
    const auto cfg = fuzzConfig();
    std::size_t evictions = 0;
    for (std::uint64_t seed = 0; seed < kSchedules; ++seed) {
        Rng rng(0xFD00 + seed);
        std::vector<std::vector<double>> beats;
        for (std::size_t w = 0; w < kWorkers; ++w)
            beats.push_back(jitteredBeats(
                rng, cfg.heartbeat_interval_s, kHorizon));
        for (double d : replay(beats, cfg, kHorizon))
            if (d < std::numeric_limits<double>::infinity())
                ++evictions;
    }
    // Soundness: bounded jitter around the send interval must never
    // look like a crash. Zero tolerance, not "rare".
    EXPECT_EQ(evictions, 0u);
}

TEST(FailureDetectorFuzz, SilentCrashDetectedWithinBound)
{
    const auto cfg = fuzzConfig();
    const double slack = cfg.check_interval_s + 1e-9;
    for (std::uint64_t seed = 0; seed < kSchedules; ++seed) {
        Rng rng(0xC0DE + seed);
        const std::size_t victim = rng.uniformInt(kWorkers);
        const double crash = rng.uniform(5.0, kHorizon - 40.0);

        std::vector<std::vector<double>> beats;
        std::vector<double> last_beat(kWorkers, 0.0);
        for (std::size_t w = 0; w < kWorkers; ++w) {
            auto b = jitteredBeats(rng, cfg.heartbeat_interval_s,
                                   kHorizon);
            if (w == victim)
                b.erase(std::upper_bound(b.begin(), b.end(), crash),
                        b.end());
            ASSERT_FALSE(b.empty());
            last_beat[w] = b.back();
            beats.push_back(std::move(b));
        }

        const auto dead_at = replay(beats, cfg, kHorizon);
        for (std::size_t w = 0; w < kWorkers; ++w) {
            if (w == victim) {
                // Dead, and within bound + one evaluation period of
                // the final heartbeat.
                ASSERT_LT(dead_at[w],
                          std::numeric_limits<double>::infinity())
                    << "seed " << seed;
                EXPECT_LE(dead_at[w], last_beat[w] +
                                          cfg.detection_bound_s + slack)
                    << "seed " << seed;
                // Never while the worker was still beating.
                EXPECT_GT(dead_at[w], last_beat[w]) << "seed " << seed;
            } else {
                EXPECT_EQ(dead_at[w],
                          std::numeric_limits<double>::infinity())
                    << "seed " << seed << " worker " << w;
            }
        }
    }
}

} // namespace
} // namespace core
} // namespace rog
