/**
 * @file
 * Wire-level fault plan parsing and the injector's determinism
 * guarantees. The parser follows the FaultPlan::tryParse contract —
 * every malformed spec is rejected with a message naming the problem —
 * and the injector's fixed per-datagram draw order means enabling one
 * fault never shifts another fault's decisions.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/socket_fault.hpp"

namespace rog {
namespace fault {
namespace {

TEST(SocketFaultPlanParse, FullSpecParses)
{
    const auto res = SocketFaultPlan::tryParse(
        "seed=7 drop=0.1 dup=0.05 trunc=0.2 corrupt=0.05 "
        "delay=0.1:0.02");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.plan.seed, 7u);
    EXPECT_DOUBLE_EQ(res.plan.drop_p, 0.1);
    EXPECT_DOUBLE_EQ(res.plan.dup_p, 0.05);
    EXPECT_DOUBLE_EQ(res.plan.trunc_p, 0.2);
    EXPECT_DOUBLE_EQ(res.plan.corrupt_p, 0.05);
    EXPECT_DOUBLE_EQ(res.plan.delay_p, 0.1);
    EXPECT_DOUBLE_EQ(res.plan.delay_s, 0.02);
    EXPECT_FALSE(res.plan.clean());
}

TEST(SocketFaultPlanParse, EmptySpecIsCleanDefaults)
{
    const auto res = SocketFaultPlan::tryParse("");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.plan.clean());
    EXPECT_EQ(res.plan.seed, 1u);
    EXPECT_DOUBLE_EQ(res.plan.delay_s, 0.01);
}

TEST(SocketFaultPlanParse, DelayWithoutSecondsKeepsDefault)
{
    const auto res = SocketFaultPlan::tryParse("delay=0.5");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_DOUBLE_EQ(res.plan.delay_p, 0.5);
    EXPECT_DOUBLE_EQ(res.plan.delay_s, 0.01);
}

struct RejectCase
{
    const char *spec;
    const char *why;
};

TEST(SocketFaultPlanParse, EveryRejectionPathNamesTheProblem)
{
    const RejectCase cases[] = {
        {"drop", "is not key=value"},
        {"jam=0.5", "unknown fault key 'jam'"},
        {"seed=-3", "seed needs an unsigned integer"},
        {"seed=abc", "seed needs an unsigned integer"},
        {"drop=1.5", "drop needs a probability in [0, 1]"},
        {"drop=-0.1", "drop needs a probability in [0, 1]"},
        {"dup=x", "dup needs a probability in [0, 1]"},
        {"trunc=2", "trunc needs a probability in [0, 1]"},
        {"corrupt=", "corrupt needs a probability in [0, 1]"},
        {"delay=1.5:0.1", "delay needs a probability in [0, 1]"},
        {"delay=0.5:-1", "delay seconds must be non-negative"},
        {"delay=0.5:fast", "delay seconds must be non-negative"},
    };
    for (const RejectCase &c : cases) {
        const auto res = SocketFaultPlan::tryParse(c.spec);
        EXPECT_FALSE(res.ok()) << "accepted: " << c.spec;
        EXPECT_NE(res.error.find(c.why), std::string::npos)
            << "spec: " << c.spec << "\n  error: " << res.error
            << "\n  expected substring: " << c.why;
        // A rejected spec never leaks partial state.
        EXPECT_TRUE(res.plan.clean());
        EXPECT_EQ(res.plan.seed, 1u);
    }
}

TEST(SocketFaultInjector, SameSeedSamePlanSameFateStream)
{
    SocketFaultPlan plan;
    plan.seed = 42;
    plan.drop_p = 0.2;
    plan.dup_p = 0.2;
    plan.trunc_p = 0.2;
    plan.corrupt_p = 0.2;
    plan.delay_p = 0.2;
    plan.delay_s = 0.003;

    SocketFaultInjector a(plan);
    SocketFaultInjector b(plan);
    for (int i = 0; i < 500; ++i) {
        const DatagramFate fa = a.next();
        const DatagramFate fb = b.next();
        EXPECT_EQ(fa.drop, fb.drop);
        EXPECT_EQ(fa.duplicate, fb.duplicate);
        EXPECT_EQ(fa.corrupt, fb.corrupt);
        EXPECT_DOUBLE_EQ(fa.keep_frac, fb.keep_frac);
        EXPECT_DOUBLE_EQ(fa.delay_s, fb.delay_s);
    }
    EXPECT_EQ(a.decided(), 500u);
    EXPECT_EQ(b.decided(), 500u);
}

TEST(SocketFaultInjector, FixedDrawOrderIsolatesFaultKnobs)
{
    // Turning duplication on must not move the drop decisions: every
    // datagram consumes the same six draws whether or not each fault
    // is enabled.
    SocketFaultPlan drops_only;
    drops_only.seed = 9;
    drops_only.drop_p = 0.3;

    SocketFaultPlan drops_and_more = drops_only;
    drops_and_more.dup_p = 0.5;
    drops_and_more.trunc_p = 0.5;
    drops_and_more.corrupt_p = 0.5;
    drops_and_more.delay_p = 0.5;

    SocketFaultInjector a(drops_only);
    SocketFaultInjector b(drops_and_more);
    std::size_t dropped = 0;
    for (int i = 0; i < 300; ++i) {
        const DatagramFate fa = a.next();
        const DatagramFate fb = b.next();
        EXPECT_EQ(fa.drop, fb.drop) << "datagram " << i;
        dropped += fa.drop ? 1u : 0u;
        // The drops-only plan never touches the other knobs.
        EXPECT_FALSE(fa.duplicate);
        EXPECT_FALSE(fa.corrupt);
        EXPECT_DOUBLE_EQ(fa.keep_frac, 1.0);
        EXPECT_DOUBLE_EQ(fa.delay_s, 0.0);
    }
    // With p=0.3 over 300 draws, some but not all are dropped.
    EXPECT_GT(dropped, 0u);
    EXPECT_LT(dropped, 300u);
}

TEST(SocketFaultInjector, TruncationKeepsAUniformPrefixFraction)
{
    SocketFaultPlan plan;
    plan.seed = 17;
    plan.trunc_p = 1.0;
    SocketFaultInjector inj(plan);
    for (int i = 0; i < 100; ++i) {
        const DatagramFate f = inj.next();
        EXPECT_GE(f.keep_frac, 0.0);
        EXPECT_LT(f.keep_frac, 1.0);
    }
}

} // namespace
} // namespace fault
} // namespace rog
