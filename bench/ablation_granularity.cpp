/**
 * @file
 * Ablation — the granularity choice of Sec. III-A: elements vs rows vs
 * layers vs whole model, all running the same ATP scheduling.
 *
 * Paper's argument: element granularity doubles the wire volume
 * (index per element); layer granularity is too coarse to dodge
 * bandwidth fluctuation; rows best trade off management cost and
 * transmission flexibility.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/flat_model.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Ablation: synchronization granularity (Sec. III-A)");

    core::CrudaWorkload workload(bench::paperCruda());

    // Static management-cost table.
    Table wire("Index/management overhead by granularity",
               {"granularity", "units", "wire_bytes",
                "vs whole-model", "index_overhead_vs_raw_pct"});
    {
        auto replica = workload.buildReplica();
        core::FlatModel flat(*replica);
        const double whole_bytes = core::modelWireBytes(
            workload, core::Granularity::WholeModel, "onebit");
        for (auto g :
             {core::Granularity::WholeModel, core::Granularity::Layer,
              core::Granularity::Row, core::Granularity::Element}) {
            core::RowPartition part(flat, g);
            const double bytes =
                core::modelWireBytes(workload, g, "onebit");
            wire.addRow({std::string(core::granularityName(g)),
                         std::to_string(part.unitCount()),
                         Table::num(bytes, 0),
                         Table::num(bytes / whole_bytes, 2) + "x",
                         Table::num(100.0 * part.indexOverheadFraction(),
                                    2)});
        }
    }
    wire.printText(std::cout);

    // Dynamic comparison: ATP at each granularity, outdoors.
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 250);
    std::vector<core::SystemConfig> systems;
    for (auto g : {core::Granularity::Layer, core::Granularity::Row,
                   core::Granularity::Element}) {
        core::SystemConfig sys = core::SystemConfig::rog(4);
        sys.granularity = g;
        sys.name = "ATP-" + std::string(core::granularityName(g));
        systems.push_back(sys);
    }
    systems.push_back(core::SystemConfig::ssp(4)); // whole-model ref.

    const auto runs = stats::runSystems(workload, systems, cfg);
    stats::timeCompositionTable(
        "Time composition by granularity (outdoor)", runs)
        .printText(std::cout);
    stats::summaryTable("Granularity summary", runs, 1200.0, 70.0,
                        false)
        .printText(std::cout);
    return 0;
}
