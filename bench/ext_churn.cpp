/**
 * @file
 * Extension — robot churn through the fault-injection layer: a team
 * member's battery dies mid-mission (the failure mode the paper's
 * artifact guards against by keeping devices charged, Sec. VI-D /
 * Appendix G). Churn is now declared as a fault::FaultPlan — a graceful
 * leave, and a silent crash with later rejoin — replayed by the
 * injector, with the InvariantChecker auditing every run: survivors
 * must keep training without stalling on frozen versions, and the
 * protocol state must stay consistent through every membership change.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Extension: robot churn (fault-injected mid-run)");

    core::CrudaWorkload workload(bench::paperCruda());
    auto ecfg = bench::paperExperiment(stats::Environment::Outdoor, 300);

    struct Scenario
    {
        const char *name;
        const char *spec; // FaultPlan text spec (empty = fault-free).
    };
    const Scenario scenarios[] = {
        {"none", ""},
        {"leave", "leave worker=3 at=600\n"},
        {"crash+rejoin",
         "crash worker=3 at=600 rejoin=900 detect=30\n"},
    };

    std::size_t total_violations = 0;
    Table t("Robot 3 churns mid-run (outdoor)",
            {"system", "churn", "survivor_iters", "churned_iters",
             "sec_per_iter", "final_acc", "invariants"});
    for (const auto &sys :
         {core::SystemConfig::bsp(), core::SystemConfig::ssp(4),
          core::SystemConfig::rog(4)}) {
        for (const auto &sc : scenarios) {
            const fault::FaultPlan plan =
                fault::FaultPlan::parse(sc.spec);
            fault::InvariantChecker checker;
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = ecfg.eval_every;
            engine.invariants = &checker;
            if (!plan.empty())
                engine.fault_plan = &plan;
            const auto network = stats::makeNetwork(workload, ecfg);
            auto res =
                core::runDistributedTraining(workload, engine, network);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            double best = 0.0;
            for (const auto &c : res.checkpoints)
                best = std::max(best, c.metric);
            if (!checker.clean()) {
                total_violations += checker.violationCount();
                std::cerr << res.system << "/" << sc.name
                          << " invariant violations:\n"
                          << checker.report();
            }
            t.addRow({res.system, sc.name,
                      std::to_string(res.worker_iterations[0]),
                      std::to_string(res.worker_iterations[3]),
                      Table::num(comp + comm + stall, 2),
                      Table::num(best, 2),
                      checker.clean() ? "clean" : "VIOLATED"});
        }
    }
    t.printText(std::cout);
    std::cout << "(survivors finish all iterations; losing a robot "
                 "costs gradient volume, not liveness; a rejoining "
                 "robot resyncs to the current model)\n";
    return total_violations == 0 ? 0 : 1;
}
