/**
 * @file
 * Extension — robot churn: a team member's battery dies mid-mission
 * (the failure mode the paper's artifact guards against by keeping
 * devices charged, Sec. VI-D / Appendix G). A departing worker retires
 * from the RSP gate, so the survivors must keep training without
 * stalling on its frozen versions — in every system.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Extension: robot churn (one robot dies mid-run)");

    core::CrudaWorkload workload(bench::paperCruda());
    auto ecfg = bench::paperExperiment(stats::Environment::Outdoor, 300);

    Table t("One robot departs at t=600s (outdoor)",
            {"system", "churn", "survivor_iters", "departed_iters",
             "sec_per_iter", "final_acc"});
    for (const auto &sys :
         {core::SystemConfig::bsp(), core::SystemConfig::ssp(4),
          core::SystemConfig::rog(4)}) {
        for (bool churn : {false, true}) {
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = ecfg.eval_every;
            if (churn)
                engine.worker_departure_times = {1e12, 1e12, 1e12,
                                                 600.0};
            const auto network = stats::makeNetwork(workload, ecfg);
            auto res =
                core::runDistributedTraining(workload, engine, network);
            const auto curve = stats::mergeCheckpoints(res);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            double best = 0.0;
            for (const auto &c : res.checkpoints)
                best = std::max(best, c.metric);
            t.addRow({res.system, churn ? "yes" : "no",
                      std::to_string(res.worker_iterations[0]),
                      std::to_string(res.worker_iterations[3]),
                      Table::num(comp + comm + stall, 2),
                      Table::num(best, 2)});
        }
    }
    t.printText(std::cout);
    std::cout << "(survivors finish all iterations; losing a robot "
                 "costs gradient volume, not liveness)\n";
    return 0;
}
