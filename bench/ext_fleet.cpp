/**
 * @file
 * Extension — fleet-scale sweep (ISSUE 10 capstone): the parallel
 * fleet DES from core/fleet.hpp swept over 16 / 64 / 256 / 1024
 * workers on the airtime-fair channel, emitting BENCH_fleet.json for
 * scripts/check_bench_regress.py.
 *
 * Per fleet size the bench reports:
 *  - events/s and wall-s per simulated-s for the heap event core AND
 *    the std::map baseline queue, on the identical simulation (the
 *    two runs must produce the same state_digest — a cross-check that
 *    the heap rewrite preserved firing order end to end);
 *  - an event-core churn microbenchmark (schedule / cancel / step
 *    with fleet-sized closures) isolating the queue itself, where the
 *    acceptance gate lives: at the largest sweep size the heap core
 *    must clear >= 3x the std::map baseline's ops/s;
 *  - the final accuracy gap of ROG (RSP threshold 4 + ATP partial
 *    pushes) versus BSP lockstep at equal iteration counts, peak RSS,
 *    and the BufferPool hit rate of the transfer-staging leases.
 *
 * ROG_BENCH_FAST=1 shrinks the sweep to 16/64 workers for the
 * bench_fleet_smoke ctest entry (the >= 3x gate is only enforced on
 * the full sweep).
 */
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_queue_ref.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
wallSeconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t
peakRssBytes()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024; // KiB on Linux
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/**
 * Event-core churn: the coordinator's queue-op mix at fleet scale,
 * with no simulation work attached — measures the queue alone.
 *
 * The mix mirrors what the airtime-fair channel does to the queue:
 * every transfer change cancels and reschedules the pending channel
 * event, so cancels run at ~5/8 of the schedule rate, against handles
 * that are sometimes already fired (the stale-handle rejection path);
 * closures carry fleet-sized 48-byte captures (a this pointer plus
 * ids, byte counts, and times), which SmallFn stores inline and
 * std::function must heap-allocate; and the pending set is held at
 * @p cap ~ 4x the worker count, the coordinator's depth plus
 * in-flight shard ops. Returns total queue ops per wall second.
 *
 * @pre cap is a power of two.
 */
template <class Q>
double
eventCoreChurn(std::size_t iters, std::size_t cap,
               std::uint64_t &ops_out)
{
    Q q;
    std::vector<typename Q::id_type> ring(cap);
    const std::size_t mask = cap - 1;
    std::uint64_t sink = 0;
    std::uint64_t h = 0x1F2E3D4C5B6A7988ull;
    std::uint64_t ops = 0;

    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
        h = splitmix64(h);
        const double t =
            q.now() + 1e-9 + static_cast<double>(h >> 44) * 1e-8;
        const std::uint64_t a = h;
        const std::uint64_t b = i;
        const std::uint64_t c = h ^ i;
        const std::uint64_t d = h + i;
        const std::uint64_t e = h - i;
        std::uint64_t *p = &sink;
        ring[i & mask] = q.schedule(
            t, [p, a, b, c, d, e] { *p += a ^ b ^ c ^ d ^ e; });
        ++ops;
        if ((h & 7u) < 5u) {
            q.cancel(ring[(h >> 8) & mask]);
            ++ops;
        }
        while (q.size() > cap) {
            q.step();
            ++ops;
        }
    }
    while (q.step())
        ++ops;
    const double wall = wallSeconds(t0);

    if (sink == 0xDEADBEEF) // defeat dead-code elimination
        std::cerr << "";
    ops_out = ops;
    return static_cast<double>(ops) / wall;
}

/** One BENCH_fleet.json record (check_bench_regress.py schema: the
 *  gate reads (op, size, threads, ns_per_op); extra keys ride along
 *  for humans and plots). */
struct Record
{
    std::string op;
    std::size_t size = 0;
    std::size_t threads = 0;
    double ns_per_op = 0.0;
    double items_per_s = 0.0;
    double sim_s_per_wall_s = -1.0;
    std::string label;
    double accuracy_gap = std::nan("");
    double pool_hit_rate = -1.0;
    std::size_t peak_rss_bytes = 0;
};

void
writeJson(const std::string &path, const std::vector<Record> &recs)
{
    std::ofstream os(path);
    os << "[\n";
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const Record &r = recs[i];
        os << " {\"op\": \"" << r.op << "\", \"size\": " << r.size
           << ", \"threads\": " << r.threads
           << ", \"ns_per_op\": " << r.ns_per_op
           << ", \"items_per_s\": " << r.items_per_s;
        if (r.sim_s_per_wall_s >= 0.0)
            os << ", \"sim_s_per_wall_s\": " << r.sim_s_per_wall_s;
        if (!r.label.empty())
            os << ", \"label\": \"" << r.label << "\"";
        if (!std::isnan(r.accuracy_gap))
            os << ", \"accuracy_gap\": " << r.accuracy_gap;
        if (r.pool_hit_rate >= 0.0)
            os << ", \"pool_hit_rate\": " << r.pool_hit_rate;
        if (r.peak_rss_bytes != 0)
            os << ", \"peak_rss_bytes\": " << r.peak_rss_bytes;
        os << "}" << (i + 1 < recs.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rog;

    std::string out_path = "BENCH_fleet.json";
    std::size_t shards = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--shards" && i + 1 < argc)
            shards = static_cast<std::size_t>(std::stoul(argv[++i]));
        else {
            std::cerr << "usage: ext_fleet [--out PATH] [--shards N]\n";
            return 2;
        }
    }

    const bool fast = bench::fastMode();
    bench::banner("Extension: fleet-scale sweep (parallel DES, "
                  "sharded server, heap event core)");

    struct Sweep
    {
        std::size_t workers;
        std::size_t iterations;
    };
    std::vector<Sweep> sweep;
    if (fast)
        sweep = {{16, 4}, {64, 2}};
    else
        sweep = {{16, 32}, {64, 16}, {256, 8}, {1024, 4}};

    const std::size_t threads = parallel::ThreadPool::resolveThreads();
    std::vector<Record> recs;
    Table t("Fleet sweep (ROG threshold 4 + ATP vs BSP lockstep)",
            {"workers", "events", "heap_ev/s", "map_ev/s",
             "sim_s/wall_s", "acc_gap_rog-bsp", "core_ratio",
             "pool_hit", "rss_mb"});

    bool digests_match = true;
    double largest_core_ratio = 0.0;
    std::size_t largest_workers = 0;

    for (const Sweep &sw : sweep) {
        core::FleetConfig cfg;
        cfg.workers = sw.workers;
        cfg.rows = 64;
        cfg.row_width = 8;
        cfg.shards = shards;
        cfg.iterations = sw.iterations;
        cfg.staleness_threshold = 4;
        cfg.atp = true;
        cfg.seed = 7;

        auto t0 = Clock::now();
        const core::FleetResult heap = core::runFleetSimulation(cfg);
        const double heap_wall = wallSeconds(t0);
        const double heap_evs =
            static_cast<double>(heap.events_processed) / heap_wall;

        core::FleetConfig map_cfg = cfg;
        map_cfg.use_map_queue = true;
        t0 = Clock::now();
        const core::FleetResult map = core::runFleetSimulation(map_cfg);
        const double map_wall = wallSeconds(t0);
        const double map_evs =
            static_cast<double>(map.events_processed) / map_wall;

        if (heap.state_digest != map.state_digest ||
            heap.events_processed != map.events_processed) {
            std::cerr << "DIGEST MISMATCH at " << sw.workers
                      << " workers: heap 0x" << std::hex
                      << heap.state_digest << " vs map 0x"
                      << map.state_digest << std::dec << "\n";
            digests_match = false;
        }

        core::FleetConfig bsp_cfg = cfg;
        bsp_cfg.staleness_threshold = 1;
        bsp_cfg.atp = false;
        const core::FleetResult bsp =
            core::runFleetSimulation(bsp_cfg);
        const double gap = heap.final_metric - bsp.final_metric;

        const std::size_t churn_iters =
            sw.workers * (fast ? 100 : 500);
        const std::size_t churn_cap = sw.workers * 4;
        std::uint64_t core_ops = 0;
        double core_heap = 0.0;
        double core_map = 0.0;
        // Best-of-3: single-shot wall timings on a busy host swing
        // by ~10%, and the regression gate keys off these records.
        for (int rep = 0; rep < 3; ++rep) {
            core_heap = std::max(
                core_heap, eventCoreChurn<sim::EventQueue>(
                               churn_iters, churn_cap, core_ops));
            core_map = std::max(
                core_map, eventCoreChurn<sim::MapEventQueue>(
                              churn_iters, churn_cap, core_ops));
        }
        const double core_ratio = core_heap / core_map;
        largest_core_ratio = core_ratio;
        largest_workers = sw.workers;

        const std::size_t rss = peakRssBytes();

        Record heap_rec;
        heap_rec.op = "BM_FleetSim";
        heap_rec.size = sw.workers;
        heap_rec.threads = threads;
        heap_rec.ns_per_op =
            heap_wall * 1e9 /
            static_cast<double>(heap.events_processed);
        heap_rec.items_per_s = heap_evs;
        heap_rec.sim_s_per_wall_s = heap.sim_seconds / heap_wall;
        heap_rec.label = "heap";
        heap_rec.accuracy_gap = gap;
        heap_rec.pool_hit_rate = heap.pool_hit_rate;
        heap_rec.peak_rss_bytes = rss;
        recs.push_back(heap_rec);

        Record map_rec;
        map_rec.op = "BM_FleetSimMap";
        map_rec.size = sw.workers;
        map_rec.threads = threads;
        map_rec.ns_per_op =
            map_wall * 1e9 /
            static_cast<double>(map.events_processed);
        map_rec.items_per_s = map_evs;
        map_rec.sim_s_per_wall_s = map.sim_seconds / map_wall;
        map_rec.label = "map";
        recs.push_back(map_rec);

        Record core_rec;
        core_rec.op = "BM_FleetEventCore";
        core_rec.size = sw.workers;
        core_rec.threads = 1;
        core_rec.ns_per_op = 1e9 / core_heap;
        core_rec.items_per_s = core_heap;
        core_rec.label = "heap";
        recs.push_back(core_rec);

        Record core_map_rec;
        core_map_rec.op = "BM_FleetEventCoreMap";
        core_map_rec.size = sw.workers;
        core_map_rec.threads = 1;
        core_map_rec.ns_per_op = 1e9 / core_map;
        core_map_rec.items_per_s = core_map;
        core_map_rec.label = "map";
        recs.push_back(core_map_rec);

        t.addRow({std::to_string(sw.workers),
                  std::to_string(heap.events_processed),
                  Table::num(heap_evs, 0), Table::num(map_evs, 0),
                  Table::num(heap.sim_seconds / heap_wall, 2),
                  Table::num(gap, 4), Table::num(core_ratio, 2),
                  Table::num(heap.pool_hit_rate, 3),
                  Table::num(static_cast<double>(rss) / (1u << 20),
                             1)});
    }

    t.printText(std::cout);
    writeJson(out_path, recs);
    std::cout << ">> wrote " << out_path << " (" << recs.size()
              << " records)\n";
    std::cout << ">> event core at " << largest_workers
              << " workers: heap " << Table::num(largest_core_ratio, 2)
              << "x over std::map baseline\n";

    if (!digests_match) {
        std::cerr << "FAIL: heap and map event queues diverged\n";
        return 1;
    }
    if (!fast && largest_core_ratio < 3.0) {
        std::cerr << "FAIL: heap event core only "
                  << largest_core_ratio
                  << "x over std::map at largest sweep size "
                     "(acceptance gate requires >= 3x)\n";
        return 1;
    }
    return 0;
}
