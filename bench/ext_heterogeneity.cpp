/**
 * @file
 * Extension — heterogeneous compute and dynamic batching (Sec. VI /
 * ref. [49]): the paper's testbed mixes Jetson robots with weaker
 * laptops and equalizes per-iteration compute with dynamic batching.
 * This bench quantifies what that buys: without it, slow devices are
 * *compute* stragglers and BSP stalls even on a stable network.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dynamic_batching.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Extension: heterogeneous devices + dynamic batching");

    // Three Jetson-class robots + two weaker laptops (paper's mix):
    // per-sample compute costs chosen so the Jetson at batch 24 costs
    // ~2.18 s (Table II) and a laptop is ~1.7x slower.
    const std::vector<double> speeds = {0.0908, 0.0908, 0.0908, 0.154,
                                        0.154};

    Table split("Dynamic batch split (total 5 x 20 = 100 samples)",
                {"policy", "batches", "per-device compute_s",
                 "iteration_s", "imbalance"});
    for (bool dynamic : {true, false}) {
        const auto a = dynamic
            ? core::assignDynamicBatches(speeds, 100)
            : core::assignUniformBatches(speeds, 100);
        std::string batches, times;
        for (std::size_t i = 0; i < a.batch_sizes.size(); ++i) {
            batches += (i ? "/" : "") + std::to_string(a.batch_sizes[i]);
            times += (i ? "/" : "") + Table::num(a.compute_seconds[i], 2);
        }
        split.addRow({dynamic ? "dynamic [49]" : "uniform", batches,
                      times, Table::num(a.iteration_seconds, 2),
                      Table::num(a.imbalance, 2)});
    }
    split.printText(std::cout);

    // End-to-end effect on BSP and ROG over the outdoor network.
    core::CrudaWorkloadConfig wcfg;
    wcfg.workers = 5;
    core::CrudaWorkload workload(wcfg);
    // Stable network isolates the *compute* straggler effect that
    // dynamic batching removes (outdoors it drowns in network stall).
    auto ecfg = bench::paperExperiment(stats::Environment::Stable, 250);

    Table t("BSP/ROG-4 with heterogeneous devices (stable network)",
            {"system", "batching", "compute_s", "comm_s", "stall_s",
             "sec_per_iter"});
    for (const auto &sys :
         {core::SystemConfig::bsp(), core::SystemConfig::rog(4)}) {
        for (bool dynamic : {true, false}) {
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = 1000;
            engine.heterogeneous_seconds_per_sample = speeds;
            engine.dynamic_batching = dynamic;
            const auto network = stats::makeNetwork(workload, ecfg);
            const auto res =
                core::runDistributedTraining(workload, engine, network);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            t.addRow({res.system, dynamic ? "dynamic" : "uniform",
                      Table::num(comp, 2), Table::num(comm, 2),
                      Table::num(stall, 2),
                      Table::num(comp + comm + stall, 2)});
        }
    }
    t.printText(std::cout);
    return 0;
}
