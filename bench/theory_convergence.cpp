/**
 * @file
 * Theory — Sec. IV-C (Theorem 1): SGD under RSP converges. Runs the
 * row-stale projected-SGD regret simulation across staleness levels
 * and worker counts and checks R[X] against the closed-form bound
 * 4 F L sqrt(2 (S_max + 1) P T).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/convergence.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Theorem 1: regret of SGD under RSP");

    Table t("Regret vs the Theorem-1 bound (T = 4000, M = 32 rows)",
            {"staleness S", "workers P", "R[X]", "bound",
             "R[X]/bound", "R[X]/T", "max realized staleness"});
    for (std::size_t s : {0u, 2u, 4u, 8u, 20u}) {
        for (std::size_t p : {4u}) {
            core::RegretConfig cfg;
            cfg.staleness = s;
            cfg.workers = p;
            cfg.iterations = 4000;
            cfg.seed = 17 + s;
            const auto res = core::simulateRspRegret(cfg);
            t.addRow({std::to_string(s), std::to_string(p),
                      Table::num(res.cumulative_regret.back(), 1),
                      Table::num(res.theorem_bound, 1),
                      Table::num(res.cumulative_regret.back() /
                                 res.theorem_bound, 3),
                      Table::num(res.average_regret, 4),
                      std::to_string(res.max_realized_staleness)});
        }
    }
    t.printText(std::cout);

    // o(T): average regret must fall as the horizon grows.
    SeriesSet curve("Average regret R[X]/T vs horizon (S=4, P=4)", "T",
                    "avg_regret");
    for (std::size_t horizon : {500u, 1000u, 2000u, 4000u, 8000u}) {
        core::RegretConfig cfg;
        cfg.staleness = 4;
        cfg.iterations = horizon;
        cfg.seed = 5;
        const auto res = core::simulateRspRegret(cfg);
        curve.add("RSP-4", static_cast<double>(horizon),
                  res.average_regret);
    }
    curve.printSummary(std::cout);
    curve.printCsv(std::cout);
    return 0;
}
