/**
 * @file
 * Extension — pipelining communication and computation (Sec. VI-D
 * future work, Pipe-SGD [65]): overlap the averaged-gradient pull with
 * the next iteration's gradient computation. The pull's latency hides
 * behind compute; updates apply one iteration late.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Extension: pipelined pull (Sec. VI-D future work)");

    core::CrudaWorkload workload(bench::paperCruda());
    auto ecfg = bench::paperExperiment(stats::Environment::Outdoor, 400);

    Table t("Pipelined pull vs sequential (outdoor)",
            {"system", "pipeline", "sec_per_iter", "speedup_pct",
             "acc@20min", "final_acc"});
    for (const auto &sys :
         {core::SystemConfig::ssp(4), core::SystemConfig::rog(4),
          core::SystemConfig::rog(20)}) {
        double base_iter = 0.0;
        for (bool pipeline : {false, true}) {
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = ecfg.eval_every;
            engine.pipeline_pull = pipeline;
            const auto network = stats::makeNetwork(workload, ecfg);
            auto res =
                core::runDistributedTraining(workload, engine, network);
            const auto curve = stats::mergeCheckpoints(res);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            const double per_iter = comp + comm + stall;
            if (!pipeline)
                base_iter = per_iter;
            t.addRow({res.system, pipeline ? "yes" : "no",
                      Table::num(per_iter, 2),
                      pipeline ? Table::num(
                                     100.0 * (1.0 - per_iter / base_iter),
                                     1)
                               : "-",
                      Table::num(stats::metricAtTime(curve, 1200.0), 2),
                      Table::num(curve.back().mean_metric, 2)});
        }
    }
    t.printText(std::cout);
    std::cout << "(pipelining hides pull latency behind compute at the "
                 "cost of one-iteration-late updates)\n";
    return 0;
}
