/**
 * @file
 * Figure 1 — CRUDA in the outdoor environment (severe instability):
 *  (a) average time composition of a training iteration,
 *  (b) statistical efficiency (accuracy vs iteration),
 *  (c) training accuracy vs wall-clock time,
 *  (d) energy consumption vs training accuracy,
 * for BSP, SSP-4, SSP-20, FLOWN, ROG-4, ROG-20.
 *
 * Paper headline: ROG gains 4.9%-6.5% accuracy over the baselines
 * after 60 minutes and saves 20.4%-50.7% energy to the same accuracy,
 * with 25.2%-80.4% higher training throughput.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 1: CRUDA outdoors");

    core::CrudaWorkload workload(bench::paperCruda());
    std::cout << "pretrained: clean " << workload.cleanAccuracy()
              << "%, shifted " << workload.initialAccuracy() << "%\n";

    auto cfg = bench::paperExperiment(stats::Environment::Outdoor,
                                      1000);
    const auto runs =
        stats::runSystems(workload, bench::paperSystems(), cfg);

    stats::printExperiment(std::cout, "Fig.1 CRUDA outdoor", runs,
                           /*time budget (30 min)*/ 1800.0,
                           /*energy target accuracy*/ 73.0,
                           /*lower_is_better=*/false);

    // Paper-style deltas: accuracy gain at the time budget and energy
    // saving to the target, ROG vs each baseline.
    Table deltas("ROG vs baselines (paper: +4.9-6.5% acc, "
                 "-20.4-50.7% energy)",
                 {"rog", "baseline", "acc_gain_at_30min_pct",
                  "energy_saving_pct"});
    for (std::size_t r = 4; r < runs.size(); ++r) {
        for (std::size_t b = 0; b < 4; ++b) {
            const double acc_gain =
                stats::metricAtTime(runs[r].curve, 1800.0) -
                stats::metricAtTime(runs[b].curve, 1800.0);
            const double e_rog =
                stats::energyToReach(runs[r].curve, 73.0, false);
            const double e_base =
                stats::energyToReach(runs[b].curve, 73.0, false);
            const double saving = 100.0 * (1.0 - e_rog / e_base);
            deltas.addRow({runs[r].result.system,
                           runs[b].result.system,
                           Table::num(acc_gain, 2),
                           Table::num(saving, 1)});
        }
    }
    deltas.printText(std::cout);
    return 0;
}
