/**
 * @file
 * Ablation — ATP's importance metric (Algo 3): the full
 * magnitude+staleness score vs magnitude-only, staleness-only, and
 * random ordering, for ROG-4 on CRUDA outdoors.
 *
 * Expectation: staleness weighting keeps rows from hitting the RSP
 * threshold (less stall); magnitude weighting transmits the gradients
 * that matter first (better statistical efficiency); random ordering
 * loses on both.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Ablation: importance metric (Algo 3)");

    core::CrudaWorkload workload(bench::paperCruda());
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 400);

    std::vector<core::SystemConfig> systems;
    {
        auto full = core::SystemConfig::rog(4);
        full.name = "ROG-4-full";
        systems.push_back(full);

        auto mag = core::SystemConfig::rog(4);
        mag.name = "ROG-4-magnitude-only";
        mag.importance.f2 = 0.0;
        systems.push_back(mag);

        auto stale = core::SystemConfig::rog(4);
        stale.name = "ROG-4-staleness-only";
        stale.importance.f1 = 0.0;
        systems.push_back(stale);

        auto random = core::SystemConfig::rog(4);
        random.name = "ROG-4-random";
        random.importance.random = true;
        systems.push_back(random);
    }

    const auto runs = stats::runSystems(workload, systems, cfg);
    stats::timeCompositionTable("Importance ablation: time composition",
                                runs)
        .printText(std::cout);
    stats::summaryTable("Importance ablation summary", runs, 1200.0,
                        70.0, false)
        .printText(std::cout);
    auto curves =
        stats::metricVsIteration("Importance ablation: statistical "
                                 "efficiency", runs);
    curves.printSummary(std::cout);
    curves.printCsv(std::cout);
    return 0;
}
