/**
 * @file
 * Figure 6 — CRUDA in the indoor environment (moderate instability),
 * same four panels as Fig. 1. Paper: gains shrink indoors (up to 1.8%
 * accuracy, up to 41.3% energy saving; stall cut by 42.4%-97.6%).
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 6: CRUDA indoors");

    core::CrudaWorkload workload(bench::paperCruda());
    auto cfg = bench::paperExperiment(stats::Environment::Indoor, 1000);
    const auto runs =
        stats::runSystems(workload, bench::paperSystems(), cfg);

    stats::printExperiment(std::cout, "Fig.6 CRUDA indoor", runs,
                           1800.0, 73.0, false);

    // Stall reduction, ROG vs baselines (paper: 42.4%-97.6% indoors).
    Table stall("stall reduction vs baselines",
                {"rog", "baseline", "stall_reduction_pct"});
    auto stall_of = [&](const stats::SystemRun &run) {
        double c, m, s;
        run.result.meanTimeComposition(c, m, s);
        return s;
    };
    for (std::size_t r = 4; r < runs.size(); ++r)
        for (std::size_t b = 0; b < 4; ++b)
            stall.addRow({runs[r].result.system, runs[b].result.system,
                          Table::num(100.0 * (1.0 - stall_of(runs[r]) /
                                              stall_of(runs[b])), 1)});
    stall.printText(std::cout);
    return 0;
}
