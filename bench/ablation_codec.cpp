/**
 * @file
 * Ablation — gradient compression (Sec. II-D "Gradient Compression"):
 * no compression vs the paper's lossless one-bit scheme [22] vs top-k
 * sparsification (the [38] family). The paper argues compression is
 * "indeed essential" over wireless — and that even with it, the
 * straggler effect persists.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Ablation: gradient compression codecs");

    core::CrudaWorkload workload(bench::paperCruda());

    Table wire("Wire volume per full model sync",
               {"codec", "bytes", "vs raw"});
    const double raw = core::modelWireBytes(
        workload, core::Granularity::Row, "identity");
    for (const char *codec : {"identity", "onebit", "topk"}) {
        const double bytes = core::modelWireBytes(
            workload, core::Granularity::Row, codec);
        wire.addRow({codec, Table::num(bytes, 0),
                     Table::num(100.0 * bytes / raw, 1) + "%"});
    }
    wire.printText(std::cout);

    auto ecfg = bench::paperExperiment(stats::Environment::Outdoor, 300);
    Table t("ROG-4 / SSP-4 outdoors by codec",
            {"system", "codec", "comm_s", "stall_s", "sec_per_iter",
             "acc@20min", "final_acc"});
    for (const auto &sys :
         {core::SystemConfig::ssp(4), core::SystemConfig::rog(4)}) {
        for (const char *codec : {"identity", "onebit", "topk"}) {
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = ecfg.eval_every;
            engine.codec = codec;
            const auto network = stats::makeNetwork(workload, ecfg);
            auto res =
                core::runDistributedTraining(workload, engine, network);
            const auto curve = stats::mergeCheckpoints(res);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            t.addRow({res.system, codec, Table::num(comm, 2),
                      Table::num(stall, 2),
                      Table::num(comp + comm + stall, 2),
                      Table::num(stats::metricAtTime(curve, 1200.0), 2),
                      Table::num(curve.back().mean_metric, 2)});
        }
    }
    t.printText(std::cout);
    std::cout << "(the network is calibrated against the one-bit "
                 "volume, so 'identity' shows the paper's point: "
                 "uncompressed training is communication-crushed)\n";
    return 0;
}
