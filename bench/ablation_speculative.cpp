/**
 * @file
 * Ablation — speculative transmission (Sec. III-A "Technically..."):
 * ROG's continuous transmission with timeout-discard vs the rejected
 * alternative of inserting a judgement ("has the MTA time passed?")
 * between every two successive rows, whose cost is empirically
 * comparable to transmitting one row and under-utilizes the channel.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Ablation: speculative transmission vs judgement "
                  "insertion");

    core::CrudaWorkload workload(bench::paperCruda());
    auto base = bench::paperExperiment(stats::Environment::Outdoor, 300);

    // Judgement cost comparable to one row's transmission time at the
    // calibrated mean bandwidth (the paper's observation).
    const double wire_row =
        core::modelWireBytes(workload, core::Granularity::Row,
                             "onebit") /
        static_cast<double>(workload.buildReplica()->rowCount());
    const double mean_bw = core::calibratedMeanBandwidth(
        core::modelWireBytes(workload, core::Granularity::WholeModel,
                             "onebit"),
        4);
    const double row_time = wire_row / (mean_bw / 4.0);

    struct Variant
    {
        const char *name;
        double judgement_s;
    };
    const Variant variants[] = {
        {"speculative (ROG)", 0.0},
        {"judgement 1x row-time", row_time},
        {"judgement 4x row-time", 4.0 * row_time},
    };

    Table t("Speculative transmission ablation",
            {"variant", "judgement_s", "comm_s", "stall_s",
             "sec_per_iter", "acc@20min"});
    for (const auto &v : variants) {
        core::EngineConfig engine;
        engine.system = core::SystemConfig::rog(4);
        engine.iterations = base.iterations;
        engine.eval_every = base.eval_every;
        engine.per_unit_judgement_seconds = v.judgement_s;
        const auto network = stats::makeNetwork(workload, base);
        auto result =
            core::runDistributedTraining(workload, engine, network);
        const auto curve = stats::mergeCheckpoints(result);
        double comp, comm, stall;
        result.meanTimeComposition(comp, comm, stall);
        t.addRow({v.name, Table::num(v.judgement_s, 4),
                  Table::num(comm, 3), Table::num(stall, 3),
                  Table::num(comp + comm + stall, 3),
                  Table::num(stats::metricAtTime(curve, 1200.0), 2)});
    }
    t.printText(std::cout);
    std::cout << "(speculative transmission keeps the channel busy; "
                 "judgement insertion wastes airtime per row)\n";
    return 0;
}
