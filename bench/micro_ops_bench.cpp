/**
 * @file
 * Microbenchmarks (google-benchmark) of the library's hot paths: the
 * per-iteration costs a real deployment would pay on-device — matmul,
 * one-bit compression, importance ranking, fluid-channel simulation,
 * and trace generation.
 */
#include <benchmark/benchmark.h>

#include <string>

#include "common/crc32c.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "compress/packbits.hpp"
#include "core/importance.hpp"
#include "net/channel.hpp"
#include "net/trace_generator.hpp"
#include "sim/process.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace rog;

/**
 * GEMM benchmark harness. Three rungs, one binary run per ROG_THREADS
 * value: "Scalar" is the seed's reference kernel (tensor::ref, default
 * flags), "Blocked" is the PR-2 autovectorized register-tiled kernel
 * (tensor::blocked, -march=native), and the plain variants are the
 * packed-panel microkernel engine behind tensor::matmul — whatever
 * tier the runtime dispatch picked (see BM_MatmulTier below for the
 * active tier's name in the counters). All three fan out across the
 * pool when ROG_THREADS > 1.
 */
template <void (*Gemm)(const tensor::Tensor &, const tensor::Tensor &,
                       tensor::Tensor &)>
void
gemmBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    tensor::Tensor a(n, n), b(n, n), out(n, n);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    for (auto _ : state) {
        Gemm(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}

void
BM_MatmulScalar(benchmark::State &state)
{
    gemmBench<tensor::ref::matmul>(state);
}
BENCHMARK(BM_MatmulScalar)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulBlocked(benchmark::State &state)
{
    gemmBench<tensor::blocked::matmul>(state);
}
BENCHMARK(BM_MatmulBlocked)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_Matmul(benchmark::State &state)
{
    gemmBench<tensor::matmul>(state);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransAScalar(benchmark::State &state)
{
    gemmBench<tensor::ref::matmulTransA>(state);
}
BENCHMARK(BM_MatmulTransAScalar)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransABlocked(benchmark::State &state)
{
    gemmBench<tensor::blocked::matmulTransA>(state);
}
BENCHMARK(BM_MatmulTransABlocked)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransA(benchmark::State &state)
{
    gemmBench<tensor::matmulTransA>(state);
}
BENCHMARK(BM_MatmulTransA)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransBScalar(benchmark::State &state)
{
    gemmBench<tensor::ref::matmulTransB>(state);
}
BENCHMARK(BM_MatmulTransBScalar)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransBBlocked(benchmark::State &state)
{
    gemmBench<tensor::blocked::matmulTransB>(state);
}
BENCHMARK(BM_MatmulTransBBlocked)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulTransB(benchmark::State &state)
{
    gemmBench<tensor::matmulTransB>(state);
}
BENCHMARK(BM_MatmulTransB)->Arg(64)->Arg(128)->Arg(256);

/**
 * Tag the run with the dispatched GEMM tier so BENCH_micro.json
 * records which microkernel produced the BM_Matmul numbers (mirrors
 * how bench_wire tags the CRC32C tier).
 */
void
BM_MatmulTier(benchmark::State &state)
{
    Rng rng(1);
    tensor::Tensor a(64, 64), b(64, 64), out(64, 64);
    a.randomNormal(rng, 1.0f);
    b.randomNormal(rng, 1.0f);
    for (auto _ : state) {
        tensor::matmul(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(std::string(tensor::matmulActiveTier()) + "/" +
                   tensor::matmulIsa());
}
BENCHMARK(BM_MatmulTier);

void
BM_Axpy(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    tensor::Tensor x(1, n), y(1, n);
    x.randomNormal(rng, 1.0f);
    y.randomNormal(rng, 1.0f);
    for (auto _ : state) {
        tensor::axpy(0.5f, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_MeanAbs(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    tensor::Tensor x(1, n);
    x.randomNormal(rng, 1.0f);
    const std::span<const float> v(x.data(), n);
    for (auto _ : state) {
        float m = tensor::meanAbs(v);
        benchmark::DoNotOptimize(m);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MeanAbs)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_SoftmaxRows(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    tensor::Tensor x(n, 64);
    x.randomNormal(rng, 1.0f);
    for (auto _ : state) {
        tensor::softmaxRows(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * n * 64);
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512);

void
BM_OneBitTranscode(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    compress::OneBitCodec codec;
    std::vector<float> in(width), out(width);
    for (auto &v : in)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        codec.transcodeRow(0, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * width * 4);
}
BENCHMARK(BM_OneBitTranscode)->Arg(64)->Arg(512)->Arg(4096);

/**
 * Wire-path kernels (full tier matrix in bench_wire.cpp; these entries
 * keep the headline comparisons in BENCH_micro.json): dispatched vs
 * reference CRC32C, word-wide vs reference packbits, and the fused
 * one-bit kernel vs the seed's separate passes.
 */
template <std::uint32_t (*Crc)(std::span<const std::uint8_t>,
                               std::uint32_t)>
void
crcBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(21);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    for (auto _ : state) {
        std::uint32_t c = Crc(data, 0);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_Crc32cRef(benchmark::State &state)
{
    crcBench<crc32cRef>(state);
}
BENCHMARK(BM_Crc32cRef)->Arg(4096)->Arg(65536);

void
BM_Crc32c(benchmark::State &state)
{
    crcBench<crc32c>(state);
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

template <void (*Pack)(std::span<const float>, std::span<std::uint8_t>)>
void
packBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(22);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    std::vector<std::uint8_t> packed(compress::packedBytes(n));
    for (auto _ : state) {
        Pack(v, packed);
        benchmark::DoNotOptimize(packed.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_PackSignsRef(benchmark::State &state)
{
    packBench<compress::packSignsRef>(state);
}
BENCHMARK(BM_PackSignsRef)->Arg(4096)->Arg(65536);

void
BM_PackSigns(benchmark::State &state)
{
    packBench<compress::packSigns>(state);
}
BENCHMARK(BM_PackSigns)->Arg(4096)->Arg(65536);

template <compress::OneBitChunkStats (*Kernel)(
    std::span<float>, std::span<const float>, std::span<float>,
    std::span<std::uint8_t>)>
void
onebitKernelBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(23);
    std::vector<float> grad(n), residual(n, 0.0f), out(n);
    for (auto &x : grad)
        x = static_cast<float>(rng.gaussian());
    std::vector<std::uint8_t> packed(compress::packedBytes(n));
    for (auto _ : state) {
        auto stats = Kernel(residual, grad, out, packed);
        benchmark::DoNotOptimize(stats.scale);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * 4);
}

void
BM_OneBitSeparate(benchmark::State &state)
{
    onebitKernelBench<compress::onebitTranscodeRef>(state);
}
BENCHMARK(BM_OneBitSeparate)->Arg(512)->Arg(4096);

void
BM_OneBitFused(benchmark::State &state)
{
    onebitKernelBench<compress::onebitTranscodeFused>(state);
}
BENCHMARK(BM_OneBitFused)->Arg(512)->Arg(4096);

void
BM_ImportanceRanking(benchmark::State &state)
{
    const auto units = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    std::vector<double> mags(units);
    std::vector<std::int64_t> iters(units);
    for (std::size_t i = 0; i < units; ++i) {
        mags[i] = rng.uniform();
        iters[i] = static_cast<std::int64_t>(rng.uniformInt(10));
    }
    core::ImportanceConfig cfg;
    for (auto _ : state) {
        auto order = core::rankUnits(core::ImportanceMode::Worker, cfg,
                                     mags, iters, rng);
        benchmark::DoNotOptimize(order.data());
    }
    state.SetItemsProcessed(state.iterations() * units);
}
BENCHMARK(BM_ImportanceRanking)->Arg(344)->Arg(4096)->Arg(32768);

void
BM_ChannelTransfers(benchmark::State &state)
{
    // Cost of simulating a batch of sequential transfers over a
    // fluctuating trace (events + fluid updates).
    const auto transfers = static_cast<std::size_t>(state.range(0));
    const auto trace =
        net::generateTrace(net::TraceModel::outdoor(50e3), 300.0, 4);
    for (auto _ : state) {
        sim::Simulation sim;
        net::Channel ch(sim, {trace});
        for (std::size_t i = 0; i < transfers; ++i)
            ch.startTransfer(0, 5000.0, net::Channel::kNoTimeout,
                             [](net::TransferResult) {});
        sim.run();
        benchmark::DoNotOptimize(ch.totalBytesDelivered());
    }
    state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_ChannelTransfers)->Arg(16)->Arg(128);

void
BM_TraceGeneration(benchmark::State &state)
{
    const double seconds = static_cast<double>(state.range(0));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        auto t = net::generateTrace(net::TraceModel::outdoor(50e3),
                                    seconds, ++seed);
        benchmark::DoNotOptimize(t.samples().data());
    }
}
BENCHMARK(BM_TraceGeneration)->Arg(60)->Arg(300);

} // namespace
