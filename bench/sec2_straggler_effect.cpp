/**
 * @file
 * Section II-B/II-D numbers — the motivating straggler measurement:
 * on a four-device team, gradients are computed in ~2.18 s, an ideal
 * (stable) network syncs the compressed gradients in ~1.47 s (67.4% of
 * compute), but indoor instability makes each device stall ~2.23 s per
 * iteration (102% of compute) under BSP.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Sec. II-B: the straggler effect under BSP");

    core::CrudaWorkload workload(bench::paperCruda());

    auto run_env = [&](stats::Environment env) {
        auto cfg = bench::paperExperiment(env, 250);
        return stats::runSystem(workload, core::SystemConfig::bsp(),
                                cfg);
    };
    const auto stable = run_env(stats::Environment::Stable);
    const auto indoor = run_env(stats::Environment::Indoor);
    const auto outdoor = run_env(stats::Environment::Outdoor);

    auto comp = [](const stats::SystemRun &r, double &c, double &m,
                   double &s) { r.result.meanTimeComposition(c, m, s); };

    double c0, m0, s0, c1, m1, s1, c2, m2, s2;
    comp(stable, c0, m0, s0);
    comp(indoor, c1, m1, s1);
    comp(outdoor, c2, m2, s2);

    Table t("BSP per-iteration composition across environments",
            {"environment", "compute_s", "comm_s", "stall_s",
             "comm/compute_pct", "stall/compute_pct"});
    auto row = [&](const char *name, double c, double m, double s) {
        t.addRow({name, Table::num(c, 2), Table::num(m, 2),
                  Table::num(s, 2), Table::num(100.0 * m / c, 1),
                  Table::num(100.0 * s / c, 1)});
    };
    row("stable (ideal)", c0, m0, s0);
    row("indoor", c1, m1, s1);
    row("outdoor", c2, m2, s2);
    t.printText(std::cout);

    Table paper("Paper reference points",
                {"quantity", "paper", "this repo"});
    paper.addRow({"compute per iteration", "2.18 s + compression",
                  Table::num(c0, 2) + " s"});
    paper.addRow({"ideal sync time", "1.47 s (67.4% of compute)",
                  Table::num(m0 + s0, 2) + " s (" +
                      Table::num(100.0 * (m0 + s0) / c0, 1) + "%)"});
    paper.addRow({"indoor stall per device", "2.23 s (102% of compute)",
                  Table::num(s1, 2) + " s (" +
                      Table::num(100.0 * s1 / c1, 1) + "%)"});
    paper.printText(std::cout);
    return 0;
}
