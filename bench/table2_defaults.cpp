/**
 * @file
 * Table II — default setup: batch sizes, learning rate, and the
 * compression/decompression cost included in computation time; plus
 * the derived model/communication constants used for calibration
 * (Sec. II-B: 2.18 s compute, ~1.47 s ideal four-device sync).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "core/testbed_profile.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Table II: default setup");

    const core::TestbedProfile profile;
    Table t("Table II reproduction",
            {"parameter", "paper", "this repo"});
    t.addRow({"batch size (robot)", "24", "20 (scaled task)"});
    t.addRow({"learning rate", "1e-6 (ConvMLP)", "1e-2 (scaled task)"});
    t.addRow({"compress+decompress cost", "0.42-0.51 s",
              Table::num(profile.compress_seconds, 2) + " s"});
    t.addRow({"compute time per iteration", "2.18 s",
              Table::num(profile.compute_seconds, 2) + " s"});
    t.addRow({"iteration compute incl. compression", "~2.65 s",
              Table::num(profile.iterationComputeSeconds(), 2) + " s"});
    t.printText(std::cout);

    core::CrudaWorkload workload(bench::paperCruda());
    const double raw = core::modelWireBytes(
        workload, core::Granularity::WholeModel, "identity");
    const double compressed = core::modelWireBytes(
        workload, core::Granularity::WholeModel, "onebit");
    const double rows = core::modelWireBytes(
        workload, core::Granularity::Row, "onebit");
    const double mean_bw =
        core::calibratedMeanBandwidth(compressed, 4);

    Table m("Model and calibration constants",
            {"quantity", "paper", "this repo"});
    m.addRow({"model size raw", "65 MB (ConvMLP)",
              Table::num(raw / 1024.0, 1) + " KiB"});
    m.addRow({"model size compressed", "2.1 MB (3.2%)",
              Table::num(compressed / 1024.0, 1) + " KiB (" +
                  Table::num(100.0 * compressed / raw, 1) + "%)"});
    m.addRow({"row-granular wire size", "+~12% overhead",
              Table::num(rows / 1024.0, 1) + " KiB (+" +
                  Table::num(100.0 * (rows / compressed - 1.0), 1) +
                  "%)"});
    m.addRow({"ideal 4-device sync round", "1.47 s",
              Table::num(8.0 * compressed / mean_bw, 2) + " s"});
    m.addRow({"calibrated mean link bandwidth", "~91 Mbps usable",
              Table::num(mean_bw / 1024.0, 1) + " KiB/s (scaled)"});
    m.printText(std::cout);
    return 0;
}
