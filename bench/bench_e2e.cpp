/**
 * @file
 * End-to-end training throughput (google-benchmark): full N-worker
 * simulated runs through the real engine — pretrainined workload,
 * calibrated traces, compression, transport, MTA — for the paper's
 * CRUDA and CRIMP presets under the ROG system.
 *
 * Two headline rates per preset, both emitted to BENCH_e2e.json by
 * scripts/run_benches.sh and gated by scripts/check_bench_regress.py:
 *
 *   items_per_second   completed training iterations per wall second
 *                      (summed over workers) — the "is the whole
 *                      stack getting faster" number the GEMM/codec/
 *                      wire work ultimately serves.
 *   sim_s_per_wall_s   virtual seconds simulated per wall second —
 *                      the DES efficiency of the same runs.
 *
 * The workload (including CRUDA's pretraining) is built once per
 * preset outside the timing loop; each timing iteration replays a
 * fresh runSystem over identical traces, so the measured work is
 * deterministic across repetitions.
 */
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "bench_util.hpp"
#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "stats/experiment.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace rog;

/** Shared experiment shape: short iteration-bounded outdoor runs. */
stats::ExperimentConfig
e2eConfig()
{
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor,
                                      bench::fastMode() ? 40 : 120);
    cfg.eval_every = 40;
    return cfg;
}

/** Run one system end to end and report the two headline rates. */
void
runE2e(benchmark::State &state, core::Workload &workload,
       const core::SystemConfig &system)
{
    const auto cfg = e2eConfig();
    double sim_seconds = 0.0;
    std::int64_t train_iters = 0;
    for (auto _ : state) {
        const auto run = stats::runSystem(workload, system, cfg);
        sim_seconds += run.result.sim_seconds;
        for (std::size_t it : run.result.worker_iterations)
            train_iters += static_cast<std::int64_t>(it);
        benchmark::DoNotOptimize(run.result.completed_iterations);
    }
    state.SetItemsProcessed(train_iters);
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        sim_seconds, benchmark::Counter::kIsRate);
    state.SetLabel(std::string("gemm:") + tensor::matmulActiveTier());
}

void
BM_E2E_CrudaRog(benchmark::State &state)
{
    static core::CrudaWorkload workload(bench::paperCruda(4));
    runE2e(state, workload, core::SystemConfig::rog(20));
}
BENCHMARK(BM_E2E_CrudaRog)->Unit(benchmark::kMillisecond);

void
BM_E2E_CrudaBsp(benchmark::State &state)
{
    // BSP on the same workload/traces: the throughput spread between
    // this and the ROG entry is the paper's headline, so regressions
    // in either direction are interesting.
    static core::CrudaWorkload workload(bench::paperCruda(4));
    runE2e(state, workload, core::SystemConfig::bsp());
}
BENCHMARK(BM_E2E_CrudaBsp)->Unit(benchmark::kMillisecond);

void
BM_E2E_CrimpRog(benchmark::State &state)
{
    static core::CrimpWorkload workload(bench::paperCrimp(4));
    runE2e(state, workload, core::SystemConfig::rog(20));
}
BENCHMARK(BM_E2E_CrimpRog)->Unit(benchmark::kMillisecond);

} // namespace
