/**
 * @file
 * Table III — power in the three device states (compute 13.35 W,
 * communicate 4.25 W, stall 4.04 W), plus the per-state time and
 * energy shares measured by matching the power model against each
 * system's state timeline (the paper's jtop methodology).
 */
#include <iostream>

#include "bench_util.hpp"
#include "sim/energy.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Table III: power in different states");

    const sim::PowerModel power;
    Table t("Table III reproduction", {"state", "power_w", "note"});
    t.addRow({"computation", Table::num(power.compute_w, 2),
              "forward/backward + compression"});
    t.addRow({"communication", Table::num(power.communicate_w, 2),
              "radio active, chips mostly idle"});
    t.addRow({"stall", Table::num(power.stall_w, 2),
              "leakage only: ~30% of compute power"});
    t.printText(std::cout);

    // Energy breakdown per system on the outdoor CRUDA run: where the
    // joules go, and why cutting stall saves battery.
    core::CrudaWorkload workload(bench::paperCruda());
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 300);
    const auto runs =
        stats::runSystems(workload, bench::paperSystems(), cfg);

    Table e("Per-state energy breakdown (mean per robot)",
            {"system", "compute_j", "comm_j", "stall_j", "total_j",
             "stall_share_pct"});
    for (const auto &run : runs) {
        double cs = 0, ms = 0, ss = 0;
        const auto n =
            static_cast<double>(run.result.worker_energy_j.size());
        for (std::size_t w = 0; w < run.result.worker_energy_j.size();
             ++w) {
            cs += run.result.worker_compute_s[w] * power.compute_w / n;
            ms += run.result.worker_comm_s[w] * power.communicate_w / n;
            ss += run.result.worker_stall_s[w] * power.stall_w / n;
        }
        const double total = cs + ms + ss;
        e.addRow({run.result.system, Table::num(cs, 1),
                  Table::num(ms, 1), Table::num(ss, 1),
                  Table::num(total, 1),
                  Table::num(100.0 * ss / total, 1)});
    }
    e.printText(std::cout);
    return 0;
}
