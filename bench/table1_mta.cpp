/**
 * @file
 * Table I — MTA (minimum transmission amount) values under different
 * staleness thresholds: the solution of (1-P)^(S-1) = P.
 *
 * Paper values: 2 -> 0.5, 3 -> 0.38, 4 -> 0.32, 5 -> 0.28, 6 -> 0.25,
 * 7 -> 0.22, 8 -> 0.2.
 */
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/mta.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Table I: MTA values under different thresholds");

    const double paper[] = {0.50, 0.38, 0.32, 0.28, 0.25, 0.22, 0.20};

    Table t("Table I reproduction",
            {"threshold", "mta_paper", "mta_measured", "match",
             "residual (1-P)^(S-1) - P"});
    for (std::size_t s = 2; s <= 8; ++s) {
        const double p = core::mtaFraction(s);
        const double residual =
            std::pow(1.0 - p, static_cast<double>(s - 1)) - p;
        const bool match = std::fabs(p - paper[s - 2]) < 0.005;
        t.addRow({std::to_string(s), Table::num(paper[s - 2], 2),
                  Table::num(p, 4), match ? "yes" : "NO",
                  Table::num(residual, 12)});
    }
    t.printText(std::cout);

    // Extended thresholds used in Fig. 10.
    Table ext("MTA beyond Table I (thresholds of Fig. 10)",
              {"threshold", "mta"});
    for (std::size_t s : {10u, 20u, 30u, 40u})
        ext.addRow({std::to_string(s),
                    Table::num(core::mtaFraction(s), 4)});
    ext.printText(std::cout);
    return 0;
}
