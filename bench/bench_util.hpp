/**
 * @file
 * Shared configuration for the benchmark binaries that regenerate the
 * paper's tables and figures.
 *
 * Every bench prints (a) aligned text tables mirroring the paper's
 * panels and (b) CSV series for replotting. Set ROG_BENCH_FAST=1 to
 * shrink iteration counts ~4x for smoke runs.
 */
#ifndef ROG_BENCH_BENCH_UTIL_HPP
#define ROG_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "parallel/parallel_for.hpp"
#include "stats/experiment.hpp"

namespace rog {
namespace bench {

/** True when ROG_BENCH_FAST=1 (CI smoke mode). */
inline bool
fastMode()
{
    const char *v = std::getenv("ROG_BENCH_FAST");
    return v && std::string(v) == "1";
}

/** Scale an iteration count down in fast mode. */
inline std::size_t
iters(std::size_t full)
{
    return fastMode() ? std::max<std::size_t>(full / 4, 40) : full;
}

/** The paper's standard CRUDA workload (4 robots, non-IID shards). */
inline core::CrudaWorkloadConfig
paperCruda(std::size_t workers = 4)
{
    core::CrudaWorkloadConfig cfg;
    cfg.workers = workers;
    return cfg;
}

/** The paper's standard CRIMP workload. */
inline core::CrimpWorkloadConfig
paperCrimp(std::size_t workers = 4)
{
    core::CrimpWorkloadConfig cfg;
    cfg.workers = workers;
    return cfg;
}

/** The six systems of Fig. 1 / 6 / 7. */
inline std::vector<core::SystemConfig>
paperSystems()
{
    return {core::SystemConfig::bsp(),        core::SystemConfig::ssp(4),
            core::SystemConfig::ssp(20),      core::SystemConfig::flownSystem(),
            core::SystemConfig::rog(4),       core::SystemConfig::rog(20)};
}

/** Standard experiment config for an environment. */
inline stats::ExperimentConfig
paperExperiment(stats::Environment env, std::size_t iterations)
{
    stats::ExperimentConfig cfg;
    cfg.env = env;
    cfg.iterations = iters(iterations);
    cfg.eval_every = 50;
    cfg.time_horizon_seconds = 1e9; // iteration-bounded runs.
    return cfg;
}

/**
 * Run fn(seed) for every seed, fanning the replicates out over the
 * global thread pool (ROG_THREADS), and return the results in seed
 * order. Each replicate must be self-contained (own engine/workload
 * state); the returned vector is identical for any thread count.
 */
template <typename Fn>
auto
runReplicates(const std::vector<std::uint64_t> &seeds, const Fn &fn)
    -> std::vector<decltype(fn(std::uint64_t{}))>
{
    std::vector<decltype(fn(std::uint64_t{}))> out(seeds.size());
    parallel::parallelFor(0, seeds.size(), 1,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  out[i] = fn(seeds[i]);
                          });
    return out;
}

/** Banner separating bench sections in combined output. */
inline void
banner(const std::string &title)
{
    std::cout << "\n################ " << title << " ################\n";
}

} // namespace bench
} // namespace rog

#endif // ROG_BENCH_BENCH_UTIL_HPP
