/**
 * @file
 * Figure 10 — threshold sensitivity: ROG with staleness thresholds 4,
 * 20, 30, 40 on CRUDA outdoors.
 *
 * Paper: larger thresholds buy training throughput (and early-stage
 * speed) but degrade late-stage statistical efficiency — final
 * accuracy dips slightly for 30/40; picking the threshold is a
 * speed/quality trade-off left as future work.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 10: ROG threshold sensitivity");

    core::CrudaWorkload workload(bench::paperCruda());
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 1200);

    const std::vector<core::SystemConfig> systems = {
        core::SystemConfig::rog(4), core::SystemConfig::rog(20),
        core::SystemConfig::rog(30), core::SystemConfig::rog(40)};
    const auto runs = stats::runSystems(workload, systems, cfg);

    auto a = stats::metricVsTime("Fig.10a accuracy vs wall-clock", runs);
    a.printSummary(std::cout);
    a.printCsv(std::cout);
    auto b = stats::metricVsIteration("Fig.10b statistical efficiency",
                                      runs);
    b.printSummary(std::cout);
    b.printCsv(std::cout);

    Table t("Fig.10 summary (larger threshold: faster iterations, "
            "lower late statistical efficiency)",
            {"system", "sec_per_iter", "acc@200iter", "final_acc"});
    for (const auto &run : runs) {
        double comp, comm, stall;
        run.result.meanTimeComposition(comp, comm, stall);
        t.addRow({run.result.system,
                  Table::num(comp + comm + stall, 2),
                  Table::num(stats::metricAtIteration(run.curve, 200),
                             2),
                  Table::num(run.curve.back().mean_metric, 2)});
    }
    t.printText(std::cout);
    return 0;
}
