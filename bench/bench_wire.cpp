/**
 * @file
 * Wire-path microbenchmarks (google-benchmark): every kernel a
 * gradient row passes through between the optimizer and the channel —
 * CRC32C (all tiers), sign-bit packing, the one-bit transcode (fused
 * vs the seed's separate passes), frame header serialize/parse, and
 * BufferPool lease vs fresh allocation.
 *
 * scripts/run_benches.sh runs this binary and records the results in
 * BENCH_wire.json; scripts/check_bench_regress.py compares a fresh
 * run against the committed file and fails CI on >25% regressions.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "common/buffer_pool.hpp"
#include "common/crc32c.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "compress/packbits.hpp"
#include "net/transport/frame.hpp"

namespace {

using namespace rog;

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    return data;
}

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

// ---- CRC32C tiers ----

template <std::uint32_t (*Crc)(std::span<const std::uint8_t>,
                               std::uint32_t)>
void
crcBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = randomBytes(n, 0xC4C1);
    for (auto _ : state) {
        std::uint32_t c = Crc(data, 0);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_Crc32cRef(benchmark::State &state)
{
    crcBench<crc32cRef>(state);
}
BENCHMARK(BM_Crc32cRef)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_Crc32cSlice8(benchmark::State &state)
{
    crcBench<crc32cSlice8>(state);
}
BENCHMARK(BM_Crc32cSlice8)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_Crc32cHw(benchmark::State &state)
{
    if (!crc32cHwAvailable()) {
        state.SkipWithError("no CRC32C instruction on this CPU");
        return;
    }
    crcBench<crc32cHw>(state);
}
BENCHMARK(BM_Crc32cHw)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_Crc32c(benchmark::State &state)
{
    crcBench<crc32c>(state);
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

// ---- Sign-bit packing ----

template <void (*Pack)(std::span<const float>, std::span<std::uint8_t>)>
void
packBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto v = randomFloats(n, 0xB175);
    std::vector<std::uint8_t> packed(compress::packedBytes(n));
    for (auto _ : state) {
        Pack(v, packed);
        benchmark::DoNotOptimize(packed.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_PackSignsRef(benchmark::State &state)
{
    packBench<compress::packSignsRef>(state);
}
BENCHMARK(BM_PackSignsRef)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_PackSigns(benchmark::State &state)
{
    packBench<compress::packSigns>(state);
}
BENCHMARK(BM_PackSigns)->Arg(512)->Arg(4096)->Arg(65536);

template <void (*Unpack)(std::span<const std::uint8_t>, std::size_t,
                         std::span<float>)>
void
unpackBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto v = randomFloats(n, 0x0B17);
    std::vector<std::uint8_t> packed(compress::packedBytes(n));
    compress::packSigns(v, packed);
    std::vector<float> out(n);
    for (auto _ : state) {
        Unpack(packed, n, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_UnpackSignsRef(benchmark::State &state)
{
    unpackBench<compress::unpackSignsRef>(state);
}
BENCHMARK(BM_UnpackSignsRef)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_UnpackSigns(benchmark::State &state)
{
    unpackBench<compress::unpackSigns>(state);
}
BENCHMARK(BM_UnpackSigns)->Arg(512)->Arg(4096)->Arg(65536);

// ---- One-bit transcode: fused single sweep vs the seed pipeline ----

template <compress::OneBitChunkStats (*Kernel)(
    std::span<float>, std::span<const float>, std::span<float>,
    std::span<std::uint8_t>)>
void
onebitBench(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto grad = randomFloats(n, 0x1B17);
    std::vector<float> residual(n, 0.0f), out(n);
    std::vector<std::uint8_t> packed(compress::packedBytes(n));
    for (auto _ : state) {
        auto stats = Kernel(residual, grad, out, packed);
        benchmark::DoNotOptimize(stats.scale);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * 4);
}

void
BM_OneBitSeparate(benchmark::State &state)
{
    onebitBench<compress::onebitTranscodeRef>(state);
}
BENCHMARK(BM_OneBitSeparate)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_OneBitFused(benchmark::State &state)
{
    onebitBench<compress::onebitTranscodeFused>(state);
}
BENCHMARK(BM_OneBitFused)->Arg(512)->Arg(4096)->Arg(65536);

// ---- Frame header serialize + parse round-trip ----

void
BM_FrameRoundtrip(benchmark::State &state)
{
    net::transport::FrameHeader hdr;
    hdr.worker = 3;
    hdr.version = 1234567;
    hdr.row = 42;
    hdr.chunk_seq = 2;
    hdr.chunk_count = 5;
    hdr.payload_off = 4096;
    hdr.payload_len = 16384;
    hdr.payload_crc = 0xDEADBEEF;
    std::vector<std::uint8_t> wire(
        net::transport::FrameHeader::kWireSize);
    for (auto _ : state) {
        hdr.serialize(wire);
        auto parsed = net::transport::FrameHeader::parse(wire);
        benchmark::DoNotOptimize(parsed);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameRoundtrip);

// ---- BufferPool lease vs a fresh vector per message ----

void
BM_PoolLease(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    BufferPool pool;
    { auto warm = pool.leaseBytes(n); } // prime the free list.
    for (auto _ : state) {
        auto lease = pool.leaseBytes(n);
        lease[0] = 1; // touch so the loop cannot fold away.
        benchmark::DoNotOptimize(lease.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolLease)->Arg(16 << 10)->Arg(256 << 10);

void
BM_FreshAlloc(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        std::vector<std::uint8_t> buf(n);
        buf[0] = 1;
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreshAlloc)->Arg(16 << 10)->Arg(256 << 10);

} // namespace
