/**
 * @file
 * Figure 8 — micro-event analysis: real-time bandwidth of one robot
 * against the percentage of rows ROG transmits per iteration
 * (transmission rate) and how many iterations the robot is behind the
 * fastest worker (staleness).
 *
 * Paper: under fluctuation ROG adjusts the transmission rate
 * immediately and staleness stays at 0-1; during a long deep fade no
 * system can keep in sync and staleness slowly accumulates toward the
 * threshold; on recovery the robot catches up quickly because it is
 * allowed to transmit a subset of its rows.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 8: micro-event analysis (ROG-4, outdoor)");

    core::CrudaWorkload workload(bench::paperCruda());
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 400);
    cfg.eval_every = 1000; // metrics not needed here.

    const auto run =
        stats::runSystem(workload, core::SystemConfig::rog(4), cfg);
    const auto network = stats::makeNetwork(workload, cfg);

    // Observe robot 0 (paper records one robot).
    const std::size_t robot = 0;
    SeriesSet series("Fig.8 micro events (robot 0)", "time_s", "value");
    for (const auto &rec : run.result.iterations) {
        if (rec.worker != robot)
            continue;
        const double t = rec.end_time_s;
        const double bw_norm =
            network.link_traces[robot].bytesPerSecAt(t) /
            network.link_traces[robot].meanBytesPerSec() * 100.0;
        series.add("bandwidth_pct_of_mean", t, bw_norm);
        series.add("transmission_rate_pct", t,
                   100.0 * rec.push_fraction);
        series.add("staleness_iters", t,
                   static_cast<double>(rec.staleness_behind));
    }
    series.printSummary(std::cout);
    series.printCsv(std::cout);

    // Shape checks the paper narrates.
    double max_staleness = 0.0;
    double min_rate = 100.0;
    std::size_t partial_iters = 0;
    std::size_t robot_iters = 0;
    for (const auto &rec : run.result.iterations) {
        if (rec.worker != robot)
            continue;
        ++robot_iters;
        max_staleness = std::max(
            max_staleness, static_cast<double>(rec.staleness_behind));
        min_rate = std::min(min_rate, 100.0 * rec.push_fraction);
        if (rec.push_fraction < 0.999)
            ++partial_iters;
    }
    Table summary("Fig.8 shape summary",
                  {"metric", "value", "paper_expectation"});
    summary.addRow({"max staleness (iters)", Table::num(max_staleness, 0),
                    "accumulates to ~threshold (4) in deep fades"});
    summary.addRow({"min transmission rate (%)", Table::num(min_rate, 1),
                    "drops toward MTA (~32%) under pressure"});
    summary.addRow({"partial-transmission iters (%)",
                    Table::num(100.0 * partial_iters /
                               std::max<std::size_t>(robot_iters, 1), 1),
                    "frequent under outdoor instability"});
    summary.printText(std::cout);
    return 0;
}
