/**
 * @file
 * Figure 3 — instability of robotic IoT networks: 5-minute bandwidth
 * traces sampled at 10 Hz, indoors and outdoors.
 *
 * Paper: a 20% fluctuation of bandwidth capacity happens every ~0.4 s
 * and a 40% fluctuation every ~1.2 s; outdoor bandwidth frequently
 * drops to extremely low values near 0 Mbit/s.
 */
#include <iostream>

#include "bench_util.hpp"
#include "net/trace_generator.hpp"
#include "net/trace_stats.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 3: bandwidth instability");

    // Report at the paper's bandwidth scale (Mbps) for readability;
    // instability statistics are scale-free.
    const double mean_bps = 100e6 / 8.0; // 100 Mbps in bytes/sec.

    Table stats_table("Fig.3 trace statistics (paper: 20% swing / "
                      "0.4s, 40% swing / 1.2s, outdoor near-zero drops)",
                      {"environment", "seed", "mean_mbps", "sd_mbps",
                       "sec_per_20pct", "sec_per_40pct",
                       "deep_fade_pct", "min_mbps"});

    SeriesSet series("Fig.3 bandwidth traces (downsampled)", "time_s",
                     "bandwidth_mbps");

    const std::vector<std::uint64_t> seeds{7, 21};
    for (auto [name, model] :
         {std::pair<const char *, net::TraceModel>{
              "indoor", net::TraceModel::indoor(mean_bps)},
          {"outdoor", net::TraceModel::outdoor(mean_bps)}}) {
        // Generate the per-seed replicates on the pool; results come
        // back in seed order so the report is thread-count invariant.
        struct Replicate
        {
            net::TraceStats stats;
            std::vector<double> series_mbps; // 1 Hz, seed 7 only.
        };
        const double to_mbps = 8.0 / 1e6;
        const auto reps = bench::runReplicates(
            seeds, [&](std::uint64_t seed) {
                const auto trace = net::generateTrace(model, 300.0, seed);
                Replicate r;
                r.stats = net::computeTraceStats(trace);
                if (seed == 7) {
                    // Downsample to 1 Hz for the plotted series.
                    const auto &s = trace.samples();
                    for (std::size_t i = 0; i < s.size(); i += 10)
                        r.series_mbps.push_back(s[i] * to_mbps);
                }
                return r;
            });
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            const auto &st = reps[i].stats;
            stats_table.addRow(
                {name, std::to_string(seeds[i]),
                 Table::num(st.mean_bytes_per_sec * to_mbps, 1),
                 Table::num(st.stddev_bytes_per_sec * to_mbps, 1),
                 Table::num(st.seconds_per_20pct_fluctuation, 2),
                 Table::num(st.seconds_per_40pct_fluctuation, 2),
                 Table::num(100.0 * st.deep_fade_fraction, 1),
                 Table::num(st.min_bytes_per_sec * to_mbps, 2)});
            for (std::size_t j = 0; j < reps[i].series_mbps.size(); ++j)
                series.add(name, static_cast<double>(j),
                           reps[i].series_mbps[j]);
        }
    }

    stats_table.printText(std::cout);
    series.printSummary(std::cout);
    series.printCsv(std::cout);
    return 0;
}
