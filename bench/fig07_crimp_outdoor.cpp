/**
 * @file
 * Figure 7 — CRIMP (implicit mapping and positioning) outdoors: time
 * composition and trajectory error vs iteration / wall-clock / energy.
 *
 * Paper: 6%-13% error reduction at 30 min, 16%-30% at 60 min, and
 * 32%-41% less energy to reach error 0.5. With the smaller model the
 * straggler effect persists: stall is ~60% of communication in BSP.
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 7: CRIMP outdoors");

    core::CrimpWorkload workload(bench::paperCrimp());
    auto cfg = bench::paperExperiment(stats::Environment::Outdoor, 1500);
    // CRIMP's error targets (lower is better). Our synthetic scene's
    // error scale differs from nice-slam's trajectory error; the
    // target is the mid-curve value, like the paper's 0.5.
    const double target_error = 0.12;

    const auto runs =
        stats::runSystems(workload, bench::paperSystems(), cfg);
    stats::printExperiment(std::cout, "Fig.7 CRIMP outdoor", runs,
                           1800.0, target_error,
                           /*lower_is_better=*/true);

    Table deltas("ROG vs baselines (paper: -16-30% error at 60min, "
                 "-32-41% energy to target)",
                 {"rog", "baseline", "error_reduction_pct_at_30min",
                  "energy_saving_pct"});
    for (std::size_t r = 4; r < runs.size(); ++r) {
        for (std::size_t b = 0; b < 4; ++b) {
            const double er =
                stats::metricAtTime(runs[r].curve, 1800.0);
            const double eb =
                stats::metricAtTime(runs[b].curve, 1800.0);
            const double e_rog = stats::energyToReach(
                runs[r].curve, target_error, true);
            const double e_base = stats::energyToReach(
                runs[b].curve, target_error, true);
            deltas.addRow({runs[r].result.system,
                           runs[b].result.system,
                           Table::num(100.0 * (1.0 - er / eb), 1),
                           Table::num(100.0 * (1.0 - e_rog / e_base),
                                      1)});
        }
    }
    deltas.printText(std::cout);
    return 0;
}
