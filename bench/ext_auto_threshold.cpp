/**
 * @file
 * Extension — automatic threshold selection (Sec. VI-C future work):
 * ROG with a stall-budget feedback controller over the RSP threshold,
 * against fixed thresholds, in both environments. The controller
 * should track the best fixed threshold per environment without being
 * told which environment it is in.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Extension: automatic staleness threshold");

    core::CrudaWorkload workload(bench::paperCruda());

    for (auto env :
         {stats::Environment::Indoor, stats::Environment::Outdoor}) {
        auto ecfg = bench::paperExperiment(env, 400);
        Table t("Auto threshold vs fixed (" +
                    stats::environmentName(env) + ")",
                {"system", "sec_per_iter", "stall_s", "acc@20min",
                 "final_acc"});
        auto run_one = [&](const core::SystemConfig &sys, bool autot) {
            core::EngineConfig engine;
            engine.system = sys;
            engine.iterations = ecfg.iterations;
            engine.eval_every = ecfg.eval_every;
            engine.auto_threshold = autot;
            const auto network = stats::makeNetwork(workload, ecfg);
            auto res =
                core::runDistributedTraining(workload, engine, network);
            const auto curve = stats::mergeCheckpoints(res);
            double comp, comm, stall;
            res.meanTimeComposition(comp, comm, stall);
            t.addRow({autot ? sys.name + "-auto" : sys.name,
                      Table::num(comp + comm + stall, 2),
                      Table::num(stall, 3),
                      Table::num(stats::metricAtTime(curve, 1200.0), 2),
                      Table::num(curve.back().mean_metric, 2)});
        };
        run_one(core::SystemConfig::rog(4), false);
        run_one(core::SystemConfig::rog(20), false);
        run_one(core::SystemConfig::rog(4), true);
        t.printText(std::cout);
    }
    return 0;
}
