/**
 * @file
 * Extension — crash-consistent server recovery: the parameter server
 * dies mid-run (`server_crash` fault) and restores itself from the
 * newest write-ahead checkpoint. The sweep varies the checkpoint
 * cadence and reports the trade it buys: a tight cadence bounds the
 * rollback (iterations of server state lost and re-pushed by the
 * workers) at the cost of more checkpoint writes; a loose cadence —
 * or none at all, falling back to the genesis snapshot — pays for
 * cheap steady state with a long re-convergence after the crash.
 * The InvariantChecker audits every run (no double-apply after
 * recovery, write-ahead ordering respected).
 */
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"

int
main()
{
    using namespace rog;
    bench::banner(
        "Extension: server crash recovery vs checkpoint cadence");

    auto ecfg = bench::paperExperiment(stats::Environment::Outdoor, 200);
    const std::size_t crash_iter = (ecfg.iterations * 4) / 5 + 3;
    const fault::FaultPlan plan = fault::FaultPlan::parse(
        "server_crash iter=" + std::to_string(crash_iter) + "\n");

    struct RunOut
    {
        core::RunResult result;
        bool clean = true;
        std::string report;
    };
    const auto run = [&](const fault::FaultPlan *fp,
                         std::size_t cadence,
                         const std::string &path) {
        // Fresh workload per run: base and crashed runs must start
        // from identical state or the time delta measures nothing.
        core::CrudaWorkload workload(bench::paperCruda());
        fault::InvariantChecker checker;
        core::EngineConfig engine;
        engine.system = core::SystemConfig::rog(4);
        engine.iterations = ecfg.iterations;
        engine.eval_every = ecfg.eval_every;
        engine.checkpoint_every = cadence;
        engine.checkpoint_path = path;
        engine.fault_plan = fp;
        engine.invariants = &checker;
        const auto network = stats::makeNetwork(workload, ecfg);
        RunOut out;
        out.result =
            core::runDistributedTraining(workload, engine, network);
        out.clean = checker.clean();
        out.report = checker.report();
        return out;
    };

    std::size_t total_violations = 0;
    Table t("Server crashes at iteration " + std::to_string(crash_iter) +
                " (ROG-4, outdoor)",
            {"cadence", "ckpts", "rollback_iters", "base_s", "crashed_s",
             "recovery_cost_s", "invariants"});
    const std::size_t cadences[] = {0, 1, 5, 25, 100};
    for (const std::size_t cadence : cadences) {
        // cadence 0 with no path = no durable checkpoint at all: the
        // server falls back to its genesis snapshot.
        const std::string path =
            cadence == 0 ? ""
                         : "/tmp/rog_ext_recovery_" +
                               std::to_string(cadence) + ".rogs";
        const RunOut base = run(nullptr, cadence, path);
        const RunOut crashed = run(&plan, cadence, path);
        if (!path.empty())
            std::remove(path.c_str());
        for (const RunOut *r : {&base, &crashed}) {
            if (!r->clean) {
                ++total_violations;
                std::cerr << "cadence " << cadence
                          << " invariant violations:\n"
                          << r->report;
            }
        }
        std::int64_t rollback = 0;
        for (const auto &rr : crashed.result.recoveries)
            rollback += rr.crash_iter - rr.checkpoint_iter;
        t.addRow({cadence == 0 ? "none" : std::to_string(cadence),
                  std::to_string(crashed.result.checkpoints_written),
                  std::to_string(rollback),
                  Table::num(base.result.sim_seconds, 1),
                  Table::num(crashed.result.sim_seconds, 1),
                  Table::num(crashed.result.sim_seconds -
                                 base.result.sim_seconds,
                             1),
                  crashed.clean && base.clean ? "clean" : "VIOLATED"});
    }
    t.printText(std::cout);
    std::cout << "(rollback = server iterations lost to the crash and "
                 "re-pushed by the workers; recovery cost = extra "
                 "virtual seconds vs the same cadence uninterrupted; "
                 "an aligned cadence-1 checkpoint makes recovery an "
                 "identity restore)\n";
    return total_violations == 0 ? 0 : 1;
}
