/**
 * @file
 * Figure 9 — sensitivity studies: batch size (x1, x2, x4) and number
 * of workers (4, 6, 8) for BSP, SSP-4, and ROG-4, CRUDA outdoors.
 *
 * Paper: larger batches dilute communication (straggler effect less
 * severe, ROG's edge shrinks but persists: +5.3% / +3.5% accuracy);
 * more workers increase shared-channel contention (straggler effect
 * worsens; ROG keeps 3.0%-3.7% accuracy gain and 48-55% energy
 * savings).
 */
#include <iostream>

#include "bench_util.hpp"

int
main()
{
    using namespace rog;
    bench::banner("Figure 9: sensitivity (batch size, worker count)");

    const std::vector<core::SystemConfig> systems = {
        core::SystemConfig::bsp(), core::SystemConfig::ssp(4),
        core::SystemConfig::rog(4)};

    // ---- Left column: batch size x1 / x2 / x4 ----
    SeriesSet batch_time("Fig.9a accuracy vs wall-clock (batch sweep)",
                         "time_s", "accuracy_pct");
    SeriesSet batch_energy("Fig.9c accuracy vs energy (batch sweep)",
                           "energy_j", "accuracy_pct");
    Table batch_comp("Fig.9e time composition (batch sweep)",
                     {"system", "batch", "compute_s", "comm_s",
                      "stall_s", "total_s"});
    {
        core::CrudaWorkload workload(bench::paperCruda());
        for (double scale : {1.0, 2.0, 4.0}) {
            auto cfg = bench::paperExperiment(
                stats::Environment::Outdoor, 500);
            cfg.batch_scale = scale;
            const auto runs = stats::runSystems(workload, systems, cfg);
            const std::string tag =
                "x" + std::to_string(static_cast<int>(scale));
            for (const auto &run : runs) {
                const std::string label = run.result.system + "-B" + tag;
                for (const auto &c : run.curve) {
                    batch_time.add(label, c.mean_time_s, c.mean_metric);
                    batch_energy.add(label, c.mean_energy_j,
                                     c.mean_metric);
                }
                double comp, comm, stall;
                run.result.meanTimeComposition(comp, comm, stall);
                batch_comp.addRow({run.result.system, tag,
                                   Table::num(comp), Table::num(comm),
                                   Table::num(stall),
                                   Table::num(comp + comm + stall)});
            }
        }
    }
    batch_comp.printText(std::cout);
    batch_time.printSummary(std::cout);
    batch_time.printCsv(std::cout);
    batch_energy.printCsv(std::cout);

    // ---- Right column: 4 / 6 / 8 workers ----
    SeriesSet worker_time("Fig.9b accuracy vs wall-clock (worker sweep)",
                          "time_s", "accuracy_pct");
    SeriesSet worker_energy("Fig.9d accuracy vs energy (worker sweep)",
                            "energy_j", "accuracy_pct");
    Table worker_comp("Fig.9f time composition (worker sweep)",
                      {"system", "workers", "compute_s", "comm_s",
                       "stall_s", "total_s"});
    for (std::size_t workers : {4u, 6u, 8u}) {
        core::CrudaWorkload workload(bench::paperCruda(workers));
        auto cfg =
            bench::paperExperiment(stats::Environment::Outdoor, 500);
        const auto runs = stats::runSystems(workload, systems, cfg);
        for (const auto &run : runs) {
            const std::string label =
                run.result.system + "-N" + std::to_string(workers);
            for (const auto &c : run.curve) {
                worker_time.add(label, c.mean_time_s, c.mean_metric);
                worker_energy.add(label, c.mean_energy_j,
                                  c.mean_metric);
            }
            double comp, comm, stall;
            run.result.meanTimeComposition(comp, comm, stall);
            worker_comp.addRow({run.result.system,
                                std::to_string(workers),
                                Table::num(comp), Table::num(comm),
                                Table::num(stall),
                                Table::num(comp + comm + stall)});
        }
    }
    worker_comp.printText(std::cout);
    worker_time.printSummary(std::cout);
    worker_time.printCsv(std::cout);
    worker_energy.printCsv(std::cout);
    return 0;
}
