/**
 * @file
 * Workflow trace (Fig. 4 companion): a 3-worker toy run at row
 * granularity, printing per-iteration, per-worker protocol events —
 * how many rows were pushed/pulled, the transmission fraction ATP
 * chose, the stall imposed by the RSP gate, and the staleness each
 * worker accumulated. Makes the row-level scheduling visible the way
 * the paper's workflow figure does.
 *
 * Usage: workflow_trace [iterations]
 */
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/engine.hpp"
#include "core/mta.hpp"
#include "core/workloads.hpp"
#include "net/trace_generator.hpp"

int
main(int argc, char **argv)
{
    using namespace rog;

    const std::size_t iterations =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;

    // A deliberately tiny setup so every event is readable.
    core::CrudaWorkloadConfig wcfg;
    wcfg.workers = 3;
    wcfg.data.train_samples = 1500;
    wcfg.data.test_samples = 300;
    wcfg.model.hidden = {24, 16};
    wcfg.pretrain_iters = 100;
    wcfg.eval_subset = 300;
    core::CrudaWorkload workload(wcfg);

    core::EngineConfig engine;
    engine.system = core::SystemConfig::rog(4);
    engine.iterations = iterations;
    engine.eval_every = iterations;

    core::NetworkSetup network;
    const auto model = net::TraceModel::outdoor(15e3);
    for (std::size_t w = 0; w < 3; ++w)
        network.link_traces.push_back(
            net::generateTrace(model, 120.0, 100 + w));

    const auto res =
        core::runDistributedTraining(workload, engine, network);

    std::cout << "ROG-4 workflow trace: " << res.total_units
              << " rows, MTA = " << core::mtaUnits(4, res.total_units)
              << " rows (" << core::mtaFraction(4) * 100.0 << "%)\n\n";
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "  t_end  worker iter  pushed pulled  tx%   comm_s "
                 "stall_s behind\n";
    for (const auto &r : res.iterations) {
        std::cout << std::setw(7) << r.end_time_s << "  w" << r.worker
                  << "     #" << std::setw(2) << r.iteration << "   "
                  << std::setw(4) << r.units_pushed << "  "
                  << std::setw(4) << r.units_pulled << "  "
                  << std::setw(5) << 100.0 * r.push_fraction << "  "
                  << std::setw(6) << r.comm_s << "  " << std::setw(6)
                  << r.stall_s << "   " << r.staleness_behind << "\n";
    }

    std::cout << "\nrun: " << res.sim_seconds << " s simulated, "
              << res.total_bytes << " bytes on air, mean energy "
              << res.meanEnergyJoules() << " J/robot\n";
    return 0;
}
