/**
 * @file
 * CRIMP scenario: a team of robots cooperatively building an implicit
 * 3-D map (a neural scene representation) from trajectory segments,
 * with the trajectory reconstruction error as the quality metric.
 *
 * Usage: crimp_mapping [iterations]
 */
#include <cstdlib>
#include <iostream>

#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "stats/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace rog;

    const std::size_t iterations =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;

    std::cout << "CRIMP: coordinated robotic implicit mapping and "
                 "positioning\n\n";

    // The scene is an analytic SDF; each robot maps a contiguous
    // trajectory segment and the team regresses a shared implicit map.
    core::CrimpWorkloadConfig wcfg;
    core::CrimpWorkload workload(wcfg);
    {
        auto fresh = workload.buildReplica();
        std::cout << "untrained map error: "
                  << workload.evaluate(*fresh) << "\n";
    }

    const std::vector<core::SystemConfig> systems = {
        core::SystemConfig::bsp(),
        core::SystemConfig::ssp(4),
        core::SystemConfig::rog(4),
        core::SystemConfig::rog(20),
    };

    stats::ExperimentConfig ecfg;
    ecfg.env = stats::Environment::Outdoor;
    ecfg.iterations = iterations;
    ecfg.eval_every = 25;
    const auto runs = stats::runSystems(workload, systems, ecfg);

    stats::printExperiment(std::cout, "CRIMP outdoor", runs, 900.0,
                           0.15, /*lower_is_better=*/true);
    return 0;
}
