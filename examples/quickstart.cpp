/**
 * @file
 * Quickstart: train a model with ROG over an unstable simulated
 * wireless network and compare it against BSP.
 *
 * This is the smallest end-to-end use of the public API:
 *   1. build a workload (here: the CRUDA domain-adaptation task),
 *   2. pick the systems to compare,
 *   3. run them over identical bandwidth traces,
 *   4. print the paper-style summary.
 */
#include <iostream>

#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "stats/experiment.hpp"

int
main()
{
    using namespace rog;

    // A small CRUDA instance: a model pretrained on clean data whose
    // accuracy dropped under domain shift, adapted online by 4 robots.
    core::CrudaWorkloadConfig wcfg;
    wcfg.workers = 4;
    core::CrudaWorkload workload(wcfg);

    std::cout << "pretrained model: clean accuracy "
              << workload.cleanAccuracy() << "%, shifted accuracy "
              << workload.initialAccuracy() << "%\n";

    // Outdoor environment (severe instability), short run.
    stats::ExperimentConfig ecfg;
    ecfg.env = stats::Environment::Outdoor;
    ecfg.iterations = 120;
    ecfg.eval_every = 20;
    ecfg.time_horizon_seconds = 3600.0;

    const std::vector<core::SystemConfig> systems = {
        core::SystemConfig::bsp(),
        core::SystemConfig::rog(4),
    };

    auto runs = stats::runSystems(workload, systems, ecfg);
    stats::printExperiment(std::cout, "quickstart: BSP vs ROG-4", runs,
                           /*time_budget_s=*/600.0,
                           /*target_metric=*/60.0,
                           /*lower_is_better=*/false);
    return 0;
}
