/**
 * @file
 * CRUDA scenario: a team of robots recovering recognition accuracy
 * after a domain shift (fog), comparing all four training systems in
 * both wireless environments — the paper's intro scenario end to end.
 *
 * Usage: cruda_adaptation [indoor|outdoor] [iterations]
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "stats/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace rog;

    stats::Environment env = stats::Environment::Outdoor;
    if (argc > 1 && std::string(argv[1]) == "indoor")
        env = stats::Environment::Indoor;
    const std::size_t iterations =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 300;

    std::cout << "CRUDA: coordinated robotic unsupervised domain "
                 "adaptation\n";
    std::cout << "environment: " << stats::environmentName(env)
              << ", iterations: " << iterations << "\n\n";

    // 1. The task: a model pretrained on clean data whose accuracy
    //    collapsed under fog; four robots hold non-IID shards of the
    //    fogged data they collect online.
    core::CrudaWorkloadConfig wcfg;
    core::CrudaWorkload workload(wcfg);
    std::cout << "pretrained accuracy: clean "
              << workload.cleanAccuracy() << "%, fogged "
              << workload.initialAccuracy() << "%\n";

    // 2. Systems under test.
    const std::vector<core::SystemConfig> systems = {
        core::SystemConfig::bsp(),
        core::SystemConfig::ssp(4),
        core::SystemConfig::flownSystem(),
        core::SystemConfig::rog(4),
    };

    // 3. Run them over identical bandwidth traces.
    stats::ExperimentConfig ecfg;
    ecfg.env = env;
    ecfg.iterations = iterations;
    ecfg.eval_every = 25;
    const auto runs = stats::runSystems(workload, systems, ecfg);

    // 4. Report.
    stats::printExperiment(std::cout,
                           "CRUDA " + stats::environmentName(env), runs,
                           900.0, 70.0, false);
    return 0;
}
