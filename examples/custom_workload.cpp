/**
 * @file
 * Implementing a custom Workload: a ConvMLP on a synthetic image task.
 *
 * The built-in CRUDA/CRIMP workloads cover the paper's evaluation, but
 * a fielded robot team trains whatever its mission needs. This example
 * shows the full extension surface: implement rog::core::Workload
 * (replicas, shards, evaluation), hand it to the engine, and every
 * training system — including ROG's row scheduling over the conv
 * rows — works unchanged. Finishes by checkpointing the trained model.
 */
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "core/system_config.hpp"
#include "core/workload.hpp"
#include "data/partition.hpp"
#include "nn/conv.hpp"
#include "nn/serialize.hpp"
#include "stats/experiment.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace rog;

/** A 1-channel 8x8 "shape detection" task: bars vs blobs. */
class ShapeImageWorkload : public core::Workload
{
  public:
    explicit ShapeImageWorkload(std::size_t workers)
        : workers_(workers), rng_(404)
    {
        makeData(train_, 2400, 11);
        makeData(test_, 600, 13);
        Rng part_rng(17);
        shards_ = data::iidPartition(train_.size(), workers, part_rng);
        Rng init(1);
        reference_ = std::make_unique<nn::Model>(
            nn::makeConvMlp(modelConfig(), init));
    }

    std::size_t workers() const override { return workers_; }

    std::unique_ptr<nn::Model>
    buildReplica() override
    {
        Rng init(1);
        auto m = std::make_unique<nn::Model>(
            nn::makeConvMlp(modelConfig(), init));
        m->copyParametersFrom(*reference_);
        return m;
    }

    data::BatchSampler
    makeSampler(std::size_t w) override
    {
        return data::BatchSampler(train_, shards_[w], rng_.fork());
    }

    std::size_t batchSize() const override { return 16; }

    nn::OptimizerConfig
    optimizerConfig() const override
    {
        return {0.02f, 0.9f};
    }

    double
    evaluate(nn::Model &model) override
    {
        std::size_t correct = 0;
        for (std::size_t begin = 0; begin < test_.size(); begin += 128) {
            const std::size_t count =
                std::min<std::size_t>(128, test_.size() - begin);
            tensor::Tensor x(count, 64);
            for (std::size_t i = 0; i < count; ++i) {
                auto src = test_.features.row(begin + i);
                auto dst = x.row(i);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            const auto &out = model.forward(x);
            for (std::size_t i = 0; i < count; ++i)
                if (tensor::argmaxRow(out, i) == test_.labels[begin + i])
                    ++correct;
        }
        return 100.0 * static_cast<double>(correct) /
               static_cast<double>(test_.size());
    }

    std::string metricName() const override { return "accuracy_pct"; }
    bool lowerIsBetter() const override { return false; }

  private:
    static nn::ConvMlpConfig
    modelConfig()
    {
        nn::ConvMlpConfig cfg;
        cfg.channels = 1;
        cfg.height = 8;
        cfg.width = 8;
        cfg.conv_channels = 6;
        cfg.conv_layers = 2;
        cfg.mlp_hidden = {32};
        cfg.classes = 2;
        return cfg;
    }

    void
    makeData(data::Dataset &set, std::size_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        set.features = tensor::Tensor(n, 64);
        set.labels.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const bool bar = rng.uniform() < 0.5;
            set.labels[i] = bar ? 1 : 0;
            auto img = set.features.row(i);
            for (auto &p : img)
                p = static_cast<float>(rng.gaussian(0.0, 0.3));
            if (bar) {
                // A horizontal bar at a random row.
                const std::size_t y = rng.uniformInt(8);
                for (std::size_t x = 0; x < 8; ++x)
                    img[y * 8 + x] += 1.5f;
            } else {
                // A 2x2 blob at a random position.
                const std::size_t y = rng.uniformInt(7);
                const std::size_t x = rng.uniformInt(7);
                for (std::size_t dy = 0; dy < 2; ++dy)
                    for (std::size_t dx = 0; dx < 2; ++dx)
                        img[(y + dy) * 8 + (x + dx)] += 1.5f;
            }
        }
    }

    std::size_t workers_;
    Rng rng_;
    data::Dataset train_;
    data::Dataset test_;
    std::vector<std::vector<std::size_t>> shards_;
    std::unique_ptr<nn::Model> reference_;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rog;
    const std::size_t iterations =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;

    ShapeImageWorkload workload(4);
    {
        auto fresh = workload.buildReplica();
        std::cout << "ConvMLP over the engine ("
                  << fresh->parameterCount() << " parameters in "
                  << fresh->rowCount() << " rows), untrained accuracy "
                  << workload.evaluate(*fresh) << "%\n";
    }

    stats::ExperimentConfig ecfg;
    ecfg.env = stats::Environment::Outdoor;
    ecfg.iterations = iterations;
    ecfg.eval_every = 25;
    const auto runs = stats::runSystems(
        workload,
        {core::SystemConfig::ssp(4), core::SystemConfig::rog(4)}, ecfg);
    stats::printExperiment(std::cout, "custom ConvMLP workload", runs,
                           600.0, 90.0, false);

    // Persist the adapted model, as a mission-ending robot would.
    ShapeImageWorkload fresh_workload(4);
    auto replica = fresh_workload.buildReplica();
    const char *path = "/tmp/rog_custom_workload_model.bin";
    nn::saveModelFile(path, *replica);
    std::cout << "checkpoint written to " << path << "\n";
    return 0;
}
