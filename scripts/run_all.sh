#!/usr/bin/env bash
# Run the full evaluation, mirroring the paper artifact's run_all.sh:
# every table/figure bench executes in sequence and its raw output
# lands in ./result/<bench>.txt. Set ROG_BENCH_FAST=1 for a smoke run.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found; build first:" >&2
    echo "  cmake -B build -G Ninja && cmake --build build" >&2
    exit 1
fi

mkdir -p result
status=0
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== running $name"
    if ! "$b" > "result/$name.txt" 2>&1; then
        echo "   FAILED (see result/$name.txt)" >&2
        status=1
    fi
done

echo
echo "raw results in ./result/; extract CSV blocks with"
echo "  python3 scripts/extract_csv.py result/<bench>.txt"
exit $status
