#!/usr/bin/env bash
# Build the microbenchmarks in Release mode and emit a machine-readable
# BENCH_micro.json: one record per (op, size, threads) with ns/op and
# items/s. The scalar-vs-blocked GEMM comparison is BM_MatmulScalar
# (seed reference kernels) vs BM_Matmul (blocked/register-tiled; also
# pool-parallel when ROG_THREADS > 1) — the script runs the binary once
# per thread count so all three variants land in one file.
#
#   BUILD_DIR            build directory (default build-bench)
#   OUT                  output path (default BENCH_micro.json)
#   ROG_BENCH_THREADS    thread counts to sweep (default "1 <nproc>")
#   ROG_BENCH_MIN_TIME   google-benchmark min time per case (default 0.05)
#   ROG_BENCH_FILTER     benchmark filter regex (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${OUT:-BENCH_micro.json}
MIN_TIME=${ROG_BENCH_MIN_TIME:-0.05}
FILTER=${ROG_BENCH_FILTER:-}
THREADS_LIST=$(echo "${ROG_BENCH_THREADS:-1 $(nproc)}" | tr ' ' '\n' |
               sort -un | tr '\n' ' ')

echo ">> configuring $BUILD_DIR (Release)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_ops_bench -j"$(nproc)" \
    >/dev/null

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for t in $THREADS_LIST; do
    echo ">> micro_ops_bench ROG_THREADS=$t"
    ROG_THREADS=$t "$BUILD_DIR/bench/micro_ops_bench" \
        --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" \
        ${FILTER:+--benchmark_filter="$FILTER"} \
        >"$tmpdir/bench_$t.json"
done

python3 - "$OUT" "$tmpdir" <<'EOF'
import glob
import json
import os
import re
import sys

out_path, tmpdir = sys.argv[1], sys.argv[2]
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

records = []
for path in sorted(glob.glob(os.path.join(tmpdir, "bench_*.json"))):
    threads = int(re.search(r"bench_(\d+)\.json$", path).group(1))
    with open(path) as f:
        data = json.load(f)
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        op, _, size = b["name"].partition("/")
        records.append({
            "op": op,
            "size": int(size) if size else None,
            "threads": threads,
            "ns_per_op": b["real_time"] * TO_NS[b.get("time_unit", "ns")],
            "items_per_s": b.get("items_per_second"),
        })

with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
print(f">> wrote {out_path} ({len(records)} records)")

def best(op, size):
    rows = [r for r in records if r["op"] == op and r["size"] == size]
    return min((r["ns_per_op"] for r in rows), default=None)

for size in (128, 256):
    scalar = best("BM_MatmulScalar", size)
    blocked = best("BM_Matmul", size)
    if scalar and blocked:
        print(f">> matmul {size}x{size}: scalar {scalar:.0f} ns, "
              f"blocked+parallel {blocked:.0f} ns "
              f"-> {scalar / blocked:.2f}x")
EOF
