#!/usr/bin/env bash
# Build the microbenchmarks in Release mode and emit machine-readable
# JSON: one record per (op, size, threads) with ns/op and items/s.
#
#   BENCH_micro.json  micro_ops_bench — the scalar-vs-blocked GEMM
#       comparison is BM_MatmulScalar (seed reference kernels) vs
#       BM_Matmul (blocked/register-tiled; also pool-parallel when
#       ROG_THREADS > 1), run once per thread count so all variants
#       land in one file, plus the wire-kernel headline entries.
#   BENCH_wire.json   bench_wire — the full wire-path tier matrix
#       (CRC32C ref/slice8/hw/dispatched, packbits ref/vectorized,
#       fused vs separate one-bit transcode, frame round-trip, pool
#       lease vs fresh alloc), single-threaded: these kernels run
#       per-chunk inside workers, so the 1-thread number is the one
#       the wire path actually pays.
#
#   BUILD_DIR            build directory (default build-bench)
#   OUT                  micro output path (default BENCH_micro.json)
#   OUT_WIRE             wire output path (default BENCH_wire.json)
#   ROG_BENCH_THREADS    thread counts to sweep (default "1 <nproc>")
#   ROG_BENCH_MIN_TIME   google-benchmark min time per case (default 0.05)
#   ROG_BENCH_FILTER     benchmark filter regex (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${OUT:-BENCH_micro.json}
OUT_WIRE=${OUT_WIRE:-BENCH_wire.json}
MIN_TIME=${ROG_BENCH_MIN_TIME:-0.05}
FILTER=${ROG_BENCH_FILTER:-}
THREADS_LIST=$(echo "${ROG_BENCH_THREADS:-1 $(nproc)}" | tr ' ' '\n' |
               sort -un | tr '\n' ' ')

echo ">> configuring $BUILD_DIR (Release)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_ops_bench --target bench_wire \
    -j"$(nproc)" >/dev/null

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for t in $THREADS_LIST; do
    echo ">> micro_ops_bench ROG_THREADS=$t"
    ROG_THREADS=$t "$BUILD_DIR/bench/micro_ops_bench" \
        --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" \
        ${FILTER:+--benchmark_filter="$FILTER"} \
        >"$tmpdir/bench_$t.json"
done

echo ">> bench_wire ROG_THREADS=1"
ROG_THREADS=1 "$BUILD_DIR/bench/bench_wire" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    >"$tmpdir/wire_1.json"

python3 - "$OUT" "$OUT_WIRE" "$tmpdir" <<'EOF'
import glob
import json
import os
import re
import sys

out_path, wire_path, tmpdir = sys.argv[1], sys.argv[2], sys.argv[3]
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def load(pattern):
    records = []
    for path in sorted(glob.glob(os.path.join(tmpdir, pattern))):
        threads = int(re.search(r"_(\d+)\.json$", path).group(1))
        with open(path) as f:
            data = json.load(f)
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            if b.get("error_occurred"):
                continue  # e.g. BM_Crc32cHw on CPUs without SSE4.2.
            op, _, size = b["name"].partition("/")
            records.append({
                "op": op,
                "size": int(size) if size else None,
                "threads": threads,
                "ns_per_op":
                    b["real_time"] * TO_NS[b.get("time_unit", "ns")],
                "items_per_s": b.get("items_per_second"),
            })
    return records

records = load("bench_*.json")
with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
print(f">> wrote {out_path} ({len(records)} records)")

wire = load("wire_*.json")
with open(wire_path, "w") as f:
    json.dump(wire, f, indent=1)
print(f">> wrote {wire_path} ({len(wire)} records)")

def best(rows, op, size):
    vals = [r["ns_per_op"] for r in rows
            if r["op"] == op and r["size"] == size]
    return min(vals, default=None)

for size in (128, 256):
    scalar = best(records, "BM_MatmulScalar", size)
    blocked = best(records, "BM_Matmul", size)
    if scalar and blocked:
        print(f">> matmul {size}x{size}: scalar {scalar:.0f} ns, "
              f"blocked+parallel {blocked:.0f} ns "
              f"-> {scalar / blocked:.2f}x")

for ref, fast, label in (
        ("BM_Crc32cRef", "BM_Crc32c", "crc32c"),
        ("BM_PackSignsRef", "BM_PackSigns", "packbits pack"),
        ("BM_UnpackSignsRef", "BM_UnpackSigns", "packbits unpack"),
        ("BM_OneBitSeparate", "BM_OneBitFused", "one-bit transcode")):
    r, f_ = best(wire, ref, 4096), best(wire, fast, 4096)
    if r and f_:
        print(f">> {label} 4096: ref {r:.0f} ns, fast {f_:.0f} ns "
              f"-> {r / f_:.2f}x")
EOF
