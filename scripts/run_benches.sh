#!/usr/bin/env bash
# Build the benchmarks in Release mode and emit machine-readable JSON.
# One invocation produces all three snapshots:
#
#   BENCH_micro.json  micro_ops_bench — the GEMM ladder is
#       BM_MatmulScalar (seed reference kernels) vs BM_MatmulBlocked
#       (PR-2 autovectorized tiles) vs BM_Matmul (packed-panel
#       microkernels behind tensor::matmul; BM_MatmulTier labels the
#       dispatched tier), swept over ROG_BENCH_THREADS so the
#       parallel-scaling curves land in one file, plus the wire-kernel
#       headline entries. Thread counts > 1 rerun only the matmul
#       family — the elementwise/codec entries are per-chunk kernels
#       whose 1-thread number is the meaningful one.
#   BENCH_wire.json   bench_wire — the full wire-path tier matrix
#       (CRC32C ref/slice8/hw/dispatched, packbits ref/vectorized,
#       fused vs separate one-bit transcode, frame round-trip, pool
#       lease vs fresh alloc), single-threaded.
#   BENCH_e2e.json    bench_e2e — full N-worker simulated training
#       runs (CRUDA + CRIMP presets): completed training iterations
#       per wall second (items_per_s) and virtual seconds simulated
#       per wall second (sim_s_per_wall_s).
#   BENCH_fleet.json  ext_fleet — the fleet-scale sweep (16/64/256/
#       1024 workers over the sharded parallel DES): BM_FleetSim[Map]
#       events/s for the heap vs std::map event core driving the full
#       engine, and BM_FleetEventCore[Map] for the isolated event-core
#       churn mix. ext_fleet emits this schema directly (no
#       google-benchmark wrapper) and exits nonzero if the heap core
#       drops below 3x the map baseline at 1024 workers or the
#       heap/map firing-order digests diverge.
#
# Record schema (see also scripts/check_bench_regress.py, which gates
# on ns_per_op and tolerates the pre-PR-7 schema where rate-less
# records carried "items_per_s": null):
#   {op, size, threads, ns_per_op} always;
#   items_per_s / bytes_per_s when the bench reports that rate;
#   flops_per_s on matmul entries (2 flops per reported MAC);
#   label / sim_s_per_wall_s when the bench emits them.
#
#   BUILD_DIR            build directory (default build-bench)
#   OUT                  micro output path (default BENCH_micro.json)
#   OUT_WIRE             wire output path (default BENCH_wire.json)
#   OUT_E2E              e2e output path (default BENCH_e2e.json)
#   ROG_BENCH_THREADS    thread counts to sweep (default "1 2 4 8")
#   ROG_BENCH_MIN_TIME   google-benchmark min time per case (default 0.05)
#   ROG_BENCH_REPS       repetitions per case (default 1); every sample
#                        lands in the JSON and consumers take the
#                        fastest, so reps > 1 ride out noisy-neighbor
#                        bursts on shared boxes
#   ROG_BENCH_FILTER     benchmark filter regex (default: all)
#   ROG_BENCH_SKIP_E2E   set to 1 to skip the e2e binary (quick sweeps)
#   OUT_FLEET            fleet output path (default BENCH_fleet.json)
#   ROG_BENCH_SKIP_FLEET set to 1 to skip the fleet sweep binary
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${OUT:-BENCH_micro.json}
OUT_WIRE=${OUT_WIRE:-BENCH_wire.json}
OUT_E2E=${OUT_E2E:-BENCH_e2e.json}
OUT_FLEET=${OUT_FLEET:-BENCH_fleet.json}
SKIP_FLEET=${ROG_BENCH_SKIP_FLEET:-0}
MIN_TIME=${ROG_BENCH_MIN_TIME:-0.05}
REPS=${ROG_BENCH_REPS:-1}
FILTER=${ROG_BENCH_FILTER:-}
SKIP_E2E=${ROG_BENCH_SKIP_E2E:-0}
THREADS_LIST=$(echo "${ROG_BENCH_THREADS:-1 2 4 8}" | tr ' ' '\n' |
               sort -un | tr '\n' ' ')

echo ">> configuring $BUILD_DIR (Release)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_ops_bench --target bench_wire \
    --target bench_e2e --target ext_fleet -j"$(nproc)" >/dev/null

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for t in $THREADS_LIST; do
    echo ">> micro_ops_bench ROG_THREADS=$t"
    # Beyond 1 thread only the matmul family scales with the pool;
    # skip the rest instead of re-measuring identical numbers.
    tfilter=$FILTER
    if [ "$t" != 1 ] && [ -z "$FILTER" ]; then
        tfilter='^BM_Matmul'
    fi
    ROG_THREADS=$t "$BUILD_DIR/bench/micro_ops_bench" \
        --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" \
        --benchmark_repetitions="$REPS" \
        ${tfilter:+--benchmark_filter="$tfilter"} \
        >"$tmpdir/bench_$t.json"
done

echo ">> bench_wire ROG_THREADS=1"
ROG_THREADS=1 "$BUILD_DIR/bench/bench_wire" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions="$REPS" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    >"$tmpdir/wire_1.json"

if [ "$SKIP_E2E" != 1 ]; then
    echo ">> bench_e2e ROG_THREADS=$(nproc)"
    "$BUILD_DIR/bench/bench_e2e" \
        --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" \
        ${FILTER:+--benchmark_filter="$FILTER"} \
        >"$tmpdir/e2e_$(nproc).json"
fi

if [ "$SKIP_FLEET" != 1 ]; then
    # ROG_THREADS is pinned because `threads` is part of the record
    # key the regression gate compares on; the determinism tests
    # already prove the digests are identical at any thread count.
    echo ">> ext_fleet sweep ROG_THREADS=2"
    ROG_THREADS=2 "$BUILD_DIR/bench/ext_fleet" --out "$OUT_FLEET"
fi

python3 - "$OUT" "$OUT_WIRE" "$OUT_E2E" "$tmpdir" <<'EOF'
import glob
import json
import os
import re
import sys

out_path, wire_path, e2e_path, tmpdir = sys.argv[1:5]
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def load(pattern):
    records = []
    for path in sorted(glob.glob(os.path.join(tmpdir, pattern))):
        threads = int(re.search(r"_(\d+)\.json$", path).group(1))
        with open(path) as f:
            data = json.load(f)
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            if b.get("error_occurred"):
                continue  # e.g. BM_Crc32cHw on CPUs without SSE4.2.
            op, _, size = b["name"].partition("/")
            rec = {
                "op": op,
                "size": int(size) if size else None,
                "threads": threads,
                "ns_per_op":
                    b["real_time"] * TO_NS[b.get("time_unit", "ns")],
            }
            # Rates only when the bench reports them — no null keys.
            if b.get("items_per_second") is not None:
                rec["items_per_s"] = b["items_per_second"]
                # The GEMM benches count one item per MAC.
                if op.startswith("BM_Matmul"):
                    rec["flops_per_s"] = 2.0 * b["items_per_second"]
            if b.get("bytes_per_second") is not None:
                rec["bytes_per_s"] = b["bytes_per_second"]
            if b.get("sim_s_per_wall_s") is not None:
                rec["sim_s_per_wall_s"] = b["sim_s_per_wall_s"]
            if b.get("label"):
                rec["label"] = b["label"]
            records.append(rec)
    return records

records = load("bench_*.json")
with open(out_path, "w") as f:
    json.dump(records, f, indent=1)
print(f">> wrote {out_path} ({len(records)} records)")

wire = load("wire_*.json")
with open(wire_path, "w") as f:
    json.dump(wire, f, indent=1)
print(f">> wrote {wire_path} ({len(wire)} records)")

e2e = load("e2e_*.json")
if e2e:
    with open(e2e_path, "w") as f:
        json.dump(e2e, f, indent=1)
    print(f">> wrote {e2e_path} ({len(e2e)} records)")
    for r in e2e:
        parts = []
        if r.get("items_per_s") is not None:
            parts.append(f"{r['items_per_s']:.1f} train-iters/s")
        if r.get("sim_s_per_wall_s") is not None:
            parts.append(f"{r['sim_s_per_wall_s']:.0f} sim-s/wall-s")
        print(f">> {r['op']}: " + ", ".join(parts))

def best(rows, op, size, threads=None):
    vals = [r["ns_per_op"] for r in rows
            if r["op"] == op and r["size"] == size and
            (threads is None or r["threads"] == threads)]
    return min(vals, default=None)

for size in (128, 256):
    scalar = best(records, "BM_MatmulScalar", size, 1)
    blocked = best(records, "BM_MatmulBlocked", size, 1)
    packed = best(records, "BM_Matmul", size, 1)
    if scalar and blocked and packed:
        print(f">> matmul {size}x{size} 1T: scalar {scalar:.0f} ns, "
              f"blocked {blocked:.0f} ns, packed {packed:.0f} ns "
              f"-> {blocked / packed:.2f}x over blocked, "
              f"{scalar / packed:.2f}x over scalar")

for ref, fast, label in (
        ("BM_Crc32cRef", "BM_Crc32c", "crc32c"),
        ("BM_PackSignsRef", "BM_PackSigns", "packbits pack"),
        ("BM_UnpackSignsRef", "BM_UnpackSigns", "packbits unpack"),
        ("BM_OneBitSeparate", "BM_OneBitFused", "one-bit transcode")):
    r, f_ = best(wire, ref, 4096), best(wire, fast, 4096)
    if r and f_:
        print(f">> {label} 4096: ref {r:.0f} ns, fast {f_:.0f} ns "
              f"-> {r / f_:.2f}x")
EOF
