#!/usr/bin/env python3
"""Split the CSV blocks out of a bench output file.

Bench binaries interleave human-readable tables with machine-readable
CSV blocks (each starting with a '# <title>' line followed by a header
row). This script writes each block to ./figure/<slug>.csv so the
curves can be replotted with any tool, mirroring the paper artifact's
./figure output directory.
"""
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", title).strip("_").lower()
    return slug[:80] or "block"


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <bench-output.txt>", file=sys.stderr)
        return 2
    os.makedirs("figure", exist_ok=True)
    blocks = 0
    title, rows = None, []

    def flush():
        nonlocal blocks, title, rows
        if title and len(rows) > 1:
            path = os.path.join("figure", slugify(title) + ".csv")
            with open(path, "w") as f:
                f.write("\n".join(rows) + "\n")
            print(f"wrote {path} ({len(rows) - 1} rows)")
            blocks += 1
        title, rows = None, []

    with open(sys.argv[1]) as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("# "):
                flush()
                title = line[2:]
            elif title is not None:
                # CSV rows: comma-separated, no table borders.
                if line and "," in line and not line.startswith(("|", "+", "=")):
                    rows.append(line)
                else:
                    flush()
    flush()
    if blocks == 0:
        print("no CSV blocks found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
