#!/usr/bin/env bash
# Build and run the test suite under sanitizers in separate build
# trees:
#
#   phase 1 (asan):  AddressSanitizer + UBSan over the full suite.
#   phase 2 (tsan):  ThreadSanitizer over the parallel-runtime tests
#                    (thread pool, kernels, codec, engine) with
#                    ROG_THREADS > 1 so pool workers actually run.
#
#   scripts/run_sanitized.sh [asan|tsan|all] [extra ctest args...]
#
# Each phase uses its own build directory (build-asan/, build-tsan/)
# next to the regular build/ so configurations never fight over a
# cache. TSan and ASan cannot be combined in one binary, hence the
# split.
set -euo pipefail

cd "$(dirname "$0")/.."

PHASE=${1:-all}
case "$PHASE" in
asan | tsan | all) shift || true ;;
*) PHASE=all ;;
esac

run_asan() {
    local dir=build-asan
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DROG_SANITIZE=address,undefined
    cmake --build "$dir" -j "$(nproc)"

    ASAN_OPTIONS=detect_leaks=1:abort_on_error=1 \
        UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
        ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" "$@"
}

run_tsan() {
    local dir=build-tsan
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DROG_SANITIZE=thread
    cmake --build "$dir" -j "$(nproc)" --target \
        thread_pool_test kernel_equivalence_test ops_test conv_test \
        codec_test codec_fused_test engine_test \
        replay_determinism_test fleet_determinism_test \
        transport_socket_test transport_tcp_partial_test \
        session_socket_test session_chaos_test

    # Run with a real worker count: with ROG_THREADS=1 the pool paths
    # are inline and TSan has nothing to check.
    local t
    # fleet_determinism_test drives the sharded DES on a real parallel
    # pool (per-shard queues + ordered combine) — the main new
    # cross-thread surface of the fleet-scale core.
    for t in thread_pool_test kernel_equivalence_test ops_test \
        conv_test codec_test codec_fused_test engine_test \
        replay_determinism_test fleet_determinism_test; do
        echo ">> tsan: $t (ROG_THREADS=4)"
        ROG_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
            "$dir/tests/$t" --gtest_brief=1
    done

    # Socket-label suites: real sockets + fork() under TSan. The poll
    # loops are single-threaded by design — what TSan checks here is
    # that the session/engine layers never sneak a thread past them,
    # and that workload pretraining's pool hand-off stays clean.
    for t in transport_socket_test transport_tcp_partial_test \
        session_socket_test session_chaos_test; do
        echo ">> tsan: $t (socket label, ROG_THREADS=4)"
        ROG_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
            "$dir/tests/$t" --gtest_brief=1
    done
}

case "$PHASE" in
asan) run_asan "$@" ;;
tsan) run_tsan ;;
all)
    run_asan "$@"
    run_tsan
    ;;
esac
