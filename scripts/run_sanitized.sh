#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer in a separate build tree.
#
#   scripts/run_sanitized.sh [extra ctest args...]
#
# Uses build-asan/ next to the regular build/ so the two configurations
# never fight over a cache.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-asan

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DROG_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:abort_on_error=1
export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
