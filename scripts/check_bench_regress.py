#!/usr/bin/env python3
"""Compare a fresh benchmark run against a committed baseline.

    check_bench_regress.py BASELINE.json FRESH.json [--threshold 0.25]

Both files use the BENCH_*.json record schema emitted by
scripts/run_benches.sh: a list of {op, size, threads, ns_per_op, ...}.
Either the current schema (rate keys like items_per_s / flops_per_s /
bytes_per_s present only when measured) or the pre-PR-7 one (always
"items_per_s", null when absent) is accepted — the gate only reads
ns_per_op, and records without it are skipped with a note. Records are
matched on (op, size, threads); a fresh record slower than baseline by
more than the threshold fraction is a regression and the script exits
1 after listing every offender. Records present in only one file are
reported but never fatal, so adding or retiring benchmarks does not
break the gate — only making an existing kernel slower does.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    dropped = 0
    for r in records:
        if r.get("ns_per_op") is None:
            dropped += 1
            continue
        key = (r["op"], r.get("size"), r.get("threads"))
        # Keep the fastest sample per key: robust to repeated runs
        # landing in one file.
        if key not in table or r["ns_per_op"] < table[key]:
            table[key] = r["ns_per_op"]
    if dropped:
        print(f"  note: {path}: skipped {dropped} records without "
              f"ns_per_op")
    return table


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional slowdown that fails the gate "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--min-ns", type=float, default=50.0,
                    help="skip ops whose baseline is under this many "
                         "ns — timer noise dominates the measurement "
                         "(default 50)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    regressions = []
    improvements = 0
    skipped = 0
    for key in sorted(set(base) & set(fresh)):
        if base[key] < args.min_ns:
            skipped += 1
            continue
        ratio = fresh[key] / base[key]
        op, size, threads = key
        name = f"{op}/{size} (threads={threads})"
        if ratio > 1.0 + args.threshold:
            regressions.append(
                f"  REGRESSION {name}: {base[key]:.0f} ns -> "
                f"{fresh[key]:.0f} ns ({ratio:.2f}x)")
        elif ratio < 1.0:
            improvements += 1

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    compared = len(set(base) & set(fresh))

    print(f"compared {compared} benchmarks "
          f"(threshold {args.threshold:.0%}, floor {args.min_ns:.0f} ns"
          f", {skipped} below it); "
          f"{improvements} faster, {len(regressions)} regressed")
    for key in only_base:
        print(f"  note: {key[0]}/{key[1]} only in baseline")
    for key in only_fresh:
        print(f"  note: {key[0]}/{key[1]} only in fresh run")

    if compared == 0:
        print("error: no overlapping benchmarks — wrong file pair?")
        return 1
    if regressions:
        print("\n".join(regressions))
        return 1
    print("OK: no benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
