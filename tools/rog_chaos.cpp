/**
 * @file
 * rog_chaos — process-level fault injection for the session layer.
 *
 * Forks a real fleet (one rog_noded-equivalent server role plus N
 * worker roles, each its own process over real sockets), then plays
 * chaos against it:
 *
 *   - SIGKILL chosen workers the moment their run log shows a
 *     gradient push in flight ("phase=push_begin"), and restart them
 *     after a delay; the restarted process resumes from its local
 *     checkpoint and re-enters through the session handshake.
 *   - SIGSTOP/SIGCONT chosen workers for a window (a transient
 *     partition: heartbeats stop, the server suspects, transport
 *     retries ride it out).
 *   - SIGKILL the *server* once its log shows an apply at the chosen
 *     iteration and at least one durable checkpoint
 *     (--kill-server-iter), then refork it after a delay against the
 *     same checkpoint and the same port; the new incarnation bumps
 *     its epoch and re-admits the fleet.
 *   - Network partitions (--partition W:START:DUR): a window during
 *     which worker W's outbound datagrams are all dropped, layered on
 *     the seeded wire-fault injector.
 *   - Seeded wire faults (--faults SPEC) on worker->server pushes.
 *
 * With --check it then runs the fault-free DES twin of the same seed
 * and plan and gates on the chaos invariants (core/chaos_check.hpp):
 * CRC-valid checkpoint, finite model within tolerance of the twin,
 * no exactly-once violation at either the application or transport
 * level, every killed worker evicted-or-readmitted, every worker
 * finished. Exit 0 iff no invariant was violated.
 *
 * The children are forked, not exec'd: the supervisor creates no
 * threads before the last fork, so the children get clean copies and
 * the fleet needs no binary-path plumbing.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/chaos_check.hpp"
#include "node_cli.hpp"

namespace {

using namespace rog;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: rog_chaos --dir DIR [options]\n"
        "chaos:   --kill LIST      workers to SIGKILL (default 1,2)\n"
        "         --kill-iter N    kill at push_begin of iter >= N "
        "(default 3)\n"
        "         --restart-delay S  seconds dead before restart "
        "(default 0.3)\n"
        "         --stall W:SECS[,..]  SIGSTOP W for SECS at its "
        "first push\n"
        "         --kill-server-iter N  SIGKILL the server after an "
        "apply at iter >= N\n"
        "                          (and a checkpoint), restart it "
        "from the checkpoint\n"
        "         --server-restart-delay S  seconds the server stays "
        "dead (default 0.5)\n"
        "         --partition W:START:DUR[,..]  drop all of W's "
        "outbound datagrams\n"
        "                          during [START,START+DUR) of its "
        "process clock (udp)\n"
        "         --check          run DES twin + invariant gate\n"
        "         --tolerance X    twin metric tolerance "
        "(default 15)\n"
        "run:     --backend udp|tcp  --workers N  --iters N\n"
        "         --staleness N  --seed S  --faults SPEC  "
        "--timeout SECS\n");
    return 2;
}

double
wallNow()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Fleet-facing view of one worker process. */
struct WorkerProc
{
    pid_t pid = -1;
    bool exited = false;
    int exit_code = -1;

    bool kill_planned = false;
    bool killed = false;     //!< SIGKILL already delivered.
    bool restarted = false;  //!< replacement process forked.
    double killed_at = 0.0;  //!< wallNow() of the SIGKILL.

    double stall_secs = 0.0; //!< 0 = no stall planned.
    bool stalled = false;
    bool resumed = false;
    double stalled_at = 0.0;
};

class ChaosSupervisor
{
  public:
    ChaosSupervisor(const core::NodeRunConfig &cfg,
                    std::vector<std::size_t> kill_list,
                    std::int64_t kill_iter, double restart_delay,
                    std::map<std::size_t, double> stalls,
                    std::int64_t server_kill_iter,
                    double server_restart_delay,
                    std::map<std::size_t, std::pair<double, double>>
                        partitions)
        : cfg_(cfg), kill_iter_(kill_iter),
          restart_delay_(restart_delay),
          server_kill_iter_(server_kill_iter),
          server_restart_delay_(server_restart_delay),
          partitions_(std::move(partitions)),
          log_path_(cfg.artifact_dir + "/chaos.log")
    {
        procs_.resize(cfg_.workers);
        for (std::size_t w : kill_list)
            if (w < cfg_.workers)
                procs_[w].kill_planned = true;
        for (const auto &kv : stalls)
            if (kv.first < cfg_.workers)
                procs_[kv.first].stall_secs = kv.second;
    }

    /** Run the whole scenario; returns true when every process came
     *  home (invariants are checked separately). */
    bool
    run()
    {
        start_ = wallNow();
        if (!forkServer())
            return false;
        for (std::size_t w = 0; w < cfg_.workers; ++w)
            forkWorker(w);
        supervise();
        return finishServer();
    }

    std::vector<std::size_t>
    killedWorkers() const
    {
        std::vector<std::size_t> v;
        for (std::size_t w = 0; w < procs_.size(); ++w)
            if (procs_[w].killed)
                v.push_back(w);
        return v;
    }

    bool
    allWorkersClean() const
    {
        for (const WorkerProc &p : procs_)
            if (!p.exited || p.exit_code != 0)
                return false;
        return true;
    }

    bool serverClean() const { return server_clean_; }

    /** Times the server was SIGKILLed + reforked (0 or 1). */
    std::size_t
    serverRestarts() const
    {
        return server_restarted_ ? 1 : 0;
    }

  private:
    void
    note(const std::string &line)
    {
        std::ofstream os(log_path_, std::ios::app);
        char stamp[32];
        std::snprintf(stamp, sizeof stamp, "t=%.3f ",
                      wallNow() - start_);
        os << stamp << line << '\n';
        std::printf("%s%s\n", stamp, line.c_str());
        std::fflush(stdout);
    }

    bool
    forkServer()
    {
        int fds[2];
        if (pipe(fds) != 0)
            return false;
        std::fflush(nullptr);
        server_pid_ = fork();
        if (server_pid_ == 0) {
            close(fds[0]);
            const int wfd = fds[1];
            const core::ServerRunResult res = core::runServerNode(
                cfg_, [wfd](std::uint16_t port) {
                    char buf[16];
                    const int n = std::snprintf(buf, sizeof buf,
                                                "%u\n", port);
                    (void)!write(wfd, buf,
                                 static_cast<std::size_t>(n));
                });
            _exit(res.done ? 0 : 1);
        }
        close(fds[1]);
        char buf[16] = {0};
        ssize_t got = 0;
        ssize_t n;
        while ((n = read(fds[0], buf + got,
                         sizeof buf - 1 - got)) > 0) {
            got += n;
            if (std::memchr(buf, '\n', got) != nullptr)
                break;
        }
        close(fds[0]);
        server_port_ =
            static_cast<std::uint16_t>(std::atoi(buf));
        if (server_port_ == 0) {
            note("server failed to bind");
            return false;
        }
        std::ostringstream os;
        os << "server pid=" << server_pid_
           << " port=" << server_port_;
        note(os.str());
        return true;
    }

    void
    forkWorker(std::size_t w)
    {
        // A partitioned worker gets a private fault plan with the
        // drop-all window; times are on the child's process clock, so
        // a restarted worker's window restarts with it.
        core::NodeRunConfig cfg = cfg_;
        auto part = partitions_.find(w);
        if (part != partitions_.end()) {
            cfg.fault_plan.part_begin_s = part->second.first;
            cfg.fault_plan.part_end_s =
                part->second.first + part->second.second;
            cfg.inject_faults = true;
        }
        std::fflush(nullptr);
        const pid_t pid = fork();
        if (pid == 0) {
            const core::WorkerRunResult res = core::runWorkerNode(
                cfg, w, "127.0.0.1", server_port_);
            _exit(res.done ? 0 : 1);
        }
        procs_[w].pid = pid;
        procs_[w].exited = false;
        std::ostringstream os;
        os << (procs_[w].killed ? "restart" : "spawn") << " w=" << w
           << " pid=" << pid;
        note(os.str());
    }

    /** Worker W's log shows a push in flight at iteration >= bound. */
    bool
    pushInFlight(std::size_t w) const
    {
        const std::string text =
            slurp(cfg_.artifact_dir + "/worker" + std::to_string(w) +
                  ".log");
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line)) {
            long long iter = 0;
            if (std::sscanf(line.c_str(),
                            "t=%*f iter=%lld phase=push_begin",
                            &iter) == 1 &&
                iter >= kill_iter_)
                return true;
        }
        return false;
    }

    /** The server log shows an apply at or past the kill bound AND a
     *  durable checkpoint — killing before the first checkpoint would
     *  test cold-start, not recovery. */
    bool
    serverKillReady() const
    {
        const std::string text =
            slurp(cfg_.artifact_dir + "/server_run.log");
        std::istringstream is(text);
        std::string line;
        bool applied = false;
        bool checkpointed = false;
        while (std::getline(is, line)) {
            long long iter = 0;
            if (std::sscanf(line.c_str(),
                            "t=%*f apply w=%*u iter=%lld",
                            &iter) == 1) {
                if (iter >= server_kill_iter_)
                    applied = true;
            } else if (std::sscanf(line.c_str(),
                                   "t=%*f checkpoint iter=%lld",
                                   &iter) == 1) {
                checkpointed = true;
            }
        }
        return applied && checkpointed;
    }

    void
    injectServerFault()
    {
        if (server_kill_iter_ <= 0)
            return;
        const double now = wallNow();
        if (!server_killed_ && serverKillReady()) {
            kill(server_pid_, SIGKILL);
            waitpid(server_pid_, nullptr, 0);
            server_killed_ = true;
            server_killed_at_ = now;
            std::ostringstream os;
            os << "kill-server pid=" << server_pid_;
            note(os.str());
        }
        if (server_killed_ && !server_restarted_ &&
            now - server_killed_at_ >= server_restart_delay_) {
            server_restarted_ = true;
            // Refork against the same checkpoint and the same port;
            // the bind-retry window rides out any lingering socket.
            cfg_.listen_port = server_port_;
            if (!forkServer())
                note("server restart failed");
        }
    }

    void
    reapWorkers()
    {
        for (std::size_t w = 0; w < procs_.size(); ++w) {
            WorkerProc &p = procs_[w];
            if (p.pid < 0 || p.exited)
                continue;
            int status = 0;
            const pid_t r = waitpid(p.pid, &status, WNOHANG);
            if (r != p.pid)
                continue;
            // A SIGKILLed victim "exits" here too; that slot is
            // revived by the restart path, not marked done.
            if (p.killed && !p.restarted)
                continue;
            p.exited = true;
            p.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                            : 128 + WTERMSIG(status);
            std::ostringstream os;
            os << "exit w=" << w << " code=" << p.exit_code;
            note(os.str());
        }
    }

    void
    injectFaults()
    {
        const double now = wallNow();
        for (std::size_t w = 0; w < procs_.size(); ++w) {
            WorkerProc &p = procs_[w];
            // A worker that already came home is off-limits: its pid
            // is reaped and may have been recycled by the OS.
            if (p.pid < 0 || p.exited)
                continue;

            if (p.kill_planned && !p.killed && pushInFlight(w)) {
                kill(p.pid, SIGKILL);
                waitpid(p.pid, nullptr, 0);
                p.killed = true;
                p.killed_at = now;
                std::ostringstream os;
                os << "kill w=" << w << " pid=" << p.pid;
                note(os.str());
            }
            if (p.killed && !p.restarted &&
                now - p.killed_at >= restart_delay_) {
                p.restarted = true;
                forkWorker(w);
            }

            if (p.stall_secs > 0.0 && !p.stalled &&
                pushInFlight(w)) {
                kill(p.pid, SIGSTOP);
                p.stalled = true;
                p.stalled_at = now;
                std::ostringstream os;
                os << "stall w=" << w << " secs=" << p.stall_secs;
                note(os.str());
            }
            if (p.stalled && !p.resumed &&
                now - p.stalled_at >= p.stall_secs) {
                kill(p.pid, SIGCONT);
                p.resumed = true;
                std::ostringstream os;
                os << "resume w=" << w;
                note(os.str());
            }
        }
    }

    void
    supervise()
    {
        const double deadline =
            wallNow() + cfg_.run_timeout_s + 30.0;
        for (;;) {
            reapWorkers();
            injectFaults();
            injectServerFault();

            bool all_done = true;
            for (const WorkerProc &p : procs_)
                if (!p.exited)
                    all_done = false;
            if (all_done)
                return;

            if (wallNow() > deadline) {
                note("supervisor timeout: killing the fleet");
                for (WorkerProc &p : procs_)
                    if (!p.exited && p.pid > 0) {
                        kill(p.pid, SIGKILL);
                        waitpid(p.pid, nullptr, 0);
                        p.exited = true;
                        p.exit_code = 124;
                    }
                return;
            }
            usleep(20 * 1000);
        }
    }

    bool
    finishServer()
    {
        int status = 0;
        const double deadline = wallNow() + 30.0;
        for (;;) {
            const pid_t r = waitpid(server_pid_, &status, WNOHANG);
            if (r == server_pid_)
                break;
            if (wallNow() > deadline) {
                note("server hang: SIGKILL");
                kill(server_pid_, SIGKILL);
                waitpid(server_pid_, &status, 0);
                break;
            }
            usleep(20 * 1000);
        }
        server_clean_ =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        std::ostringstream os;
        os << "server exit clean=" << (server_clean_ ? 1 : 0);
        note(os.str());
        return true;
    }

    core::NodeRunConfig cfg_;
    std::int64_t kill_iter_;
    double restart_delay_;
    std::int64_t server_kill_iter_ = 0;
    double server_restart_delay_ = 0.5;
    std::map<std::size_t, std::pair<double, double>> partitions_;
    std::string log_path_;
    double start_ = 0.0;

    pid_t server_pid_ = -1;
    std::uint16_t server_port_ = 0;
    bool server_clean_ = false;
    bool server_killed_ = false;
    bool server_restarted_ = false;
    double server_killed_at_ = 0.0;
    std::vector<WorkerProc> procs_;
};

std::vector<std::size_t>
parseIndexList(const std::string &s)
{
    std::vector<std::size_t> v;
    for (const std::string &part : splitCommaList(s))
        v.push_back(static_cast<std::size_t>(std::stoul(part)));
    return v;
}

/** Remove the previous invocation's artifacts from the run dir.
 *  Per-process logs are opened in append mode (a restarted worker
 *  must extend its own log), so a reused --dir would concatenate
 *  runs and the invariant checker would count every apply twice;
 *  stale workerN.meta resume state would likewise leak an old run's
 *  token into a fresh fleet. Only files this tool owns are touched.
 */
void
cleanRunDir(const core::NodeRunConfig &cfg)
{
    static const char *const kOwned[] = {
        "chaos.log",      "server_run.log",  "server_events.log",
        "des_twin.log",   "summary.txt",     "des_summary.txt",
        "kills.txt",      "checkpoint.rogs", "model.rogm",
        "des_checkpoint.rogs",
    };
    for (const char *name : kOwned)
        std::remove((cfg.artifact_dir + "/" + name).c_str());
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        const std::string stem =
            cfg.artifact_dir + "/worker" + std::to_string(w);
        std::remove((stem + ".log").c_str());
        std::remove((stem + ".meta").c_str());
        std::remove((stem + ".rogm").c_str());
    }
}

/** "W:START:DUR[,...]" — worker W drops all outbound datagrams
 *  during [START, START+DUR) of its own process clock. */
std::map<std::size_t, std::pair<double, double>>
parsePartitions(const std::string &s)
{
    std::map<std::size_t, std::pair<double, double>> m;
    if (s.empty())
        return m;
    for (const std::string &part : splitCommaList(s)) {
        std::size_t w = 0;
        double begin = 0.0;
        double dur = 0.0;
        if (std::sscanf(part.c_str(), "%zu:%lf:%lf", &w, &begin,
                        &dur) != 3 ||
            begin < 0.0 || dur <= 0.0)
            ROG_FATAL("bad --partition entry '%s' (want W:START:DUR)",
                      part.c_str());
        m[w] = {begin, dur};
    }
    return m;
}

std::map<std::size_t, double>
parseStalls(const std::string &s)
{
    std::map<std::size_t, double> m;
    if (s.empty())
        return m;
    for (const std::string &part : splitCommaList(s)) {
        std::size_t w = 0;
        double secs = 0.0;
        if (std::sscanf(part.c_str(), "%zu:%lf", &w, &secs) != 2)
            ROG_FATAL("bad --stall entry '%s' (want W:SECS)",
                      part.c_str());
        m[w] = secs;
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rog;

    std::set<std::string> known = tools::nodeConfigOptions();
    known.insert("kill");
    known.insert("kill-iter");
    known.insert("restart-delay");
    known.insert("stall");
    known.insert("kill-server-iter");
    known.insert("server-restart-delay");
    known.insert("partition");
    known.insert("check");
    known.insert("tolerance");

    try {
        const Args args(argc, argv, known);
        if (!args.positional().empty() || !args.has("dir"))
            return usage();

        core::NodeRunConfig cfg = tools::configFromArgs(args);
        if (cfg.backend != "udp" && cfg.backend != "tcp") {
            std::fprintf(stderr,
                         "rog_chaos: --backend must be udp|tcp\n");
            return 2;
        }
        mkdir(cfg.artifact_dir.c_str(), 0755);
        cleanRunDir(cfg);

        const std::vector<std::size_t> kill_list =
            parseIndexList(args.get("kill", "1,2"));
        const std::int64_t kill_server_iter =
            static_cast<std::int64_t>(
                args.getSize("kill-server-iter", 0));
        const double server_restart_delay =
            args.getDouble("server-restart-delay", 0.5);
        // The DES twin replays the server crash in simulation so the
        // metric gate compares like against like.
        cfg.server_crash_iter = kill_server_iter;
        cfg.server_crash_restart_s = server_restart_delay;
        ChaosSupervisor sup(
            cfg, kill_list,
            static_cast<std::int64_t>(args.getSize("kill-iter", 3)),
            args.getDouble("restart-delay", 0.3),
            parseStalls(args.get("stall", "")), kill_server_iter,
            server_restart_delay,
            parsePartitions(args.get("partition", "")));

        if (!sup.run()) {
            std::fprintf(stderr, "rog_chaos: fleet failed to start\n");
            return 1;
        }

        {
            // The checker reads this to know which invariants apply.
            std::ofstream os(cfg.artifact_dir + "/kills.txt",
                             std::ios::trunc);
            for (std::size_t w : sup.killedWorkers())
                os << w << '\n';
        }

        if (!args.has("check")) {
            const bool ok =
                sup.serverClean() && sup.allWorkersClean();
            std::printf("fleet %s\n", ok ? "clean" : "UNCLEAN");
            return ok ? 0 : 1;
        }

        // Fault-free twin of the same seed/plan, then the gate. Safe
        // to run in-process: every fork already happened.
        std::printf("running DES twin...\n");
        const core::DesTwinResult twin = core::runDesTwin(cfg);
        std::printf("twin done=%d metric=%.4f\n", twin.done ? 1 : 0,
                    twin.metric);

        core::ChaosCheckOptions opts;
        opts.killed_workers = sup.killedWorkers();
        opts.metric_tolerance = args.getDouble("tolerance", 15.0);
        opts.server_restarts = sup.serverRestarts();
        const core::ChaosCheckResult res =
            core::checkChaosRun(cfg, opts);

        std::printf("%s", res.report.c_str());
        for (const std::string &v : res.violations)
            std::printf("VIOLATION: %s\n", v.c_str());
        std::printf("chaos %s: %zu violation(s)\n",
                    res.ok ? "PASS" : "FAIL", res.violations.size());
        return res.ok ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rog_chaos: %s\n", e.what());
        return 2;
    }
}
