/**
 * @file
 * rog_transportd — real-socket transport endpoint and cross-validation
 * driver.
 *
 * Subcommands:
 *   recv      bind a receiver endpoint, ACK frames, record the event
 *             log and rx trace. Prints "port <N>" once bound so a
 *             driving script can start the sender.
 *   send      chain N sequential sends over UDP or TCP, recording the
 *             event log and wire trace (config + sends + attempts).
 *   loopback  both endpoints in one process on one poll loop; writes
 *             the merged trace and event log, and (with --check)
 *             cross-validates against the DES twin in-process.
 *   crossval  replay a recorded trace through the DES twin and compare
 *             against the recorded event log (no sockets touched —
 *             safe for restricted CI).
 *
 * The default backend comes from ROG_TRANSPORT_BACKEND (des|udp|tcp,
 * default udp); --backend overrides. `des` is accepted in loopback
 * mode only and runs the simulated twin instead of sockets (useful to
 * eyeball both timelines side by side).
 *
 * Examples:
 *   rog_transportd recv --backend udp --port 0 --expect 4 \
 *       --events rx.log --trace rx.trace
 *   rog_transportd send --host 127.0.0.1 --port 9000 --sends 4 \
 *       --bytes 40000 --faults "seed=7 drop=0.1 trunc=0.15" \
 *       --events tx.log --trace tx.trace
 *   rog_transportd loopback --sends 4 --bytes 40000 \
 *       --faults "seed=7 drop=0.1" --events run.log --trace run.trace \
 *       --check
 *   rog_transportd crossval --trace run.trace --events run.log
 */
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/args.hpp"
#include "common/logging.hpp"
#include "common/poll_loop.hpp"
#include "fault/socket_fault.hpp"
#include "net/channel.hpp"
#include "net/transport/crossval.hpp"
#include "net/transport/des_backend.hpp"
#include "net/transport/event_log.hpp"
#include "net/transport/reliable_link.hpp"
#include "net/transport/socket_backend.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rog;
using namespace rog::net;
using namespace rog::net::transport;

int
usage()
{
    std::cerr <<
        "usage: rog_transportd <recv|send|loopback|crossval> [options]\n"
        "  recv     --backend udp|tcp --port N (0=ephemeral)\n"
        "           --expect N --timeout S --events F --trace F\n"
        "  send     --backend udp|tcp --host H --port N --sends N\n"
        "           --bytes B --deadline S --faults SPEC --chunk B\n"
        "           --attempts N --ack-timeout S --no-resume\n"
        "           --timeout S --events F --trace F\n"
        "  loopback same knobs as send (udp|tcp|des) plus --check\n"
        "  crossval --trace F --events F\n";
    return 2;
}

std::string
backendName(const Args &args)
{
    std::string name = args.get("backend", "");
    if (name.empty()) {
        const char *env = std::getenv("ROG_TRANSPORT_BACKEND");
        name = env != nullptr ? env : "udp";
    }
    return name;
}

TransportConfig
transportConfig(const Args &args)
{
    TransportConfig cfg;
    cfg.chunk_bytes = args.getDouble("chunk", cfg.chunk_bytes);
    cfg.max_attempts_per_chunk =
        args.getSize("attempts", cfg.max_attempts_per_chunk);
    if (args.has("no-resume"))
        cfg.resume_from_offset = false;
    return cfg;
}

TraceConfig
traceConfig(const std::string &backend, const TransportConfig &cfg)
{
    TraceConfig tc;
    tc.backend = backend;
    tc.chunk_bytes = cfg.chunk_bytes;
    tc.max_attempts = cfg.max_attempts_per_chunk;
    tc.backoff_base_s = cfg.backoff_base_s;
    tc.backoff_max_s = cfg.backoff_max_s;
    tc.jitter_frac = cfg.jitter_frac;
    tc.jitter_seed = cfg.jitter_seed;
    tc.resume_from_offset = cfg.resume_from_offset;
    return tc;
}

MessageKey
sendKey(std::size_t i)
{
    MessageKey key;
    key.worker = 1;
    key.version = static_cast<std::int64_t>(i);
    key.row = 100 + static_cast<std::uint32_t>(i);
    key.pull = false;
    return key;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    if (path.empty())
        return true;
    std::ofstream os(path);
    os << text;
    return static_cast<bool>(os);
}

std::string
eventsText(const std::vector<TransportEvent> &log)
{
    std::string out;
    for (const TransportEvent &ev : log) {
        out += toString(ev);
        out += '\n';
    }
    return out;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    out = os.str();
    return true;
}

/**
 * Drive @p link through @p sends sequential messages; returns how many
 * ran to completion before @p issue_done stopped being polled. Sends
 * are chained (each starts from the previous one's callback) so the
 * wire sees one stop-and-wait conversation — the shape the replay
 * harness reproduces.
 */
struct SendDriver
{
    ReliableLink &link;
    TransportTrace *trace = nullptr;
    std::size_t total = 0;
    double bytes = 0.0;
    double deadline_rel = kNoDeadline;
    std::size_t completed = 0;
    std::size_t delivered = 0;

    void
    issue(std::size_t i)
    {
        if (i >= total)
            return;
        const MessageKey key = sendKey(i);
        if (trace != nullptr) {
            SendRecord rec;
            rec.link = 0;
            rec.key = key;
            rec.payload_bytes = bytes;
            rec.deadline_s = deadline_rel;
            trace->sends.push_back(rec);
        }
        const double deadline =
            std::isfinite(deadline_rel)
                ? link.backend().now() + deadline_rel
                : kNoDeadline;
        link.startSend(0, key, bytes, deadline,
                       [this, i](const SendResult &r) {
                           ++completed;
                           if (r.delivered)
                               ++delivered;
                           issue(i + 1);
                       });
    }

    bool done() const { return completed >= total; }
};

int
runRecv(const Args &args)
{
    const std::string backend = backendName(args);
    const auto port =
        static_cast<std::uint16_t>(args.getSize("port", 0));
    const std::size_t expect = args.getSize("expect", 1);
    const double timeout = args.getDouble("timeout", 30.0);

    PollLoop loop;
    std::unique_ptr<ReceiverEndpointBase> ep;
    std::uint16_t bound = 0;
    if (backend == "udp") {
        auto udp = std::make_unique<UdpReceiverEndpoint>(loop, port);
        bound = udp->port();
        ep = std::move(udp);
    } else if (backend == "tcp") {
        auto tcp = std::make_unique<TcpReceiverEndpoint>(loop, port);
        bound = tcp->port();
        ep = std::move(tcp);
    } else {
        std::cerr << "recv: unsupported backend " << backend << "\n";
        return 2;
    }
    if (!ep->ok()) {
        std::cerr << "recv: " << ep->error() << "\n";
        return 1;
    }
    std::cout << "port " << bound << "\n" << std::flush;

    const bool got = loop.runUntil(
        [&] { return ep->deliveredMessages() >= expect; }, timeout);
    // Linger: the last ACK (and any TCP flush) must still go out.
    loop.runUntil([] { return false; }, 0.2);

    TransportTrace trace;
    trace.config.backend = backend;
    trace.rx = ep->rxRecords();
    if (!writeFile(args.get("events"), eventsText(ep->log())) ||
        !writeFile(args.get("trace"), trace.toText())) {
        std::cerr << "recv: cannot write output files\n";
        return 1;
    }
    std::cout << "delivered " << ep->deliveredMessages() << "\n";
    return got ? 0 : 1;
}

int
runSend(const Args &args)
{
    const std::string backend = backendName(args);
    const std::string host = args.get("host", "127.0.0.1");
    const auto port =
        static_cast<std::uint16_t>(args.getSize("port", 0));
    const double timeout = args.getDouble("timeout", 30.0);
    if (port == 0) {
        std::cerr << "send: --port is required\n";
        return 2;
    }

    const TransportConfig cfg = transportConfig(args);
    TransportTrace trace;
    trace.config = traceConfig(backend, cfg);

    std::unique_ptr<fault::SocketFaultInjector> faults;
    if (args.has("faults")) {
        const auto parsed =
            fault::SocketFaultPlan::tryParse(args.get("faults"));
        if (!parsed.ok()) {
            std::cerr << "send: bad --faults: " << parsed.error << "\n";
            return 2;
        }
        faults =
            std::make_unique<fault::SocketFaultInjector>(parsed.plan);
    }

    PollLoop loop;
    SocketOptions opts;
    opts.ack_timeout_s = args.getDouble("ack-timeout", opts.ack_timeout_s);
    std::unique_ptr<SocketSenderBase> sock;
    if (backend == "udp") {
        sock = std::make_unique<UdpBackend>(loop, host, port, opts,
                                            faults.get(), &trace);
    } else if (backend == "tcp") {
        if (faults) {
            std::cerr << "send: --faults is UDP-only (TCP repairs the "
                         "wire itself)\n";
            return 2;
        }
        sock = std::make_unique<TcpBackend>(loop, host, port, opts,
                                            &trace);
    } else {
        std::cerr << "send: unsupported backend " << backend << "\n";
        return 2;
    }
    if (!sock->ok()) {
        std::cerr << "send: " << sock->error() << "\n";
        return 1;
    }

    ReliableLink link(*sock, cfg);
    SendDriver driver{link, &trace, args.getSize("sends", 1),
                      args.getDouble("bytes", 4096.0),
                      args.has("deadline")
                          ? args.getDouble("deadline", 0.0)
                          : kNoDeadline};
    driver.issue(0);
    const bool done =
        loop.runUntil([&] { return driver.done(); }, timeout);
    if (!sock->ok()) {
        std::cerr << "send: " << sock->error() << "\n";
        return 1;
    }

    if (!writeFile(args.get("events"), eventsText(link.log())) ||
        !writeFile(args.get("trace"), trace.toText())) {
        std::cerr << "send: cannot write output files\n";
        return 1;
    }
    std::cout << "completed " << driver.completed << " delivered "
              << driver.delivered << "\n";
    return done ? 0 : 1;
}

int
runLoopbackDes(const Args &args)
{
    // The deterministic twin, for eyeballing against a socket run:
    // same sends, virtual time, in-process receiver.
    const TransportConfig cfg = transportConfig(args);
    sim::Simulation sim;
    Channel channel(sim, {BandwidthTrace::constant(
                             args.getDouble("bandwidth", 1e6), 3600.0)});
    ReliableLink link(sim, channel, cfg);
    SendDriver driver{link, nullptr, args.getSize("sends", 1),
                      args.getDouble("bytes", 4096.0),
                      args.has("deadline")
                          ? args.getDouble("deadline", 0.0)
                          : kNoDeadline};
    driver.issue(0);
    sim.run();
    if (!writeFile(args.get("events"), eventsText(link.log()))) {
        std::cerr << "loopback: cannot write events file\n";
        return 1;
    }
    std::cout << "completed " << driver.completed << " delivered "
              << driver.delivered << "\n";
    return driver.done() ? 0 : 1;
}

int
runLoopback(const Args &args)
{
    const std::string backend = backendName(args);
    if (backend == "des")
        return runLoopbackDes(args);
    const double timeout = args.getDouble("timeout", 30.0);

    const TransportConfig cfg = transportConfig(args);
    TransportTrace trace;
    trace.config = traceConfig(backend, cfg);

    std::unique_ptr<fault::SocketFaultInjector> faults;
    if (args.has("faults")) {
        const auto parsed =
            fault::SocketFaultPlan::tryParse(args.get("faults"));
        if (!parsed.ok()) {
            std::cerr << "loopback: bad --faults: " << parsed.error
                      << "\n";
            return 2;
        }
        faults =
            std::make_unique<fault::SocketFaultInjector>(parsed.plan);
    }

    PollLoop loop;
    SocketOptions opts;
    opts.ack_timeout_s = args.getDouble("ack-timeout", opts.ack_timeout_s);

    std::unique_ptr<ReceiverEndpointBase> ep;
    std::unique_ptr<SocketSenderBase> sock;
    if (backend == "udp") {
        auto rx = std::make_unique<UdpReceiverEndpoint>(loop, 0);
        if (!rx->ok()) {
            std::cerr << "loopback: " << rx->error() << "\n";
            return 1;
        }
        sock = std::make_unique<UdpBackend>(loop, "127.0.0.1",
                                            rx->port(), opts,
                                            faults.get(), &trace);
        ep = std::move(rx);
    } else if (backend == "tcp") {
        if (faults) {
            std::cerr << "loopback: --faults is UDP-only\n";
            return 2;
        }
        auto rx = std::make_unique<TcpReceiverEndpoint>(loop, 0);
        if (!rx->ok()) {
            std::cerr << "loopback: " << rx->error() << "\n";
            return 1;
        }
        sock = std::make_unique<TcpBackend>(loop, "127.0.0.1",
                                            rx->port(), opts, &trace);
        ep = std::move(rx);
    } else {
        std::cerr << "loopback: unsupported backend " << backend << "\n";
        return 2;
    }
    if (!sock->ok()) {
        std::cerr << "loopback: " << sock->error() << "\n";
        return 1;
    }

    ReliableLink link(*sock, cfg);
    SendDriver driver{link, &trace, args.getSize("sends", 1),
                      args.getDouble("bytes", 4096.0),
                      args.has("deadline")
                          ? args.getDouble("deadline", 0.0)
                          : kNoDeadline};
    driver.issue(0);
    const bool done =
        loop.runUntil([&] { return driver.done(); }, timeout);
    if (!done) {
        std::cerr << "loopback: timed out with " << driver.completed
                  << "/" << driver.total << " sends completed\n";
        return 1;
    }
    if (!sock->ok() || !ep->ok()) {
        std::cerr << "loopback: "
                  << (!sock->ok() ? sock->error() : ep->error())
                  << "\n";
        return 1;
    }

    trace.rx = ep->rxRecords();
    std::vector<TransportEvent> merged = link.log();
    merged.insert(merged.end(), ep->log().begin(), ep->log().end());

    if (!writeFile(args.get("events"), eventsText(merged)) ||
        !writeFile(args.get("trace"), trace.toText())) {
        std::cerr << "loopback: cannot write output files\n";
        return 1;
    }
    std::cout << "completed " << driver.completed << " delivered "
              << driver.delivered << "\n";

    if (args.has("check")) {
        const CrossvalReport report = crossValidate(trace, merged);
        if (!report.ok) {
            std::cerr << "loopback: cross-validation FAILED\n"
                      << report.detail << "\n";
            return 1;
        }
        std::cout << "crossval ok: " << report.sender_events
                  << " sender events, " << report.receiver_events
                  << " receiver events match the DES replay\n";
    }
    return 0;
}

int
runCrossval(const Args &args)
{
    std::string trace_text, events_text;
    if (!readFile(args.get("trace"), trace_text)) {
        std::cerr << "crossval: cannot read --trace\n";
        return 2;
    }
    if (!readFile(args.get("events"), events_text)) {
        std::cerr << "crossval: cannot read --events\n";
        return 2;
    }
    const TraceParseResult trace = TransportTrace::tryParse(trace_text);
    if (!trace.ok()) {
        std::cerr << "crossval: bad trace: " << trace.error << "\n";
        return 2;
    }
    const LogParseResult log = tryParseLog(events_text);
    if (!log.ok()) {
        std::cerr << "crossval: bad event log: " << log.error << "\n";
        return 2;
    }
    const CrossvalReport report =
        crossValidate(trace.trace, log.events);
    if (!report.ok) {
        std::cerr << "crossval FAILED\n" << report.detail << "\n";
        return 1;
    }
    std::cout << "crossval ok: " << report.sender_events
              << " sender events, " << report.receiver_events
              << " receiver events match the DES replay\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::set<std::string> known = {
        "backend", "host",    "port",     "expect",  "timeout",
        "events",  "trace",   "sends",    "bytes",   "deadline",
        "faults",  "chunk",   "attempts", "no-resume",
        "ack-timeout", "check", "bandwidth",
    };
    try {
        const rog::Args args(argc, argv, known);
        if (args.positional().size() != 1)
            return usage();
        const std::string &mode = args.positional()[0];
        if (mode == "recv")
            return runRecv(args);
        if (mode == "send")
            return runSend(args);
        if (mode == "loopback")
            return runLoopback(args);
        if (mode == "crossval")
            return runCrossval(args);
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "rog_transportd: " << e.what() << "\n";
        return 2;
    }
}
