/**
 * @file
 * Shared CLI-to-NodeRunConfig mapping for rog_noded and rog_chaos.
 *
 * Both tools must build bit-identical run configurations from the
 * same flags — the server process, every worker process, the DES
 * correctness twin, and the supervisor all describe one run — so the
 * mapping lives here instead of being copied per tool.
 */
#ifndef ROG_TOOLS_NODE_CLI_HPP
#define ROG_TOOLS_NODE_CLI_HPP

#include <set>
#include <string>

#include "common/args.hpp"
#include "common/logging.hpp"
#include "core/node_runner.hpp"
#include "fault/socket_fault.hpp"

namespace rog {
namespace tools {

/** Option names understood by configFromArgs (merge with the tool's
 *  own before constructing Args). */
inline std::set<std::string>
nodeConfigOptions()
{
    return {"backend", "dir",     "workers",  "iters", "staleness",
            "seed",    "epoch",   "faults",   "timeout",
            "hb",      "detect",  "codec",    "rate",
            "listen-port", "bind-retry"};
}

/** Build the run config shared by every role of one run. */
inline core::NodeRunConfig
configFromArgs(const Args &args)
{
    core::NodeRunConfig cfg = core::chaosRunDefaults();
    cfg.backend = args.get("backend", "udp");
    cfg.artifact_dir = args.get("dir", "");
    cfg.workers = args.getSize("workers", cfg.workers);
    cfg.workload_seed = args.getSize("seed", cfg.workload_seed);
    cfg.run_timeout_s = args.getDouble("timeout", cfg.run_timeout_s);
    cfg.des_rate_bps = args.getDouble("rate", cfg.des_rate_bps);
    cfg.listen_port = static_cast<std::uint16_t>(
        args.getSize("listen-port", cfg.listen_port));
    cfg.socket.bind_retry_window_s = args.getDouble(
        "bind-retry", cfg.socket.bind_retry_window_s);

    cfg.train.max_iters = static_cast<std::int64_t>(
        args.getSize("iters", static_cast<std::size_t>(
                                  cfg.train.max_iters)));
    cfg.train.staleness = static_cast<std::int64_t>(
        args.getSize("staleness", static_cast<std::size_t>(
                                      cfg.train.staleness)));
    cfg.train.epoch = args.getSize("epoch", cfg.train.epoch);
    cfg.train.codec = args.get("codec", cfg.train.codec);
    cfg.train.detector.heartbeat_interval_s =
        args.getDouble("hb", cfg.train.detector.heartbeat_interval_s);
    cfg.train.detector.detection_bound_s = args.getDouble(
        "detect", cfg.train.detector.detection_bound_s);
    if (!cfg.artifact_dir.empty())
        cfg.train.worker_state_dir = cfg.artifact_dir;

    const std::string faults = args.get("faults", "");
    if (!faults.empty()) {
        const fault::SocketFaultParseResult parsed =
            fault::SocketFaultPlan::tryParse(faults);
        if (!parsed.ok())
            ROG_FATAL("bad --faults: %s", parsed.error.c_str());
        cfg.fault_plan = parsed.plan;
        cfg.inject_faults = true;
    }
    return cfg;
}

} // namespace tools
} // namespace rog

#endif // ROG_TOOLS_NODE_CLI_HPP
