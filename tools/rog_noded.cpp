/**
 * @file
 * rog_noded — one ROG training node per process, over real sockets.
 *
 * Subcommands:
 *
 *   rog_noded server --dir DIR [--backend udp|tcp] [--workers N] ...
 *       Bind the parameter-server role, print "port <N>" once bound,
 *       run until every worker said Bye or --timeout passed. Exit 0
 *       iff the run completed. Artifacts (run log, transport event
 *       log, final model, checkpoint, summary.txt) land in --dir.
 *
 *   rog_noded worker --worker W --port P [--host H] --dir DIR ...
 *       Run worker W against the server at H:P. Resumes from
 *       DIR/worker<W>.meta + model when present (a restarted process
 *       re-enters with a bumped incarnation and its resume token).
 *       Exit 0 iff the worker finished its iterations and said Bye.
 *
 *   rog_noded des --dir DIR ...
 *       The correctness twin: the identical engine code over the
 *       discrete-event fabric, fault-free, same seed and plan. Writes
 *       DIR/des_summary.txt for the chaos checker to compare against.
 *
 * Shared knobs (see tools/node_cli.hpp): --backend, --dir, --workers,
 * --iters, --staleness, --seed, --epoch, --codec, --faults SPEC,
 * --timeout, --hb, --detect, --rate. All roles of one run must be
 * launched with identical values; tools/rog_chaos does exactly that.
 */
#include <cstdio>
#include <string>

#include "node_cli.hpp"

namespace {

using namespace rog;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: rog_noded server --dir DIR [options]\n"
        "       rog_noded worker --worker W --port P [--host H] "
        "--dir DIR [options]\n"
        "       rog_noded des --dir DIR [options]\n"
        "options: --backend udp|tcp  --workers N  --iters N\n"
        "         --staleness N  --seed S  --epoch E  --codec NAME\n"
        "         --faults SPEC  --timeout SECS  --hb SECS\n"
        "         --detect SECS  --rate BPS\n"
        "         --listen-port P  --bind-retry SECS  (server: rebind "
        "a restarted server's old port)\n");
    return 2;
}

int
runServer(const core::NodeRunConfig &cfg)
{
    const core::ServerRunResult res =
        core::runServerNode(cfg, [](std::uint16_t port) {
            std::printf("port %u\n", static_cast<unsigned>(port));
            std::fflush(stdout);
        });
    std::printf("done %d metric %.4f applied %zu dup %zu stale %zu "
                "epoch %llu recovered %d\n",
                res.done ? 1 : 0, res.metric, res.applied_pushes,
                res.duplicate_pushes, res.stale_drops,
                static_cast<unsigned long long>(res.epoch),
                res.recovered ? 1 : 0);
    return res.done ? 0 : 1;
}

int
runWorker(const core::NodeRunConfig &cfg, const Args &args)
{
    if (!args.has("worker") || !args.has("port")) {
        std::fprintf(stderr,
                     "rog_noded worker: --worker and --port are "
                     "required\n");
        return 2;
    }
    const std::size_t w = args.getSize("worker", 0);
    const std::string host = args.get("host", "127.0.0.1");
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.getSize("port", 0));
    if (w >= cfg.workers) {
        std::fprintf(stderr, "rog_noded worker: index %zu >= %zu\n", w,
                     cfg.workers);
        return 2;
    }
    const core::WorkerRunResult res =
        core::runWorkerNode(cfg, w, host, port);
    std::printf("done %d failed %d iter %lld\n", res.done ? 1 : 0,
                res.failed ? 1 : 0,
                static_cast<long long>(res.done_iter));
    return res.done ? 0 : 1;
}

int
runDes(const core::NodeRunConfig &cfg)
{
    const core::DesTwinResult res = core::runDesTwin(cfg);
    std::printf("done %d %s %.4f applied %zu\n", res.done ? 1 : 0,
                res.metric_name.c_str(), res.metric,
                res.applied_pushes);
    return res.done ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rog;

    std::set<std::string> known = tools::nodeConfigOptions();
    known.insert("worker");
    known.insert("host");
    known.insert("port");

    try {
        const Args args(argc, argv, known);
        if (args.positional().size() != 1)
            return usage();
        const core::NodeRunConfig cfg = tools::configFromArgs(args);

        const std::string &cmd = args.positional()[0];
        if (cmd == "server")
            return runServer(cfg);
        if (cmd == "worker")
            return runWorker(cfg, args);
        if (cmd == "des")
            return runDes(cfg);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rog_noded: %s\n", e.what());
        return 2;
    }
}
