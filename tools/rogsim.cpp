/**
 * @file
 * rogsim — command-line front end to the ROG reproduction.
 *
 * Subcommands:
 *   run     run training systems on a workload over a simulated
 *           wireless environment and print the paper-style panels.
 *   trace   generate a bandwidth trace (optionally save/analyze it).
 *   regret  run the Theorem-1 regret simulation.
 *   mta     print the MTA fraction for a staleness threshold.
 *
 * Examples:
 *   rogsim run --workload cruda --env outdoor \
 *              --systems bsp,ssp4,flown,rog4 --iterations 400
 *   rogsim run --workload crimp --systems bsp,rog20 --workers 6
 *   rogsim trace --env outdoor --seconds 300 --seed 7 --out t.csv
 *   rogsim regret --staleness 8 --iterations 4000
 *   rogsim mta --threshold 4
 */
#include <iostream>
#include <set>
#include <string>

#include "common/args.hpp"
#include "common/logging.hpp"
#include "core/convergence.hpp"
#include "core/engine.hpp"
#include "core/mta.hpp"
#include "core/system_config.hpp"
#include "core/workloads.hpp"
#include "net/trace_generator.hpp"
#include "net/trace_io.hpp"
#include "net/trace_stats.hpp"
#include "stats/experiment.hpp"
#include "stats/timeline.hpp"

namespace {

using namespace rog;

int
usage()
{
    std::cerr <<
        "usage: rogsim <run|trace|regret|mta> [options]\n"
        "  run    --workload cruda|crimp --env indoor|outdoor|stable\n"
        "         --systems bsp,ssp<t>,flown,rog<t> --iterations N\n"
        "         --workers K --eval-every N --batch-scale X\n"
        "         --seed S --auto-threshold --pipeline --timeline\n"
        "  trace  --env indoor|outdoor|stable --seconds T --seed S\n"
        "         [--mean-bps B] [--out file.csv]\n"
        "  regret --staleness S --workers P --iterations T --seed S\n"
        "  mta    --threshold t\n";
    return 2;
}

core::SystemConfig
parseSystem(const std::string &name)
{
    if (name == "bsp")
        return core::SystemConfig::bsp();
    if (name == "flown")
        return core::SystemConfig::flownSystem();
    if (name.rfind("ssp", 0) == 0)
        return core::SystemConfig::ssp(
            static_cast<std::size_t>(std::stoul(name.substr(3))));
    if (name.rfind("rog", 0) == 0)
        return core::SystemConfig::rog(
            static_cast<std::size_t>(std::stoul(name.substr(3))));
    ROG_FATAL("unknown system '", name,
              "' (expected bsp, ssp<t>, flown, or rog<t>)");
}

stats::Environment
parseEnv(const std::string &name)
{
    if (name == "indoor")
        return stats::Environment::Indoor;
    if (name == "outdoor")
        return stats::Environment::Outdoor;
    if (name == "stable")
        return stats::Environment::Stable;
    ROG_FATAL("unknown environment '", name, "'");
}

int
cmdRun(const Args &args)
{
    const std::string workload_name = args.get("workload", "cruda");
    const std::size_t workers = args.getSize("workers", 4);
    const auto env = parseEnv(args.get("env", "outdoor"));

    stats::ExperimentConfig ecfg;
    ecfg.env = env;
    ecfg.iterations = args.getSize("iterations", 300);
    ecfg.eval_every = args.getSize("eval-every", 50);
    ecfg.batch_scale = args.getDouble("batch-scale", 1.0);
    ecfg.network_seed = args.getSize("seed", 5);

    std::vector<core::SystemConfig> systems;
    for (const auto &name :
         splitCommaList(args.get("systems", "bsp,rog4")))
        systems.push_back(parseSystem(name));
    if (systems.empty())
        ROG_FATAL("no systems given");

    std::unique_ptr<core::Workload> workload;
    bool lower_better = false;
    double target = 0.0;
    if (workload_name == "cruda") {
        core::CrudaWorkloadConfig wcfg;
        wcfg.workers = workers;
        workload = std::make_unique<core::CrudaWorkload>(wcfg);
        target = 70.0;
    } else if (workload_name == "crimp") {
        core::CrimpWorkloadConfig wcfg;
        wcfg.workers = workers;
        workload = std::make_unique<core::CrimpWorkload>(wcfg);
        lower_better = true;
        target = 0.15;
    } else {
        ROG_FATAL("unknown workload '", workload_name, "'");
    }

    std::vector<stats::SystemRun> runs;
    std::vector<core::RunResult> results;
    for (const auto &sys : systems) {
        core::EngineConfig engine;
        engine.system = sys;
        engine.profile.batch_scale = ecfg.batch_scale;
        engine.iterations = ecfg.iterations;
        engine.eval_every = ecfg.eval_every;
        engine.auto_threshold = args.has("auto-threshold");
        engine.pipeline_pull = args.has("pipeline");
        const auto network = stats::makeNetwork(*workload, ecfg);
        stats::SystemRun run;
        run.result =
            core::runDistributedTraining(*workload, engine, network);
        run.curve = stats::mergeCheckpoints(run.result);
        results.push_back(run.result);
        runs.push_back(std::move(run));
    }

    stats::printExperiment(
        std::cout,
        workload_name + " " + stats::environmentName(env), runs,
        /*time budget*/ 1200.0, target, lower_better);
    stats::utilizationTable("device utilization", results)
        .printText(std::cout);

    if (args.has("timeline")) {
        for (const auto &res : results) {
            std::cout << "# timeline " << res.system << "\n";
            stats::writeTimelineCsv(std::cout,
                                    stats::buildTimeline(res));
        }
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    const auto env = parseEnv(args.get("env", "outdoor"));
    const double mean = args.getDouble("mean-bps", 50e3);
    net::TraceModel model;
    switch (env) {
      case stats::Environment::Indoor:
        model = net::TraceModel::indoor(mean);
        break;
      case stats::Environment::Outdoor:
        model = net::TraceModel::outdoor(mean);
        break;
      case stats::Environment::Stable:
        model = net::TraceModel::stable(mean);
        break;
    }
    const auto trace =
        net::generateTrace(model, args.getDouble("seconds", 300.0),
                           args.getSize("seed", 7));
    const auto st = net::computeTraceStats(trace);
    Table t("trace statistics",
            {"mean_Bps", "sd_Bps", "sec_per_20pct", "sec_per_40pct",
             "deep_fade_pct"});
    t.addRow({Table::num(st.mean_bytes_per_sec, 0),
              Table::num(st.stddev_bytes_per_sec, 0),
              Table::num(st.seconds_per_20pct_fluctuation, 2),
              Table::num(st.seconds_per_40pct_fluctuation, 2),
              Table::num(100.0 * st.deep_fade_fraction, 1)});
    t.printText(std::cout);
    if (args.has("out")) {
        net::saveTrace(args.get("out"), trace);
        std::cout << "trace written to " << args.get("out") << "\n";
    }
    return 0;
}

int
cmdRegret(const Args &args)
{
    core::RegretConfig cfg;
    cfg.staleness = args.getSize("staleness", 4);
    cfg.workers = args.getSize("workers", 4);
    cfg.iterations = args.getSize("iterations", 4000);
    cfg.seed = args.getSize("seed", 1);
    const auto res = core::simulateRspRegret(cfg);
    Table t("Theorem 1 regret simulation",
            {"S", "P", "T", "regret", "bound", "within", "avg_regret"});
    t.addRow({std::to_string(cfg.staleness),
              std::to_string(cfg.workers),
              std::to_string(cfg.iterations),
              Table::num(res.cumulative_regret.back(), 2),
              Table::num(res.theorem_bound, 2),
              res.within_bound ? "yes" : "NO",
              Table::num(res.average_regret, 5)});
    t.printText(std::cout);
    return 0;
}

int
cmdMta(const Args &args)
{
    const std::size_t t = args.getSize("threshold", 4);
    std::cout << "MTA(" << t << ") = " << core::mtaFraction(t) << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::set<std::string> known = {
        "workload", "env", "systems", "iterations", "workers",
        "eval-every", "batch-scale", "seed", "auto-threshold",
        "pipeline", "timeline", "seconds", "mean-bps", "out",
        "staleness", "threshold"};
    try {
        Args args(argc, argv, known);
        if (args.positional().size() != 1)
            return usage();
        const std::string cmd = args.positional()[0];
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "regret")
            return cmdRegret(args);
        if (cmd == "mta")
            return cmdMta(args);
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "rogsim: " << e.what() << "\n";
        return 1;
    }
}
